(** Benchmark harness regenerating every table and figure of the paper's
    evaluation (Section 6) on the cluster simulator:

    - [fig7_narrow] / [fig7_wide]: the TPC-H grids of Figure 7 — query
      families flat-to-nested / nested-to-nested / nested-to-flat at nesting
      levels 0-4 under Standard, Shred, Shred+Unshred and the SparkSQL
      proxy;
    - [fig8_skew]: Figure 8 — nested-to-nested narrow at two levels on
      increasingly skewed data (factors 0-4), skew-aware and skew-unaware;
    - [fig9_biomed]: Figure 9 — the five-step biomedical E2E pipeline on the
      full and small synthetic datasets with per-step times;
    - [ablate]: ablations of the design choices DESIGN.md calls out
      (domain elimination, cogroup fusion, aggregation pushdown);
    - [faults]: recovery overhead of each injectable fault (worker crash,
      task failure, fetch failure, straggler, memory squeeze) per strategy;
    - [recovery]: a crash-storm ladder (0-4 crashes) against each
      checkpoint policy (off / every=2 / auto), showing how checkpoints
      bound the lineage a recovery replays;
    - [memory]: graceful degradation under memory pressure — a shrinking
      per-worker budget ladder showing the in-memory / spilling /
      route-fallback crossover per strategy;
    - [scale]: multicore scaling — wall-clock seconds vs [--domains] 1/2/4/8
      on both routes while every simulated counter stays bit-identical,
      written to BENCH_parallel.json;
    - [micro]: Bechamel micro-benchmarks of core primitives.

    Absolute numbers are simulator output; the paper-vs-measured *shape*
    comparison lives in EXPERIMENTS.md. Run all targets with
    [dune exec bench/main.exe], or a single one by name. Options:
    [--scale F] multiplies dataset sizes, [--mem MB] sets the per-worker
    memory budget (the FAIL threshold), and [--json FILE] records every run
    — totals, per-step stats slices, and per-operator span trees — as a
    JSON array. *)

let scale_factor = ref 1.0
let mem_mb : float option ref = ref None
let json_path : string option ref = ref None

let sc n = max 1 (int_of_float (float_of_int n *. !scale_factor))

(* Per-figure worker memory defaults (MB), calibrated so the simulator's
   FAIL pattern matches the paper's (see EXPERIMENTS.md); --mem overrides.
   Spilling and route fallback are pinned off here: the figures reproduce
   the paper's FAIL bars; the [memory] target turns them on explicitly. *)
let cluster ~default_mem () =
  let mem = Option.value !mem_mb ~default:default_mem in
  {
    Exec.Config.default with
    workers = 20;
    partitions = 100;
    worker_mem = int_of_float (mem *. 1048576.);
    broadcast_limit = 2 * 1024;
    spill = Exec.Config.Off;
  }

let base_config ~default_mem () =
  { Trance.Api.default_config with
    cluster = cluster ~default_mem ();
    collect = false;
    route_fallback = false;
    optimizer =
      { Plan.Optimize.default with
        unique_keys = [ ("Part", [ "pkey" ]); ("GeneMeta", [ "gid" ]) ] } }

(* All benchmark runs funnel through here so --json can record every run
   (with tracing enabled) without each figure threading a recorder. *)
let current_target = ref ""
let recorded : (string * Trance.Api.run) list ref = ref []

let api_run ~label ~(config : Trance.Api.config) ~strategy prog inputs =
  let config =
    if !json_path = None then config
    else { config with Trance.Api.trace = true }
  in
  let r = Trance.Api.run ~config ~strategy prog inputs in
  if !json_path <> None then
    recorded := (!current_target ^ "/" ^ label, r) :: !recorded;
  r

(* ------------------------------------------------------------------ *)
(* Row printing *)

let header () =
  Printf.printf "%-18s %-5s %-16s %9s %9s %10s %10s %9s  %s\n" "family" "level"
    "strategy" "sim(s)" "wall(s)" "shuffleMB" "bcastMB" "peakMB" "status";
  Printf.printf "%s\n" (String.make 104 '-')

let mb b = float_of_int b /. 1048576.

let row ~family ~level ~(r : Trance.Api.run) =
  let s = r.Trance.Api.stats in
  Printf.printf "%-18s %-5s %-16s %9.3f %9.3f %10.2f %10.2f %9.2f  %s\n" family
    level r.Trance.Api.strategy
    (Exec.Stats.sim_seconds s)
    r.Trance.Api.wall_seconds
    (mb (Exec.Stats.shuffled_bytes s))
    (mb (Exec.Stats.broadcast_bytes s))
    (mb (Exec.Stats.peak_worker_bytes s))
    (match r.Trance.Api.failure with
    | None -> "ok"
    | Some f -> "FAIL (" ^ Trance.Api.failure_message f ^ ")")

(* ------------------------------------------------------------------ *)
(* Figure 7 *)

let tpch_scale () =
  {
    Tpch.Generator.default_scale with
    customers = sc 300;
    orders_per_customer = 10;
    lineitems_per_order = 4;
    parts = sc 500;
    comment_width = 48;
  }

let fig7 ~wide () =
  Printf.printf "\n=== Figure 7%s: %s TPC-H queries, nesting levels 0-4 ===\n"
    (if wide then "b" else "a")
    (if wide then "wide" else "narrow");
  header ();
  let db = Tpch.Generator.generate (tpch_scale ()) in
  let config = base_config ~default_mem:0.66 () in
  let families =
    [
      Tpch.Queries.Flat_to_nested;
      Tpch.Queries.Nested_to_nested;
      Tpch.Queries.Nested_to_flat;
    ]
  in
  (* (family, level, strategy) -> run, for the claim summary *)
  let results = ref [] in
  List.iter
    (fun family ->
      List.iter
        (fun level ->
          let prog = Tpch.Queries.program ~wide ~family ~level () in
          let inputs = Tpch.Queries.input_values ~wide ~family ~level db in
          let nested_output =
            match family with
            | Tpch.Queries.Nested_to_flat -> false
            | Tpch.Queries.Flat_to_nested | Tpch.Queries.Nested_to_nested ->
              level > 0
          in
          let strategies =
            [ Trance.Api.Standard; Trance.Api.Shredded { unshred = false } ]
            @ (if nested_output then [ Trance.Api.Shredded { unshred = true } ]
               else [])
            @ [ Trance.Api.SparkSQL_proxy ]
          in
          List.iter
            (fun strategy ->
              let label =
                Printf.sprintf "%s/L%d/%s"
                  (Tpch.Queries.family_name family)
                  level
                  (Trance.Api.strategy_name strategy)
              in
              let r = api_run ~label ~config ~strategy prog inputs in
              results := ((family, level, r.Trance.Api.strategy), r) :: !results;
              row
                ~family:(Tpch.Queries.family_name family)
                ~level:(string_of_int level) ~r)
            strategies)
        [ 0; 1; 2; 3; 4 ])
    families;
  (* automated claim summary (headline bullets of Section 6) *)
  let get f l s = List.assoc_opt (f, l, s) !results in
  let sim (r : Trance.Api.run) = Exec.Stats.sim_seconds r.Trance.Api.stats in
  let ratio num den =
    match num, den with
    | Some a, Some b -> (
      match a.Trance.Api.failure, b.Trance.Api.failure with
      | None, None when sim b > 0. -> Printf.sprintf "%.1fx" (sim a /. sim b)
      | Some _, None -> "inf (flattening FAILed)"
      | _, _ -> "n/a")
    | _ -> "n/a"
  in
  let shuffle_ratio num den =
    match num, den with
    | Some a, Some b
      when a.Trance.Api.failure = None && b.Trance.Api.failure = None
           && Exec.Stats.shuffled_bytes b.Trance.Api.stats > 0 ->
      Printf.sprintf "%.1fx"
        (float_of_int (Exec.Stats.shuffled_bytes a.Trance.Api.stats)
        /. float_of_int (Exec.Stats.shuffled_bytes b.Trance.Api.stats))
    | _ -> "n/a"
  in
  Printf.printf "\n-- claim summary (Section 6 bullets) --\n";
  Printf.printf "C1 flat-to-nested L4, Standard vs Shred:   time %s, shuffle %s\n"
    (ratio (get Tpch.Queries.Flat_to_nested 4 "Standard")
       (get Tpch.Queries.Flat_to_nested 4 "Shred"))
    (shuffle_ratio (get Tpch.Queries.Flat_to_nested 4 "Standard")
       (get Tpch.Queries.Flat_to_nested 4 "Shred"));
  Printf.printf "C2 nested-to-nested L2, Standard vs Shred: time %s\n"
    (ratio (get Tpch.Queries.Nested_to_nested 2 "Standard")
       (get Tpch.Queries.Nested_to_nested 2 "Shred"));
  Printf.printf "C2 nested-to-nested L4, Standard vs Shred: time %s\n"
    (ratio (get Tpch.Queries.Nested_to_nested 4 "Standard")
       (get Tpch.Queries.Nested_to_nested 4 "Shred"));
  Printf.printf "C3 nested-to-flat L4, Standard vs Shred:   time %s\n"
    (ratio (get Tpch.Queries.Nested_to_flat 4 "Standard")
       (get Tpch.Queries.Nested_to_flat 4 "Shred"))

(* ------------------------------------------------------------------ *)
(* Figure 8 *)

let fig8 () =
  Printf.printf
    "\n=== Figure 8: nested-to-nested narrow, 2 levels, skew factors 0-4 ===\n";
  header ();
  let family = Tpch.Queries.Nested_to_nested and level = 2 in
  let prog = Tpch.Queries.program ~wide:false ~family ~level () in
  List.iter
    (fun skew ->
      let db = Tpch.Generator.generate { (tpch_scale ()) with skew } in
      let inputs = Tpch.Queries.input_values ~wide:false ~family ~level db in
      let run ~skew_aware strategy =
        (* the paper pushes aggregation for skew-unaware methods only:
           skew-aware methods benefit more from keeping heavy keys
           distributed (Section 6, Skew-handling) *)
        let config =
          let c = base_config ~default_mem:1.8 () in
          if skew_aware then
            { c with
              skew_aware = true;
              optimizer = { c.optimizer with push_aggs = false } }
          else c
        in
        let label =
          Printf.sprintf "s%d/%s%s" skew
            (Trance.Api.strategy_name strategy)
            (if skew_aware then "+skew" else "")
        in
        let r = api_run ~label ~config ~strategy prog inputs in
        let name = r.Trance.Api.strategy ^ if skew_aware then "+skew" else "" in
        row ~family:"n-to-n skew"
          ~level:(Printf.sprintf "s=%d" skew)
          ~r:{ r with Trance.Api.strategy = name }
      in
      run ~skew_aware:false Trance.Api.Standard;
      run ~skew_aware:false (Trance.Api.Shredded { unshred = false });
      run ~skew_aware:false (Trance.Api.Shredded { unshred = true });
      run ~skew_aware:false Trance.Api.SparkSQL_proxy;
      run ~skew_aware:true Trance.Api.Standard;
      run ~skew_aware:true (Trance.Api.Shredded { unshred = false });
      run ~skew_aware:true (Trance.Api.Shredded { unshred = true }))
    [ 0; 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Figure 9 *)

let fig9 () =
  Printf.printf "\n=== Figure 9: biomedical E2E pipeline (per-step sim s) ===\n";
  let run_dataset label scale =
    Printf.printf "\n--- %s dataset ---\n" label;
    let db = Biomed.Generator.generate scale in
    let inputs = Biomed.Generator.inputs db in
    let config = base_config ~default_mem:4.0 () in
    Printf.printf "%-14s %8s %8s %8s %8s %8s %8s %10s  %s\n" "strategy" "Step1"
      "Step2" "Step3" "Step4" "Step5" "total" "shuffleMB" "status";
    Printf.printf "%s\n" (String.make 100 '-');
    List.iter
      (fun strategy ->
        let r =
          api_run
            ~label:(label ^ "/" ^ Trance.Api.strategy_name strategy)
            ~config ~strategy Biomed.Pipeline.program inputs
        in
        let steps = Trance.Api.step_seconds r in
        let step name =
          List.fold_left
            (fun acc (s, t) ->
              if s = name || (name = "Step3" && s = "Step3u") then acc +. t
              else acc)
            0. steps
        in
        let total = List.fold_left (fun a (_, t) -> a +. t) 0. steps in
        Printf.printf "%-14s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %10.2f  %s\n"
          r.Trance.Api.strategy (step "Step1") (step "Step2") (step "Step3")
          (step "Step4") (step "Step5") total
          (mb (Exec.Stats.shuffled_bytes r.Trance.Api.stats))
          (match r.Trance.Api.failure with
          | None -> "ok"
          | Some f -> "FAIL (" ^ Trance.Api.failure_message f ^ ")"))
      [
        Trance.Api.Standard;
        Trance.Api.Shredded { unshred = false };
        Trance.Api.SparkSQL_proxy;
      ]
  in
  run_dataset "full" Biomed.Generator.full_scale;
  run_dataset "small" Biomed.Generator.small_scale

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablate () =
  Printf.printf
    "\n=== Ablations of the design choices (DESIGN.md section 5) ===\n";
  header ();
  let db = Tpch.Generator.generate (tpch_scale ()) in
  let base = base_config ~default_mem:10000. () in
  let cell family level =
    ( Tpch.Queries.program ~wide:false ~family ~level (),
      Tpch.Queries.input_values ~wide:false ~family ~level db )
  in
  let n2n = cell Tpch.Queries.Nested_to_nested 2 in
  let f2n = cell Tpch.Queries.Flat_to_nested 2 in
  let cases =
    [
      (* domain elimination: shredded route, nested input *)
      ("dom-elim ON", n2n, Trance.Api.Shredded { unshred = false }, base);
      ( "dom-elim OFF",
        n2n,
        Trance.Api.Shredded { unshred = false },
        { base with
          materializer = { Trance.Materialize.domain_elimination = false } } );
      (* cogroup fusion: standard route building nested output *)
      ("cogroup ON", f2n, Trance.Api.Standard, base);
      ( "cogroup OFF",
        f2n,
        Trance.Api.Standard,
        { base with Trance.Api.cogroup = false } );
      (* aggregation pushdown: standard route with the Part join *)
      ("push-agg ON", n2n, Trance.Api.Standard, base);
      ( "push-agg OFF",
        n2n,
        Trance.Api.Standard,
        { base with optimizer = { base.optimizer with push_aggs = false } } );
    ]
  in
  List.iter
    (fun (label, (prog, inputs), strategy, config) ->
      let r = api_run ~label ~config ~strategy prog inputs in
      row ~family:label ~level:"2" ~r)
    cases

(* ------------------------------------------------------------------ *)
(* Scaling sweep: growth of each strategy with top-level cardinality and
   inner-collection size (the dimensions Section 6 varies). *)

let scaling () =
  Printf.printf
    "\n=== Scaling: nested-to-nested L2, sim seconds per strategy ===\n";
  let family = Tpch.Queries.Nested_to_nested and level = 2 in
  let prog = Tpch.Queries.program ~wide:false ~family ~level () in
  let config = base_config ~default_mem:10000. () in
  let run_cell label scale =
    let db = Tpch.Generator.generate scale in
    let inputs = Tpch.Queries.input_values ~wide:false ~family ~level db in
    List.map
      (fun strategy ->
        let r =
          api_run
            ~label:(label ^ "/" ^ Trance.Api.strategy_name strategy)
            ~config ~strategy prog inputs
        in
        Exec.Stats.sim_seconds r.Trance.Api.stats)
      [
        Trance.Api.Standard;
        Trance.Api.Shredded { unshred = false };
        Trance.Api.Shredded { unshred = true };
      ]
  in
  Printf.printf "%-34s %10s %10s %10s\n" "dataset" "Standard" "Shred" "Shred+U";
  Printf.printf "%s\n" (String.make 70 '-');
  (* top-level cardinality sweep *)
  List.iter
    (fun c ->
      let label = Printf.sprintf "customers=%d" c in
      let ts = run_cell label { (tpch_scale ()) with customers = c } in
      Printf.printf "%-34s %10.4f %10.4f %10.4f\n" label (List.nth ts 0)
        (List.nth ts 1) (List.nth ts 2))
    [ sc 150; sc 300; sc 600; sc 1200 ];
  (* inner-collection-size sweep *)
  List.iter
    (fun lpo ->
      let label = Printf.sprintf "lineitems_per_order=%d" lpo in
      let ts = run_cell label { (tpch_scale ()) with lineitems_per_order = lpo } in
      Printf.printf "%-34s %10.4f %10.4f %10.4f\n" label (List.nth ts 0)
        (List.nth ts 1) (List.nth ts 2))
    [ 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Cost-model validation: does the estimator rank standard vs shredded the
   way the simulator measures it? (Section 8 future work, built here.) *)

let cost_model () =
  Printf.printf
    "\n=== Cost model: estimated vs measured standard/shredded ranking ===\n";
  Printf.printf "%-18s %-5s %12s %12s %10s %10s %7s\n" "family" "level"
    "est(std)" "est(shred)" "sim(std)" "sim(shred)" "agree";
  Printf.printf "%s\n" (String.make 82 '-');
  let db = Tpch.Generator.generate (tpch_scale ()) in
  let config = base_config ~default_mem:10000. () in
  let agree = ref 0 and total = ref 0 in
  List.iter
    (fun family ->
      List.iter
        (fun level ->
          let prog = Tpch.Queries.program ~family ~level () in
          let inputs = Tpch.Queries.input_values ~family ~level db in
          let rec_ = Trance.Cost.recommend ~config prog inputs in
          let sim strategy =
            let label =
              Printf.sprintf "%s/L%d/%s"
                (Tpch.Queries.family_name family)
                level
                (Trance.Api.strategy_name strategy)
            in
            Exec.Stats.sim_seconds
              (api_run ~label ~config ~strategy prog inputs).Trance.Api.stats
          in
          let t_std = sim Trance.Api.Standard in
          let t_shred = sim (Trance.Api.Shredded { unshred = false }) in
          let measured = if t_shred <= t_std then `Shredded else `Standard in
          let ok = measured = rec_.Trance.Cost.pick in
          incr total;
          if ok then incr agree;
          Printf.printf "%-18s %-5d %12.3g %12.3g %10.4f %10.4f %7s\n"
            (Tpch.Queries.family_name family)
            level rec_.Trance.Cost.standard_cost rec_.Trance.Cost.shredded_cost
            t_std t_shred
            (if ok then "yes" else "NO"))
        [ 1; 2; 3; 4 ])
    [
      Tpch.Queries.Flat_to_nested;
      Tpch.Queries.Nested_to_nested;
      Tpch.Queries.Nested_to_flat;
    ];
  Printf.printf "ranking agreement: %d/%d cells\n" !agree !total

(* ------------------------------------------------------------------ *)
(* Recovery overhead: each injectable fault vs the clean run, per
   strategy. The clean answer never changes (the differential suite checks
   that); this measures what recovery costs in simulated time and bytes. *)

let faults_sweep () =
  Printf.printf
    "\n=== Fault recovery overhead: nested-to-nested L2, one fault/run ===\n";
  let family = Tpch.Queries.Nested_to_nested and level = 2 in
  let prog = Tpch.Queries.program ~wide:false ~family ~level () in
  let db = Tpch.Generator.generate (tpch_scale ()) in
  let inputs = Tpch.Queries.input_values ~wide:false ~family ~level db in
  let base = base_config ~default_mem:10000. () in
  (* the memory squeeze only bites against a finite budget: give it a
     tight one and let it spill rather than FAIL *)
  let squeezed (c : Trance.Api.config) =
    { c with
      Trance.Api.cluster =
        { c.Trance.Api.cluster with
          worker_mem = 1048576;
          spill = Exec.Config.On } }
  in
  let keep c = c in
  let fault_specs =
    [
      ("none", [], keep);
      ( "crash:stage=1",
        [ Exec.Faults.default_spec Exec.Faults.Worker_crash ],
        keep );
      ( "task:stage=1,fails=2",
        [
          { (Exec.Faults.default_spec Exec.Faults.Task_failure) with
            Exec.Faults.stage = 1;
            fails = 2 };
        ],
        keep );
      ( "fetch:stage=1,fails=2",
        [
          { (Exec.Faults.default_spec Exec.Faults.Fetch_failure) with
            Exec.Faults.stage = 1;
            fails = 2 };
        ],
        keep );
      ( "straggler:stage=1,mult=8",
        [
          { (Exec.Faults.default_spec Exec.Faults.Straggler) with
            Exec.Faults.stage = 1 };
        ],
        keep );
      ( "memsqueeze:factor=0.25 @1MB",
        [
          { (Exec.Faults.default_spec Exec.Faults.Mem_squeeze) with
            Exec.Faults.factor = 0.25 };
        ],
        squeezed );
    ]
  in
  Printf.printf "%-16s %-26s %9s %9s %7s %7s %10s %10s %6s  %s\n" "strategy"
    "fault" "sim(s)" "overhead" "retries" "spec" "recompKB" "spilledKB"
    "rounds" "outcome";
  Printf.printf "%s\n" (String.make 118 '-');
  List.iter
    (fun strategy ->
      let clean = ref 0. in
      List.iter
        (fun (fname, sch, tweak) ->
          let config = tweak { base with Trance.Api.faults = sch } in
          let label =
            Printf.sprintf "%s/%s" (Trance.Api.strategy_name strategy) fname
          in
          let r = api_run ~label ~config ~strategy prog inputs in
          let s = r.Trance.Api.stats in
          let sim = Exec.Stats.sim_seconds s in
          if sch = [] then clean := sim;
          let overhead =
            if sch = [] || !clean <= 0. then "-"
            else Printf.sprintf "%+.1f%%" ((sim /. !clean -. 1.) *. 100.)
          in
          Printf.printf "%-16s %-26s %9.4f %9s %7d %7d %10.1f %10.1f %6d  %s\n"
            r.Trance.Api.strategy fname sim overhead
            (Exec.Stats.task_retries s)
            (Exec.Stats.speculative_tasks s)
            (float_of_int (Exec.Stats.recomputed_bytes s) /. 1024.)
            (float_of_int (Exec.Stats.spilled_bytes s) /. 1024.)
            (Exec.Stats.spill_rounds s)
            (Trance.Api.outcome_name (Trance.Api.outcome r)))
        fault_specs)
    [
      Trance.Api.Standard;
      Trance.Api.Shredded { unshred = false };
      Trance.Api.Shredded { unshred = true };
    ]

(* ------------------------------------------------------------------ *)
(* Recovery ladder: escalate from a clean run to a 4-crash storm and show
   what each checkpoint policy buys. Without checkpoints the lineage a
   crash replays grows with the run, so recomputed bytes climb with storm
   size; every=2 bounds the replay window and Auto places checkpoints only
   where the break-even test under the configured fault rate says they pay
   for themselves. *)

let recovery_sweep () =
  Printf.printf
    "\n\
     === Bounded recovery: crash-storm ladder x checkpoint policy \
     (nested-to-nested L2, shredded) ===\n";
  let family = Tpch.Queries.Nested_to_nested and level = 2 in
  let prog = Tpch.Queries.program ~wide:false ~family ~level () in
  let db = Tpch.Generator.generate (tpch_scale ()) in
  let inputs = Tpch.Queries.input_values ~wide:false ~family ~level db in
  let base = base_config ~default_mem:10000. () in
  let policies =
    [
      Exec.Config.No_checkpoints; Exec.Config.Every 2; Exec.Config.Auto;
    ]
  in
  Printf.printf "%-8s %-10s %9s %10s %6s %12s %9s %11s  %s\n" "storm"
    "checkpoint" "sim(s)" "recompKB" "ckpts" "checkpointKB" "truncKB"
    "recovery(s)" "outcome";
  Printf.printf "%s\n" (String.make 102 '-');
  List.iter
    (fun n ->
      let sch = if n = 0 then [] else Exec.Faults.storm ~first_stage:2 n in
      List.iter
        (fun policy ->
          let config =
            { base with
              Trance.Api.faults = sch;
              cluster =
                { base.Trance.Api.cluster with
                  Exec.Config.checkpoint = policy;
                  (* give Auto a fault rate matching the storm it faces,
                     not the quiet default *)
                  fault_rate = (if n = 0 then 0.05 else 0.5) } }
          in
          let label =
            Printf.sprintf "storm=%d/%s" n (Exec.Config.checkpoint_name policy)
          in
          let r =
            api_run ~label ~config
              ~strategy:(Trance.Api.Shredded { unshred = true })
              prog inputs
          in
          let s = r.Trance.Api.stats in
          Printf.printf "%-8d %-10s %9.4f %10.1f %6d %12.1f %9.1f %11.4f  %s\n"
            n
            (Exec.Config.checkpoint_name policy)
            (Exec.Stats.sim_seconds s)
            (float_of_int (Exec.Stats.recomputed_bytes s) /. 1024.)
            (Exec.Stats.checkpoints_written s)
            (float_of_int (Exec.Stats.checkpoint_bytes s) /. 1024.)
            (float_of_int (Exec.Stats.lineage_truncated s) /. 1024.)
            (Exec.Stats.recovery_seconds s)
            (Trance.Api.outcome_name (Trance.Api.outcome r)))
        policies)
    [ 0; 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Memory pressure: sweep the per-worker budget from comfortable to
   starved and show the in-memory / spilling / fell-back crossover. The
   ladder is calibrated against the clean Standard peak so the same
   regimes appear at any --scale. *)

let memory () =
  Printf.printf
    "\n=== Memory pressure: nested-to-nested L2, shrinking worker budgets ===\n";
  let family = Tpch.Queries.Nested_to_nested and level = 2 in
  let prog = Tpch.Queries.program ~wide:false ~family ~level () in
  let db = Tpch.Generator.generate (tpch_scale ()) in
  let inputs = Tpch.Queries.input_values ~wide:false ~family ~level db in
  let base = base_config ~default_mem:10000. () in
  let calibrate =
    api_run ~label:"calibrate/Standard" ~config:base
      ~strategy:Trance.Api.Standard prog inputs
  in
  let peak = Exec.Stats.peak_worker_bytes calibrate.Trance.Api.stats in
  Printf.printf "clean Standard peak: %.2fMB per worker\n\n" (mb peak);
  let variants =
    [
      ( "Standard (spill off)",
        Trance.Api.Standard,
        fun (c : Trance.Api.config) -> c );
      ( "Standard (spill on)",
        Trance.Api.Standard,
        fun (c : Trance.Api.config) ->
          { c with
            Trance.Api.route_fallback = true;
            cluster =
              { c.Trance.Api.cluster with
                spill = Exec.Config.On;
                max_spill_rounds = 8 } } );
      ( "Shred+U (spill on)",
        Trance.Api.Shredded { unshred = true },
        fun (c : Trance.Api.config) ->
          { c with
            Trance.Api.cluster =
              { c.Trance.Api.cluster with spill = Exec.Config.On } } );
    ]
  in
  Printf.printf "%-22s %9s %9s %10s %6s %6s  %s\n" "strategy" "memMB" "sim(s)"
    "spilledMB" "parts" "rounds" "regime";
  Printf.printf "%s\n" (String.make 86 '-');
  List.iter
    (fun frac ->
      List.iter
        (fun (vname, strategy, tweak) ->
          let budget = max 1 (int_of_float (float_of_int peak *. frac)) in
          let config =
            tweak
              { base with
                Trance.Api.cluster =
                  { (cluster ~default_mem:10000. ()) with worker_mem = budget } }
          in
          let label = Printf.sprintf "%s/%.3fxpeak" vname frac in
          let r = api_run ~label ~config ~strategy prog inputs in
          let s = r.Trance.Api.stats in
          let regime =
            match Trance.Api.outcome r, r.Trance.Api.degradation with
            | Trance.Api.Failed, _ -> "FAIL"
            | _, Some d when d.Trance.Api.fell_back ->
              "fell back to " ^ d.Trance.Api.answered_by
            | _, Some _ -> "spilling"
            | _, None -> "in-memory"
          in
          Printf.printf "%-22s %9.2f %9.4f %10.2f %6d %6d  %s\n" vname
            (mb budget)
            (Exec.Stats.sim_seconds s)
            (mb (Exec.Stats.spilled_bytes s))
            (Exec.Stats.spill_partitions s)
            (Exec.Stats.spill_rounds s)
            regime)
        variants;
      print_newline ())
    [ 1.25; 0.5; 0.25; 1. /. 16.; 1. /. 64. ]

(* ------------------------------------------------------------------ *)
(* Domain scaling: sweep --domains over both routes and show wall-clock
   speedup while every simulated counter stays bit-identical (the parallel
   executor's contract: domains are a pure speed knob). Also written to
   BENCH_parallel.json for the CI artifact. *)

let scale_domains () =
  Printf.printf
    "\n\
     === Domain scaling: wall seconds vs --domains (sim counters \
     bit-identical) ===\n";
  let cells =
    [
      ("n-to-n/L2", Tpch.Queries.Nested_to_nested, 2, tpch_scale ());
      ("f-to-n/L4", Tpch.Queries.Flat_to_nested, 4, tpch_scale ());
      ( "n-to-n/L4-large",
        Tpch.Queries.Nested_to_nested,
        4,
        { (tpch_scale ()) with customers = sc 1200 } );
    ]
  in
  let strategies =
    [ Trance.Api.Standard; Trance.Api.Shredded { unshred = true } ]
  in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  let first = ref true in
  Printf.printf "%-18s %-16s %7s %9s %9s %8s %6s\n" "cell" "strategy" "domains"
    "wall(s)" "sim(s)" "speedup" "sim=";
  Printf.printf "%s\n" (String.make 82 '-');
  List.iter
    (fun (cname, family, level, scale) ->
      let db = Tpch.Generator.generate scale in
      let prog = Tpch.Queries.program ~wide:false ~family ~level () in
      let inputs = Tpch.Queries.input_values ~wide:false ~family ~level db in
      List.iter
        (fun strategy ->
          let base = base_config ~default_mem:10000. () in
          (* wall and stripped counters at domains=1: the speedup
             denominator and the bit-identity reference *)
          let baseline = ref None in
          List.iter
            (fun domains ->
              let config =
                { base with
                  Trance.Api.cluster =
                    { base.Trance.Api.cluster with Exec.Config.domains } }
              in
              let label =
                Printf.sprintf "%s/%s/d%d" cname
                  (Trance.Api.strategy_name strategy)
                  domains
              in
              let r = api_run ~label ~config ~strategy prog inputs in
              let wall = r.Trance.Api.wall_seconds in
              let snap =
                Exec.Stats.strip_wall (Exec.Stats.snapshot r.Trance.Api.stats)
              in
              let speedup, identical =
                match !baseline with
                | None ->
                  baseline := Some (wall, snap);
                  (1.0, true)
                | Some (w1, s1) ->
                  ((if wall > 0. then w1 /. wall else 0.), s1 = snap)
              in
              Printf.printf "%-18s %-16s %7d %9.3f %9.3f %7.2fx %6s\n" cname
                r.Trance.Api.strategy domains wall
                (Exec.Stats.sim_seconds r.Trance.Api.stats)
                speedup
                (if identical then "yes" else "NO");
              if not !first then Buffer.add_char buf ',';
              first := false;
              Buffer.add_string buf
                (Printf.sprintf
                   "{\"cell\":\"%s\",\"strategy\":\"%s\",\"domains\":%d,\"wall_seconds\":%.6f,\"sim_seconds\":%.6f,\"speedup\":%.4f,\"sim_identical\":%b}"
                   cname r.Trance.Api.strategy domains wall
                   (Exec.Stats.sim_seconds r.Trance.Api.stats)
                   speedup identical))
            domain_counts)
        strategies)
    cells;
  Buffer.add_string buf "]\n";
  (match open_out "BENCH_parallel.json" with
  | exception Sys_error msg -> Fmt.epr "cannot write BENCH_parallel.json: %s@." msg
  | oc ->
    Buffer.output_buffer oc buf;
    close_out oc;
    Printf.printf "\nwrote BENCH_parallel.json\n")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let micro () =
  Printf.printf "\n=== Micro-benchmarks (Bechamel, monotonic clock) ===\n";
  let open Bechamel in
  let db =
    Tpch.Generator.generate { (tpch_scale ()) with customers = 60; parts = 100 }
  in
  let cop2 = Tpch.Generator.nested_input ~level:2 db in
  let elem2 = Nrc.Types.element (Tpch.Queries.nested_input_ty ~level:2 ()) in
  let shredded = Trance.Shred_value.shred_bag "COP" elem2 cop2 in
  let q2 =
    Tpch.Queries.program ~family:Tpch.Queries.Nested_to_nested ~level:2 ()
  in
  let inputs2 =
    Tpch.Queries.input_values ~family:Tpch.Queries.Nested_to_nested ~level:2 db
  in
  let tests =
    [
      Test.make ~name:"value_shred_L2"
        (Staged.stage (fun () ->
             ignore (Trance.Shred_value.shred_bag "COP" elem2 cop2)));
      Test.make ~name:"value_unshred_L2"
        (Staged.stage (fun () ->
             ignore
               (Trance.Shred_value.unshred_bag elem2
                  shredded.Trance.Shred_value.top
                  shredded.Trance.Shred_value.dicts)));
      Test.make ~name:"compile_standard_L2"
        (Staged.stage (fun () -> ignore (Trance.Api.compile_standard q2)));
      Test.make ~name:"compile_shredded_L2"
        (Staged.stage (fun () -> ignore (Trance.Api.compile_shredded q2)));
      Test.make ~name:"nrc_eval_n2n_L2"
        (Staged.stage (fun () -> ignore (Nrc.Program.eval_result q2 inputs2)));
    ]
  in
  let clock = Bechamel.Toolkit.Instance.monotonic_clock in
  List.iter
    (fun t ->
      let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
      let results =
        Benchmark.all cfg [ clock ] (Test.make_grouped ~name:"micro" [ t ])
      in
      let analyzed =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Printf.printf "%-32s %14.1f ns/run\n" name est
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)

let all_targets =
  [
    ("fig7_narrow", fun () -> fig7 ~wide:false ());
    ("fig7_wide", fun () -> fig7 ~wide:true ());
    ("fig8_skew", fig8);
    ("fig9_biomed", fig9);
    ("ablate", ablate);
    ("scaling", scaling);
    ("cost_model", cost_model);
    ("faults", faults_sweep);
    ("recovery", recovery_sweep);
    ("memory", memory);
    ("scale", scale_domains);
    ("micro", micro);
  ]

let write_json path =
  let b = Buffer.create 65536 in
  Buffer.add_char b '[';
  List.iteri
    (fun i (label, r) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"label\":\"";
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\""
          | '\\' -> Buffer.add_string b "\\\\"
          | c -> Buffer.add_char b c)
        label;
      Buffer.add_string b "\",\"run\":";
      Buffer.add_string b (Trance.Api.run_json r);
      Buffer.add_char b '}')
    (List.rev !recorded);
  Buffer.add_string b "]\n";
  match open_out path with
  | exception Sys_error msg ->
      Fmt.epr "cannot write JSON report: %s@." msg;
      exit 1
  | oc ->
      Buffer.output_buffer oc b;
      close_out oc

(* ------------------------------------------------------------------ *)
(* Command line *)

open Cmdliner

let scale_arg =
  Arg.(
    value & opt float 1.0
    & info [ "scale" ] ~docv:"F" ~doc:"Multiply dataset sizes by $(docv).")

let mem_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "mem" ] ~docv:"MB"
        ~doc:
          "Per-worker memory budget in MB, overriding the per-figure \
           defaults (the FAIL threshold).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Record every run — totals, per-step stats slices, per-operator \
           span trees — and write them as a JSON array to $(docv).")

let targets_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"TARGET"
        ~doc:
          "Benchmark targets to run, in order (default: all). Available: \
           fig7_narrow, fig7_wide, fig8_skew, fig9_biomed, ablate, scaling, \
           cost_model, faults, recovery, memory, scale, micro.")

let main scale mem json ts =
  scale_factor := scale;
  mem_mb := mem;
  json_path := json;
  let requested = match ts with [] -> List.map fst all_targets | ts -> ts in
  match
    List.find_opt (fun t -> not (List.mem_assoc t all_targets)) requested
  with
  | Some t ->
    Printf.eprintf "unknown target %s (available: %s)\n" t
      (String.concat ", " (List.map fst all_targets));
    1
  | None ->
    List.iter
      (fun t ->
        current_target := t;
        (List.assoc t all_targets) ())
      requested;
    Option.iter
      (fun path ->
        write_json path;
        Printf.printf "\nwrote %d run reports to %s\n"
          (List.length !recorded) path)
      json;
    Printf.printf
      "\nDone. See EXPERIMENTS.md for the paper-vs-measured comparison.\n";
    0

let () =
  let info =
    Cmd.info "bench"
      ~doc:
        "Regenerate the paper's evaluation figures and tables on the cluster \
         simulator."
  in
  exit
    (Cmd.eval'
       (Cmd.v info Term.(const main $ scale_arg $ mem_arg $ json_arg $ targets_arg)))
