(** Command-line interface to the framework.

    {v
      trance explain --family nested-to-nested --level 2 --route shredded
      trance run     --family nested-to-flat --level 3 --strategy shred --skew 2
      trance biomed  --strategy standard --small
    v} *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let family_arg =
  let parse = function
    | "flat-to-nested" | "f2n" -> Ok Tpch.Queries.Flat_to_nested
    | "nested-to-nested" | "n2n" -> Ok Tpch.Queries.Nested_to_nested
    | "nested-to-flat" | "n2f" -> Ok Tpch.Queries.Nested_to_flat
    | s -> Error (`Msg ("unknown family " ^ s))
  in
  let print ppf f = Fmt.string ppf (Tpch.Queries.family_name f) in
  Arg.(
    value
    & opt (conv (parse, print)) Tpch.Queries.Nested_to_nested
    & info [ "family"; "f" ] ~docv:"FAMILY"
        ~doc:
          "Query family: flat-to-nested (f2n), nested-to-nested (n2n), or \
           nested-to-flat (n2f).")

let level_arg =
  Arg.(
    value & opt int 2
    & info [ "level"; "l" ] ~docv:"LEVEL" ~doc:"Nesting level (0-4).")

let wide_arg =
  Arg.(
    value & flag
    & info [ "wide" ] ~doc:"Use the wide query variant (all attributes kept).")

let skew_arg =
  Arg.(
    value & opt int 0
    & info [ "skew" ] ~docv:"S" ~doc:"Zipf skew factor of the generated data (0-4).")

let scale_arg =
  Arg.(
    value & opt int 150
    & info [ "customers" ] ~docv:"N" ~doc:"Number of customers to generate.")

let strategy_arg =
  let parse = function
    | "standard" | "std" -> Ok Trance.Api.Standard
    | "shred" -> Ok (Trance.Api.Shredded { unshred = false })
    | "shred-unshred" | "unshred" -> Ok (Trance.Api.Shredded { unshred = true })
    | "sparksql" -> Ok Trance.Api.SparkSQL_proxy
    | s -> Error (`Msg ("unknown strategy " ^ s))
  in
  let print ppf s = Fmt.string ppf (Trance.Api.strategy_name s) in
  Arg.(
    value
    & opt (conv (parse, print)) (Trance.Api.Shredded { unshred = true })
    & info [ "strategy"; "s" ] ~docv:"STRATEGY"
        ~doc:"Evaluation strategy: standard, shred, shred-unshred, sparksql.")

let skew_aware_arg =
  Arg.(
    value & flag
    & info [ "skew-aware" ] ~doc:"Enable the skew-resilient operators (Section 5).")

let mem_arg =
  Arg.(
    value & opt float 64.
    & info [ "mem" ] ~docv:"MB" ~doc:"Per-worker memory budget in MB.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Record and print the per-operator execution span tree (one tree \
           per assignment), plus a totals line checked against the flat \
           statistics.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the full run report (totals, per-step stats slices, span \
           trees) as JSON to FILE. Implies tracing.")

let inject_arg =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Exec.Faults.schedule_of_string s)
  in
  let print ppf sch = Fmt.string ppf (Exec.Faults.schedule_to_string sch) in
  Arg.(
    value
    & opt (conv (parse, print)) []
    & info [ "inject" ] ~docv:"SCHEDULE"
        ~doc:
          "Inject a deterministic fault schedule into the run and recover \
           from it Spark-style. A schedule is one or more '+'-separated \
           faults, e.g. crash:stage=2 or \
           'crash:stage=2+task:stage=4,fails=2' (a fault storm). Fault \
           syntax: crash:stage=2, task:stage=1,fails=2, fetch:stage=3, \
           straggler:stage=1,mult=8, memsqueeze:stage=0,factor=0.25. \
           Recovery cost (retries, speculative tasks, recomputed bytes, \
           recovery seconds) shows in the stats and the trace; combine with \
           --checkpoint to bound it.")

let checkpoint_arg =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Exec.Config.checkpoint_of_string s)
  in
  let print ppf c = Fmt.string ppf (Exec.Config.checkpoint_name c) in
  Arg.(
    value
    & opt (conv (parse, print)) Exec.Config.default.Exec.Config.checkpoint
    & info [ "checkpoint" ] ~docv:"POLICY"
        ~doc:
          "Materialize stage outputs to simulated replicated stable storage, \
           truncating recovery lineage: off (default), every=K (every K \
           compute stages), or auto (checkpoint where expected recompute \
           under the configured fault rate exceeds the write cost). The \
           write cost is charged to the stage; checkpoints and truncated \
           lineage show in the stats.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Per-run deadline in simulated seconds. A run that exceeds it — \
           typically while recovering from an injected fault storm — \
           finishes as a typed failure naming the deadline instead of \
           recomputing unboundedly.")

let spill_arg =
  let parse s = Result.map_error (fun m -> `Msg m) (Exec.Config.spill_of_string s) in
  let print ppf sp = Fmt.string ppf (Exec.Config.spill_name sp) in
  Arg.(
    value
    & opt (conv (parse, print)) Exec.Config.default.Exec.Config.spill
    & info [ "spill" ] ~docv:"on|off"
        ~doc:
          "Let over-budget operators spill their build side to simulated \
           disk (grace-hash partitioning, charged as spilled bytes and disk \
           time) instead of failing. With off the run reproduces the paper's \
           FAIL outcomes.")

let no_fallback_arg =
  Arg.(
    value & flag
    & info [ "no-fallback" ]
        ~doc:
          "Disable the adaptive route fallback: a standard-route run that \
           exhausts worker memory fails instead of re-planning down the \
           shredded route.")

let domains_arg =
  Arg.(
    value
    & opt int Exec.Config.default.Exec.Config.domains
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Run partition tasks on N OCaml domains (default honours \
           TRANCE_DOMAINS, else 1 = sequential). A pure speed knob: any N \
           produces bit-identical results, stats, traces, fault victims and \
           checkpoint bytes — only wall_seconds changes.")

let api_config ~mem ~skew_aware ?(spill = Exec.Config.default.Exec.Config.spill)
    ?(no_fallback = false) ?(trace = false) ?(faults = [])
    ?(checkpoint = Exec.Config.default.Exec.Config.checkpoint) ?deadline
    ?(domains = Exec.Config.default.Exec.Config.domains) () =
  { Trance.Api.default_config with
    skew_aware;
    trace;
    faults;
    route_fallback = not no_fallback;
    cluster =
      { Exec.Config.default with
        worker_mem = int_of_float (mem *. 1048576.);
        spill;
        checkpoint;
        deadline;
        domains };
    optimizer =
      { Plan.Optimize.default with unique_keys = [ ("Part", [ "pkey" ]) ] } }

let print_trace (r : Trance.Api.run) =
  List.iter
    (fun sp -> Fmt.pr "%a" Exec.Trace.pp_tree sp)
    r.Trance.Api.trace;
  let t = Exec.Trace.agg r.Trance.Api.trace in
  let s = r.Trance.Api.stats in
  let mb b = float_of_int b /. 1048576. in
  Fmt.pr
    "trace totals: shuffle=%.2fMB bcast=%.2fMB peak=%.2fMB spilled=%.2fMB \
     (flat stats agree: %s)@."
    (mb t.Exec.Trace.shuffled_bytes)
    (mb t.Exec.Trace.broadcast_bytes)
    (mb t.Exec.Trace.peak_worker_bytes)
    (mb t.Exec.Trace.spilled_bytes)
    (if
       t.Exec.Trace.shuffled_bytes = Exec.Stats.shuffled_bytes s
       && t.Exec.Trace.broadcast_bytes = Exec.Stats.broadcast_bytes s
       && t.Exec.Trace.peak_worker_bytes = Exec.Stats.peak_worker_bytes s
       && t.Exec.Trace.spilled_bytes = Exec.Stats.spilled_bytes s
     then "yes"
     else "NO")

let write_json path (r : Trance.Api.run) =
  match open_out path with
  | exception Sys_error msg ->
      Fmt.epr "cannot write run report: %s@." msg;
      exit 1
  | oc ->
      output_string oc (Trance.Api.run_json r);
      output_char oc '\n';
      close_out oc;
      Fmt.pr "wrote run report to %s@." path

let make_db ~customers ~skew =
  Tpch.Generator.generate
    { Tpch.Generator.default_scale with customers; skew; parts = 300 }

(* ------------------------------------------------------------------ *)
(* explain: show the query, the standard plan, and the shredded program *)

let spark_arg =
  Arg.(
    value & flag
    & info [ "spark" ]
        ~doc:"Also emit the Spark/Scala code generated for each plan.")

let explain family level wide spark =
  let prog = Tpch.Queries.program ~wide ~family ~level () in
  Fmt.pr "== NRC ==@.%a@." Nrc.Program.pp prog;
  let plans = Trance.Api.compile_standard prog in
  List.iter
    (fun (name, plan) -> Fmt.pr "== standard plan for %s ==@.%a@.@." name Plan.Op.pp plan)
    plans;
  if spark then
    Fmt.pr "== generated Spark code (standard route) ==@.%s@."
      (Trance.Spark_codegen.assignments_to_scala plans);
  let sc = Trance.Api.compile_shredded prog in
  Fmt.pr "== materialized shredded program ==@.%a@." Nrc.Program.pp
    sc.Trance.Api.pipeline.Trance.Shred_pipeline.mat;
  if spark then
    Fmt.pr "== generated Spark code (shredded route) ==@.%s@."
      (Trance.Spark_codegen.assignments_to_scala sc.Trance.Api.plans);
  (match sc.Trance.Api.unshred_plan with
  | Some p -> Fmt.pr "== unshredding plan ==@.%a@." Plan.Op.pp p
  | None -> Fmt.pr "(flat output: no unshredding needed)@.");
  0

let explain_cmd =
  Cmd.v
    (Cmd.info "explain" ~doc:"Show compilation artifacts for a TPC-H query cell.")
    Term.(const explain $ family_arg $ level_arg $ wide_arg $ spark_arg)

(* ------------------------------------------------------------------ *)
(* run: execute one cell on the simulator *)

let print_outcome (r : Trance.Api.run) =
  let s0 = r.Trance.Api.stats in
  if Exec.Stats.checkpoints_written s0 > 0 then
    Fmt.pr
      "wrote %d checkpoints (%.1fKB), truncating %.1fKB of recovery lineage@."
      (Exec.Stats.checkpoints_written s0)
      (float_of_int (Exec.Stats.checkpoint_bytes s0) /. 1024.)
      (float_of_int (Exec.Stats.lineage_truncated s0) /. 1024.);
  match Trance.Api.outcome r with
  | Trance.Api.Degraded ->
    let s = r.Trance.Api.stats in
    if
      Exec.Stats.task_retries s > 0
      || Exec.Stats.speculative_tasks s > 0
      || Exec.Stats.recomputed_bytes s > 0
    then
      Fmt.pr
        "recovered from injected fault: %d retries, %d retried tasks, %d \
         speculative, %.1fKB recomputed, %.4fs recovery time@."
        (Exec.Stats.task_retries s)
        (Exec.Stats.retried_tasks s)
        (Exec.Stats.speculative_tasks s)
        (float_of_int (Exec.Stats.recomputed_bytes s) /. 1024.)
        (Exec.Stats.recovery_seconds s);
    Option.iter
      (fun (d : Trance.Api.degradation) ->
        if d.Trance.Api.fell_back then
          Fmt.pr "standard route exhausted memory (%s); fell back to %s@."
            (match d.Trance.Api.first_failure with
            | Some f -> Trance.Api.failure_message f
            | None -> "out of memory")
            d.Trance.Api.answered_by;
        if d.Trance.Api.spilled_bytes > 0 then
          Fmt.pr "spilled %.1fKB across %d build partitions (%d rounds)@."
            (float_of_int d.Trance.Api.spilled_bytes /. 1024.)
            d.Trance.Api.spill_partitions d.Trance.Api.spill_rounds)
      r.Trance.Api.degradation
  | Trance.Api.Completed | Trance.Api.Failed -> ()

let run_cell family level wide skew customers strategy skew_aware mem spill
    no_fallback trace json inject checkpoint deadline domains =
  let db = make_db ~customers ~skew in
  let prog = Tpch.Queries.program ~wide ~family ~level () in
  let inputs = Tpch.Queries.input_values ~wide ~family ~level db in
  let config =
    api_config ~mem ~skew_aware ~spill ~no_fallback
      ~trace:(trace || json <> None) ~faults:inject ~checkpoint ?deadline
      ~domains ()
  in
  let r = Trance.Api.run ~config ~strategy prog inputs in
  Fmt.pr "%a@." Trance.Api.pp_run r;
  print_outcome r;
  if trace then print_trace r;
  Option.iter (fun path -> write_json path r) json;
  (match r.Trance.Api.value, strategy with
  | Some v, Trance.Api.Shredded { unshred = false } ->
    Fmt.pr
      "output left in shredded form: %d top-level tuples (run with -s \
       shred-unshred to reassemble the nested value)@."
      (List.length (Nrc.Value.bag_items v))
  | Some v, _ ->
    let reference = Nrc.Program.eval_result prog inputs in
    if Nrc.Value.approx_bag_equal v reference then
      Fmt.pr "result verified against the reference interpreter (%d rows)@."
        (List.length (Nrc.Value.bag_items v))
    else Fmt.pr "WARNING: result differs from the reference interpreter!@."
  | None, _ -> ());
  match r.Trance.Api.failure with Some _ -> 1 | None -> 0

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run a TPC-H query cell on the cluster simulator.")
    Term.(
      const run_cell $ family_arg $ level_arg $ wide_arg $ skew_arg $ scale_arg
      $ strategy_arg $ skew_aware_arg $ mem_arg $ spill_arg $ no_fallback_arg
      $ trace_arg $ json_arg $ inject_arg $ checkpoint_arg $ deadline_arg
      $ domains_arg)

(* ------------------------------------------------------------------ *)
(* biomed: the E2E pipeline *)

let small_arg =
  Arg.(value & flag & info [ "small" ] ~doc:"Use the small dataset variant.")

let run_biomed strategy skew_aware mem spill no_fallback small trace json
    inject checkpoint deadline domains =
  let scale =
    if small then Biomed.Generator.small_scale else Biomed.Generator.full_scale
  in
  let db = Biomed.Generator.generate scale in
  let inputs = Biomed.Generator.inputs db in
  let config =
    api_config ~mem ~skew_aware ~spill ~no_fallback
      ~trace:(trace || json <> None) ~faults:inject ~checkpoint ?deadline
      ~domains ()
  in
  let r = Trance.Api.run ~config ~strategy Biomed.Pipeline.program inputs in
  Fmt.pr "%a@." Trance.Api.pp_run r;
  print_outcome r;
  List.iter
    (fun (s : Trance.Api.step_report) ->
      Fmt.pr "  %-8s %.4f sim s [%a]@." s.Trance.Api.step
        s.Trance.Api.sim_seconds Exec.Stats.pp_snapshot s.Trance.Api.stats)
    r.Trance.Api.steps;
  if trace then print_trace r;
  Option.iter (fun path -> write_json path r) json;
  match r.Trance.Api.failure with Some _ -> 1 | None -> 0

let biomed_cmd =
  Cmd.v
    (Cmd.info "biomed" ~doc:"Run the biomedical E2E pipeline (Figure 9).")
    Term.(
      const run_biomed $ strategy_arg $ skew_aware_arg $ mem_arg $ spill_arg
      $ no_fallback_arg $ small_arg $ trace_arg $ json_arg $ inject_arg
      $ checkpoint_arg $ deadline_arg $ domains_arg)

(* ------------------------------------------------------------------ *)
(* query: parse and run a textual NRC query against generated TPC-H data *)

let query_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"QUERY"
        ~doc:
          "NRC query text over the TPC-H tables (Lineitem, Orders, Customer, \
           Nation, Region, Part) and/or the nested input COP. Example: 'for \
           p in Part union if p.pprice > 50.0 then sng(pname := p.pname)'.")

let nested_level_arg =
  Arg.(
    value & opt int 2
    & info [ "cop-level" ] ~docv:"LEVEL"
        ~doc:"Nesting level of the COP input made available to the query.")

let limit_arg =
  Arg.(
    value & opt int 10
    & info [ "limit" ] ~docv:"N" ~doc:"Print at most N result rows.")

let run_query qtext level skew customers strategy skew_aware mem limit =
  let db = make_db ~customers ~skew in
  let inputs_ty =
    Tpch.Schema.flat_inputs_ty
    @ [ (Tpch.Queries.nested_name, Tpch.Queries.nested_input_ty ~level ()) ]
  in
  let inputs_val =
    Tpch.Generator.flat_inputs db
    @ [ (Tpch.Queries.nested_name, Tpch.Generator.nested_input ~level db) ]
  in
  match Nrc.Parser.program_of_string ~inputs:inputs_ty qtext with
  | exception Nrc.Parser.Parse_error { pos; message } ->
    Fmt.epr "parse error at offset %d: %s@." pos message;
    1
  | exception Nrc.Lexer.Lex_error { pos; message } ->
    Fmt.epr "lex error at offset %d: %s@." pos message;
    1
  | prog -> (
    match Nrc.Program.typecheck prog with
    | exception Nrc.Typecheck.Type_error m ->
      Fmt.epr "type error: %s@." m;
      1
    | _ ->
      let config = api_config ~mem ~skew_aware () in
      let r = Trance.Api.run ~config ~strategy prog inputs_val in
      Fmt.pr "%a@." Trance.Api.pp_run r;
      (match r.Trance.Api.value with
      | Some v ->
        let rows = Nrc.Value.bag_items v in
        Fmt.pr "%d rows; first %d:@." (List.length rows) limit;
        List.iteri
          (fun i row -> if i < limit then Fmt.pr "  %a@." Nrc.Value.pp row)
          rows
      | None -> ());
      (match r.Trance.Api.failure with Some _ -> 1 | None -> 0))

let query_cmd =
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Parse an NRC query from text and run it on the simulator against \
          generated TPC-H data.")
    Term.(
      const run_query $ query_arg $ nested_level_arg $ skew_arg $ scale_arg
      $ strategy_arg $ skew_aware_arg $ mem_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* recommend: estimate both routes and pick one (cost model, Section 8) *)

let run_recommend family level wide skew customers =
  let db = make_db ~customers ~skew in
  let prog = Tpch.Queries.program ~wide ~family ~level () in
  let inputs = Tpch.Queries.input_values ~wide ~family ~level db in
  let r = Trance.Cost.recommend prog inputs in
  Fmt.pr "estimated cost: standard %.3g, shredded %.3g => use %s@."
    r.Trance.Cost.standard_cost r.Trance.Cost.shredded_cost
    (match r.Trance.Cost.pick with
    | `Standard -> "the standard route"
    | `Shredded -> "the shredded route");
  let cluster = Exec.Config.default in
  let plans = Trance.Api.compile_standard prog in
  let ck =
    Trance.Cost.recommend_checkpoint_interval cluster
      (Trance.Cost.stats_of_inputs inputs)
      plans
  in
  Fmt.pr
    "checkpoint interval (Young-Daly, fault rate %.3g/stage): every=%d \
     (avg stage %.1fKB, write %.4gs, expected recompute %.4gs/stage)@."
    cluster.Exec.Config.fault_rate ck.Trance.Cost.interval
    (ck.Trance.Cost.avg_stage_bytes /. 1024.)
    ck.Trance.Cost.write_seconds ck.Trance.Cost.expected_recompute_seconds;
  0

let recommend_cmd =
  Cmd.v
    (Cmd.info "recommend"
       ~doc:
         "Estimate the cost of both compilation routes for a TPC-H cell and \
          recommend one (the cost model of the paper's future-work section).")
    Term.(
      const run_recommend $ family_arg $ level_arg $ wide_arg $ skew_arg
      $ scale_arg)

(* ------------------------------------------------------------------ *)

let default =
  Term.(
    ret
      (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let info =
    Cmd.info "trance"
      ~doc:
        "Scalable querying of nested data: shredded compilation of NRC \
         programs on a simulated cluster (reproduction of Smith et al., \
         PVLDB 14(3), 2020)."
  in
  exit (Cmd.eval' (Cmd.group ~default info [ explain_cmd; run_cmd; biomed_cmd; query_cmd; recommend_cmd ]))
