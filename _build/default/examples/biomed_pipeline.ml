(** The biomedical end-to-end pipeline (Section 6 / Figure 9): a five-step
    cancer driver-gene analysis over two-level nested mutation occurrences,
    a one-level nested protein interaction network, and flat clinical
    tables. The intermediate results are nested, the final report is flat —
    the shredded route runs the whole pipeline without ever rebuilding a
    nested value.

    Run with: [dune exec examples/biomed_pipeline.exe] *)

let () =
  let db = Biomed.Generator.generate Biomed.Generator.small_scale in
  let inputs = Biomed.Generator.inputs db in
  Fmt.pr "Pipeline (%d assignments):@.%a@."
    (List.length Biomed.Pipeline.program.Nrc.Program.assignments)
    Nrc.Program.pp Biomed.Pipeline.program;

  let config = { Trance.Api.default_config with collect = true } in
  let reference = Nrc.Program.eval_result Biomed.Pipeline.program inputs in

  List.iter
    (fun strategy ->
      let r = Trance.Api.run ~config ~strategy Biomed.Pipeline.program inputs in
      Fmt.pr "=== %s ===@.%a@." r.Trance.Api.strategy Trance.Api.pp_run r;
      List.iter
        (fun (step, t) -> Fmt.pr "  %-8s %.4f sim s@." step t)
        (Trance.Api.step_seconds r);
      (match r.Trance.Api.value with
      | Some v when Nrc.Value.approx_bag_equal v reference ->
        Fmt.pr "  final report matches the reference (%d genes)@.@."
          (List.length (Nrc.Value.bag_items v))
      | Some _ -> Fmt.pr "  WARNING: result differs!@.@."
      | None -> Fmt.pr "@."))
    [ Trance.Api.Standard; Trance.Api.Shredded { unshred = false } ];

  (* top driver genes from the reference result *)
  let top =
    Nrc.Value.bag_items reference
    |> List.sort (fun a b ->
           Nrc.Value.compare (Nrc.Value.field b "driver") (Nrc.Value.field a "driver"))
    |> List.filteri (fun i _ -> i < 5)
  in
  Fmt.pr "Top driver genes:@.";
  List.iter
    (fun g ->
      Fmt.pr "  %-10s %-6s %a@."
        (Nrc.Value.as_string (Nrc.Value.field g "gname"))
        (Nrc.Value.as_string (Nrc.Value.field g "chrom"))
        Nrc.Value.pp (Nrc.Value.field g "driver"))
    top
