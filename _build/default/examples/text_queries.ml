(** Queries as text: the surface-syntax parser lets analysts write NRC
    directly, typecheck it against a schema, inspect both compilation
    routes, and run distributed — without touching the OCaml builder API.

    Run with: [dune exec examples/text_queries.exe] *)

let queries =
  [
    ( "parts above average-ish price",
      {| for p in Part union
           if p.pprice > 50.0 then sng( pname := p.pname, price := p.pprice ) |}
    );
    ( "revenue per part name (Example 1's aggregate, flat)",
      {| sumBy(pname; revenue)(
           for l in Lineitem union
           for p in Part union
           if l.pkey == p.pkey then
             sng( pname := p.pname, revenue := l.lqty * p.pprice )) |} );
    ( "orders nested under customers, with totals per order",
      {| for c in Customer union
           sng( cname := c.cname,
                orders := for o in Orders union
                          if o.ckey == c.ckey then
                            sng( odate := o.odate,
                                 spent := sumBy(okey; spent)(
                                   for l in Lineitem union
                                   if l.okey == o.okey then
                                     sng( okey := l.okey, spent := l.eprice )) ) ) |}
    );
    ( "a two-assignment program",
      {| Flat <- for c in Customer union
                 for o in Orders union
                 if o.ckey == c.ckey then
                   sng( cname := c.cname, total := o.ototal );
         Result <- sumBy(cname; total)(for x in Flat union
                     sng( cname := x.cname, total := x.total )); |} );
  ]

let () =
  let db =
    Tpch.Generator.generate
      { Tpch.Generator.default_scale with customers = 60; parts = 120 }
  in
  let inputs_ty = Tpch.Schema.flat_inputs_ty in
  let inputs_val = Tpch.Generator.flat_inputs db in
  List.iter
    (fun (title, src) ->
      Fmt.pr "=== %s ===@." title;
      match Nrc.Parser.program_of_string ~inputs:inputs_ty src with
      | exception Nrc.Parser.Parse_error { pos; message } ->
        Fmt.pr "parse error at %d: %s@.@." pos message
      | prog ->
        let env = Nrc.Program.typecheck prog in
        Fmt.pr "type: %a@." Nrc.Types.pp
          (Nrc.Typecheck.Env.find (Nrc.Program.result_name prog) env);
        let r =
          Trance.Api.run
            ~strategy:(Trance.Api.Shredded { unshred = true })
            prog inputs_val
        in
        Fmt.pr "%a@." Trance.Api.pp_run r;
        (match r.Trance.Api.value with
        | Some (Nrc.Value.Bag rows) ->
          Fmt.pr "%d rows; first 2:@." (List.length rows);
          List.iteri
            (fun i row -> if i < 2 then Fmt.pr "  %a@." Nrc.Value.pp row)
            rows
        | _ -> ());
        Fmt.pr "@.")
    queries
