examples/biomed_pipeline.mli:
