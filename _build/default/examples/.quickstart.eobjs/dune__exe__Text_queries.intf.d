examples/text_queries.mli:
