examples/tpch_analytics.ml: Fmt List Nrc Plan String Tpch Trance
