examples/quickstart.ml: Fmt List Nrc Plan Trance
