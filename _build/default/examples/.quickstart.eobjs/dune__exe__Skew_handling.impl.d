examples/skew_handling.ml: Exec Fmt List Plan Tpch Trance
