examples/quickstart.mli:
