examples/text_queries.ml: Fmt List Nrc Tpch Trance
