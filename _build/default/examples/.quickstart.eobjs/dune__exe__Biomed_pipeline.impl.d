examples/biomed_pipeline.ml: Biomed Fmt List Nrc Trance
