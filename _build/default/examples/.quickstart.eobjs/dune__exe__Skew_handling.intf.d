examples/skew_handling.mli:
