(** Skew-resilient processing (Section 5): generates increasingly skewed
    TPC-H data (a few customers own most orders; a few parts dominate the
    lineitems) and shows how the skew-aware operators keep the load balanced
    where the standard plans overload single workers.

    Run with: [dune exec examples/skew_handling.exe] *)

let mb b = float_of_int b /. 1048576.

let () =
  let family = Tpch.Queries.Nested_to_nested and level = 2 in
  let prog = Tpch.Queries.program ~family ~level () in
  let cluster =
    { Exec.Config.default with
      workers = 10;
      partitions = 50;
      worker_mem = 2 * 1048576;
      broadcast_limit = 2 * 1024 }
  in
  Fmt.pr
    "nested-to-nested query, 2 levels; worker budget %.1f MB, %d workers@.@."
    (mb cluster.Exec.Config.worker_mem)
    cluster.Exec.Config.workers;
  Fmt.pr "%-6s %-14s %9s %10s %9s  %s@." "skew" "strategy" "sim(s)" "shuffleMB"
    "peakMB" "status";
  List.iter
    (fun skew ->
      let db =
        Tpch.Generator.generate
          { Tpch.Generator.default_scale with customers = 300; parts = 500; skew }
      in
      let inputs = Tpch.Queries.input_values ~family ~level db in
      List.iter
        (fun (skew_aware, strategy) ->
          let config =
            { Trance.Api.default_config with
              cluster;
              collect = false;
              skew_aware;
              optimizer =
                { Plan.Optimize.default with
                  unique_keys = [ ("Part", [ "pkey" ]) ];
                  (* skew-aware plans benefit from keeping heavy keys
                     distributed rather than pre-aggregating (Section 6) *)
                  push_aggs = not skew_aware } }
          in
          let r = Trance.Api.run ~config ~strategy prog inputs in
          Fmt.pr "%-6d %-14s %9.3f %10.2f %9.2f  %s@." skew
            (r.Trance.Api.strategy ^ if skew_aware then "+skew" else "")
            (Exec.Stats.sim_seconds r.Trance.Api.stats)
            (mb (Exec.Stats.shuffled_bytes r.Trance.Api.stats))
            (mb (Exec.Stats.peak_worker_bytes r.Trance.Api.stats))
            (match r.Trance.Api.failure with
            | None -> "ok"
            | Some f -> "FAIL (" ^ Trance.Api.failure_message f ^ ")"))
        [
          (false, Trance.Api.Standard);
          (true, Trance.Api.Standard);
          (false, Trance.Api.Shredded { unshred = false });
          (true, Trance.Api.Shredded { unshred = false });
        ];
      Fmt.pr "@.")
    [ 0; 2; 4 ]
