(** TPC-H analytics over nested data: builds the benchmark's nested
    customer-orders-parts input at two levels of nesting, then runs the
    nested-to-nested and nested-to-flat queries of Section 6 under every
    strategy, comparing runtimes, shuffle volume, and peak memory.

    This is the scenario of the paper's introduction: a collection program
    conceived against local semantics, executed scalably without manual
    rewriting.

    Run with: [dune exec examples/tpch_analytics.exe] *)

let () =
  let scale =
    { Tpch.Generator.default_scale with customers = 150; parts = 300 }
  in
  let db = Tpch.Generator.generate scale in
  Fmt.pr "Generated TPC-H-like data: %d customers, %d orders, %d lineitems, %d parts@.@."
    scale.Tpch.Generator.customers
    (scale.Tpch.Generator.customers * scale.Tpch.Generator.orders_per_customer)
    (scale.Tpch.Generator.customers * scale.Tpch.Generator.orders_per_customer
   * scale.Tpch.Generator.lineitems_per_order)
    scale.Tpch.Generator.parts;

  let level = 2 in
  List.iter
    (fun family ->
      Fmt.pr "=== %s, %d level(s) of nesting ===@."
        (Tpch.Queries.family_name family)
        level;
      let prog = Tpch.Queries.program ~family ~level () in
      Fmt.pr "query:@.%a@." Nrc.Expr.pp
        (List.hd prog.Nrc.Program.assignments).Nrc.Program.body;
      let inputs = Tpch.Queries.input_values ~family ~level db in
      let reference = Nrc.Program.eval_result prog inputs in
      let config =
        { Trance.Api.default_config with
          optimizer =
            { Plan.Optimize.default with unique_keys = [ ("Part", [ "pkey" ]) ] } }
      in
      List.iter
        (fun strategy ->
          let r = Trance.Api.run ~config ~strategy prog inputs in
          Fmt.pr "  %a@." Trance.Api.pp_run r;
          match r.Trance.Api.value with
          | Some v ->
            if not (Nrc.Value.approx_bag_equal v reference) then
              Fmt.pr "  WARNING: result differs from reference!@."
          | None -> ())
        [
          Trance.Api.Standard;
          Trance.Api.Shredded { unshred = false };
          Trance.Api.Shredded { unshred = true };
          Trance.Api.SparkSQL_proxy;
        ];
      Fmt.pr "@.")
    [ Tpch.Queries.Nested_to_nested; Tpch.Queries.Nested_to_flat ];

  (* peek at the shredded representation of the nested input *)
  let cop = Tpch.Generator.nested_input ~level db in
  let elem = Nrc.Types.element (Tpch.Queries.nested_input_ty ~level ()) in
  let s = Trance.Shred_value.shred_bag "COP" elem cop in
  Fmt.pr "=== Shredded input ===@.";
  Fmt.pr "top bag: %d flat tuples@." (List.length (Nrc.Value.bag_items s.Trance.Shred_value.top));
  List.iter
    (fun (path, bag) ->
      Fmt.pr "dictionary %s: %d rows@."
        (String.concat "." path)
        (List.length (Nrc.Value.bag_items bag)))
    s.Trance.Shred_value.dicts
