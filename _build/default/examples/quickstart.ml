(** Quickstart: the paper's running example (Example 1), end to end.

    Builds the COP nested relation and the flat Part relation, writes the
    Example 1 query with the {!Nrc.Builder} DSL, and runs it through
    - the reference interpreter,
    - the standard (flattening) route on the cluster simulator, and
    - the shredded route, showing the materialized shredded program.

    Run with: [dune exec examples/quickstart.exe] *)

module T = Nrc.Types
module V = Nrc.Value
open Nrc.Builder

(* ------------------------------------------------------------------ *)
(* 1. Declare the input schema: COP is a two-level nested relation. *)

let cop_ty =
  t_bag
    (t_tup
       [
         ("cname", t_str);
         ( "corders",
           t_bag
             (t_tup
                [
                  ("odate", t_date);
                  ("oparts", t_bag (t_tup [ ("pid", t_int); ("qty", t_real) ]));
                ]) );
       ])

let part_ty =
  t_bag (t_tup [ ("pid", t_int); ("pname", t_str); ("price", t_real) ])

let inputs_ty = [ ("COP", cop_ty); ("Part", part_ty) ]

(* ------------------------------------------------------------------ *)
(* 2. Some data. *)

let tup fields = V.Tuple fields

let cop_value =
  V.Bag
    [
      tup
        [
          ("cname", V.Str "alice");
          ( "corders",
            V.Bag
              [
                tup
                  [
                    ("odate", V.Date 100);
                    ( "oparts",
                      V.Bag
                        [
                          tup [ ("pid", V.Int 1); ("qty", V.Real 2.0) ];
                          tup [ ("pid", V.Int 2); ("qty", V.Real 1.0) ];
                        ] );
                  ];
              ] );
        ];
      tup [ ("cname", V.Str "bob"); ("corders", V.Bag []) ];
    ]

let part_value =
  V.Bag
    [
      tup [ ("pid", V.Int 1); ("pname", V.Str "widget"); ("price", V.Real 10.) ];
      tup [ ("pid", V.Int 2); ("pname", V.Str "gadget"); ("price", V.Real 20.) ];
    ]

let input_values = [ ("COP", cop_value); ("Part", part_value) ]

(* ------------------------------------------------------------------ *)
(* 3. Example 1: for each customer and order, total spent per part name. *)

let query =
  for_ "cop" (input "COP") (fun cop ->
      sng
        (record
           [
             ("cname", cop #. "cname");
             ( "corders",
               for_ "co" (cop #. "corders") (fun co ->
                   sng
                     (record
                        [
                          ("odate", co #. "odate");
                          ( "oparts",
                            sum_by ~keys:[ "pname" ] ~values:[ "total" ]
                              (for_ "op" (co #. "oparts") (fun op ->
                                   for_ "p" (input "Part") (fun p ->
                                       where
                                         (op #. "pid" == p #. "pid")
                                         (sng
                                            (record
                                               [
                                                 ("pname", p #. "pname");
                                                 ("total", op #. "qty" * p #. "price");
                                               ]))))) );
                        ])) );
           ]))

let program = Nrc.Program.of_expr ~inputs:inputs_ty ~name:"Q" query

let () =
  Fmt.pr "== The NRC query ==@.%a@.@." Nrc.Expr.pp query;
  (* type check *)
  let ty = Nrc.Typecheck.check_source (Nrc.Typecheck.env_of_list inputs_ty) query in
  Fmt.pr "== Its type ==@.%a@.@." T.pp ty;
  (* reference semantics *)
  let reference = Nrc.Program.eval_result program input_values in
  Fmt.pr "== Reference result ==@.%a@.@." V.pp reference;
  (* the standard route: unnesting to a plan (cf. Figure 3 of the paper) *)
  let plan = Trance.Unnest.translate ~tenv:inputs_ty query in
  Fmt.pr "== Standard plan (Figure 3) ==@.%a@.@." Plan.Op.pp
    (Plan.Optimize.optimize plan);
  (* the shredded route: materialized flat program (cf. Examples 4-6) *)
  let sp = Trance.Shred_pipeline.shred_program program in
  Fmt.pr "== Materialized shredded program (Examples 4-6) ==@.%a@."
    Nrc.Program.pp sp.Trance.Shred_pipeline.mat;
  (* distributed execution of both routes *)
  List.iter
    (fun strategy ->
      let r = Trance.Api.run ~strategy program input_values in
      Fmt.pr "== %s on the simulator ==@.%a@." r.Trance.Api.strategy
        Trance.Api.pp_run r;
      match r.Trance.Api.value with
      | Some v when V.approx_bag_equal v reference ->
        Fmt.pr "   result matches the reference.@.@."
      | Some v -> Fmt.pr "   UNEXPECTED result: %a@.@." V.pp v
      | None -> Fmt.pr "@.")
    [ Trance.Api.Standard; Trance.Api.Shredded { unshred = true } ]
