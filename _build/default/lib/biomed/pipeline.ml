(** The five-step end-to-end pipeline E2E of Section 6, following the
    driver-gene analysis of [47]:

    - {b Step1} (hybrid scores): navigates the whole of Occurrences, joins
      SOImpact (BF3) at the candidate level and CopyNumber (BF2) at the
      sample level, aggregates per gene and regroups to nested output
      [<sid, genes: Bag<gid, score>>]. This is the paper's most expensive
      flattening step.
    - {b Step2} (network propagation): joins Network (BN1) against the
      first level of Step1's output and aggregates edge-weighted scores per
      neighbour gene — the join whose flattened form explodes (the paper
      measures 16 billion tuples / 2.1 TB shuffled before crashing).
    - {b Step3} (combine): unions the flattened hybrid and connectivity
      scores and sums them per (sample, gene).
    - {b Step4} (cohort aggregation): sums scores per gene across samples.
    - {b Step5} (report): joins gene metadata for the final flat report.

    The final output is flat, so the shredded route needs no unshredding,
    exactly as in the paper. *)

module E = Nrc.Expr
open Nrc.Builder

let step1 =
  for_ "o" (input "Occurrences") (fun o ->
      sng
        (record
           [
             ("sid", o #. "sid");
             ( "genes",
               sum_by ~keys:[ "gid" ] ~values:[ "score" ]
                 (for_ "m" (o #. "mutations") (fun m ->
                      for_ "c" (m #. "candidates") (fun c ->
                          for_ "t" (input "SOImpact") (fun t ->
                              where
                                (c #. "impact" == t #. "impact")
                                (for_ "cn" (input "CopyNumber") (fun cn ->
                                     where
                                       (cn #. "sid" == o #. "sid"
                                       && cn #. "gid" == c #. "gid")
                                       (sng
                                          (record
                                             [
                                               ("gid", c #. "gid");
                                               ( "score",
                                                 c #. "cscore" * t #. "iweight"
                                                 * (cn #. "cnum" + real 0.01) );
                                             ])))))))) );
           ]))

let step2 =
  for_ "s" (input "Step1") (fun s ->
      sng
        (record
           [
             ("sid", s #. "sid");
             ( "connect",
               sum_by ~keys:[ "gid" ] ~values:[ "cscore" ]
                 (for_ "g" (s #. "genes") (fun g ->
                      for_ "n" (input "Network") (fun n ->
                          where
                            (n #. "gid" == g #. "gid")
                            (for_ "e" (n #. "edges") (fun e ->
                                 sng
                                   (record
                                      [
                                        ("gid", e #. "gid2");
                                        ("cscore", g #. "score" * e #. "eweight");
                                      ])))))) );
           ]))

(* flattened union of hybrid and connectivity contributions *)
let step3_union =
  (for_ "s" (input "Step1") (fun s ->
       for_ "g" (s #. "genes") (fun g ->
           sng
             (record
                [
                  ("sid", s #. "sid"); ("gid", g #. "gid");
                  ("total", g #. "score");
                ]))))
  ++ for_ "s" (input "Step2") (fun s ->
         for_ "g" (s #. "connect") (fun g ->
             sng
               (record
                  [
                    ("sid", s #. "sid"); ("gid", g #. "gid");
                    ("total", g #. "cscore" * real 0.5);
                  ])))

let step3 =
  sum_by ~keys:[ "sid"; "gid" ] ~values:[ "total" ]
    (for_ "x" (input "Step3u") (fun x ->
         sng
           (record
              [ ("sid", x #. "sid"); ("gid", x #. "gid"); ("total", x #. "total") ])))

let step4 =
  sum_by ~keys:[ "gid" ] ~values:[ "total" ]
    (for_ "x" (input "Step3") (fun x ->
         sng (record [ ("gid", x #. "gid"); ("total", x #. "total") ])))

let step5 =
  for_ "x" (input "Step4") (fun x ->
      for_ "gm" (input "GeneMeta") (fun gm ->
          where
            (gm #. "gid" == x #. "gid")
            (sng
               (record
                  [
                    ("gname", gm #. "gname");
                    ("chrom", gm #. "chrom");
                    ("driver", x #. "total");
                  ]))))

(** The full E2E program. Step3's union is materialized as its own
    assignment (Step3u) so that the aggregate input is a single dataset. *)
let program : Nrc.Program.t =
  Nrc.Program.make ~inputs:Schema.inputs_ty
    [
      ("Step1", step1);
      ("Step2", step2);
      ("Step3u", step3_union);
      ("Step3", step3);
      ("Step4", step4);
      ("Step5", step5);
    ]

(** Per-step programs for per-step timing (each step's program ends at that
    step; used to attribute runtime per step as in Figure 9). *)
let prefix_programs : (string * Nrc.Program.t) list =
  let steps =
    [
      ("Step1", step1); ("Step2", step2); ("Step3u", step3_union);
      ("Step3", step3); ("Step4", step4); ("Step5", step5);
    ]
  in
  List.mapi
    (fun i (name, _) ->
      (name, Nrc.Program.make ~inputs:Schema.inputs_ty
         (List.filteri (fun j _ -> Stdlib.( <= ) j i) steps)))
    steps
