(** The five-step end-to-end pipeline E2E of Section 6 (Figure 9),
    following the driver-gene analysis of [47]: hybrid scoring over the
    whole of Occurrences (Step 1, nested output), network propagation
    against the first level of Step 1's output (Step 2, the explosive
    join), combination, cohort aggregation, and the flat final report. *)

val step1 : Nrc.Expr.t
val step2 : Nrc.Expr.t
val step3_union : Nrc.Expr.t
val step3 : Nrc.Expr.t
val step4 : Nrc.Expr.t
val step5 : Nrc.Expr.t

val program : Nrc.Program.t
(** The full E2E program (Step3's union materialized as [Step3u]). *)

val prefix_programs : (string * Nrc.Program.t) list
(** One program per prefix of the pipeline, for per-step attribution. *)
