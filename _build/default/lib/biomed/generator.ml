(** Synthetic generator for the biomedical benchmark. Preserves the *shape*
    of the paper's datasets: Occurrences dominates (BN2 was 280 GB vs 34 GB
    copy number and 4 GB network); candidate genes per mutation follow the
    impact classes of BF3; the gene-edge fanout of the network drives the
    Step 2 join explosion the paper reports (16 billion tuples from the
    flattened join). Deterministic via a local LCG. *)

module V = Nrc.Value

type scale = {
  samples : int;
  mutations_per_sample : int;
  candidates_per_mutation : int;
  genes : int;
  edges_per_gene : int;
  seed : int;
}

(** Default ("full") scale: Occurrences ~ samples * mutations * candidates
    rows at the leaf; the Step 2 join multiplies genes-per-sample by the
    edge fanout. *)
let full_scale =
  {
    samples = 40;
    mutations_per_sample = 60;
    candidates_per_mutation = 4;
    genes = 400;
    edges_per_gene = 16;
    seed = 11;
  }

(** The paper's reduced dataset (6 GB BN2 etc.). *)
let small_scale =
  {
    full_scale with
    samples = 12;
    mutations_per_sample = 25;
    edges_per_gene = 8;
  }

let impacts = [| "HIGH"; "MODERATE"; "LOW"; "MODIFIER" |]

type db = {
  scale : scale;
  occurrences : V.t;
  network : V.t;
  copynumber : V.t;
  genemeta : V.t;
  soimpact : V.t;
}

let lcg seed =
  let state = ref (Int64.of_int ((seed * 2) + 1)) in
  fun bound ->
    state :=
      Int64.logand
        (Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L)
        Int64.max_int;
    Int64.to_int (Int64.rem !state (Int64.of_int bound))

let generate (scale : scale) : db =
  let rand = lcg scale.seed in
  let candidate () =
    let gid = rand scale.genes in
    V.Tuple
      [
        ("gid", V.Int gid);
        ("impact", V.Str impacts.(rand 4));
        ("cscore", V.Real (0.01 +. (float_of_int (rand 100) /. 100.)));
      ]
  in
  let occurrences =
    V.Bag
      (List.init scale.samples (fun s ->
           V.Tuple
             [
               ("sid", V.Int s);
               ( "mutations",
                 V.Bag
                   (List.init scale.mutations_per_sample (fun m ->
                        V.Tuple
                          [
                            ("mid", V.Int ((s * 100000) + m));
                            ( "candidates",
                              V.Bag
                                (List.init scale.candidates_per_mutation
                                   (fun _ -> candidate ())) );
                          ])) );
             ]))
  in
  let network =
    V.Bag
      (List.init scale.genes (fun g ->
           V.Tuple
             [
               ("gid", V.Int g);
               ( "edges",
                 V.Bag
                   (List.init scale.edges_per_gene (fun _ ->
                        V.Tuple
                          [
                            ("gid2", V.Int (rand scale.genes));
                            ( "eweight",
                              V.Real (float_of_int (1 + rand 999) /. 1000.) );
                          ])) );
             ]))
  in
  let copynumber =
    (* one call per (sample, gene): the BF2-at-level-1 join always hits *)
    V.Bag
      (List.concat_map
         (fun s ->
           List.init scale.genes (fun g ->
               V.Tuple
                 [
                   ("sid", V.Int s);
                   ("gid", V.Int g);
                   ("cnum", V.Real (float_of_int (rand 5)));
                 ]))
         (List.init scale.samples (fun s -> s)))
  in
  let genemeta =
    V.Bag
      (List.init scale.genes (fun g ->
           V.Tuple
             [
               ("gid", V.Int g);
               ("gname", V.Str (Printf.sprintf "GENE%04d" g));
               ("chrom", V.Str (Printf.sprintf "chr%d" (1 + (g mod 22))));
             ]))
  in
  let soimpact =
    V.Bag
      (Array.to_list
         (Array.mapi
            (fun i impact ->
              V.Tuple
                [
                  ("impact", V.Str impact);
                  ("iweight", V.Real (1.0 /. float_of_int (1 + i)));
                ])
            impacts))
  in
  { scale; occurrences; network; copynumber; genemeta; soimpact }

let inputs (db : db) : (string * V.t) list =
  [
    ("Occurrences", db.occurrences);
    ("Network", db.network);
    ("CopyNumber", db.copynumber);
    ("GeneMeta", db.genemeta);
    ("SOImpact", db.soimpact);
  ]
