lib/biomed/generator.ml: Array Int64 List Nrc Printf
