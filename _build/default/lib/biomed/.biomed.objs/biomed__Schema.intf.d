lib/biomed/schema.mli: Nrc
