lib/biomed/generator.mli: Nrc
