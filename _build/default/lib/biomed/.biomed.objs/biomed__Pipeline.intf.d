lib/biomed/pipeline.mli: Nrc
