lib/biomed/pipeline.ml: List Nrc Schema Stdlib
