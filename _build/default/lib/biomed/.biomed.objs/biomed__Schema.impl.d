lib/biomed/schema.ml: Nrc
