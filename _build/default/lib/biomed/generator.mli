(** Synthetic generator for the biomedical benchmark, preserving the shape
    of the paper's datasets: Occurrences (BN2) dominates; candidate genes
    follow the impact classes of the tiny ontology table (BF3); the
    network's edge fanout drives the Step 2 join explosion. Deterministic. *)

type scale = {
  samples : int;
  mutations_per_sample : int;
  candidates_per_mutation : int;
  genes : int;
  edges_per_gene : int;
  seed : int;
}

val full_scale : scale
(** The "full dataset" analogue (280 GB BN2 in the paper). *)

val small_scale : scale
(** The paper's reduced dataset (6 GB BN2). *)

val impacts : string array

type db = {
  scale : scale;
  occurrences : Nrc.Value.t;  (** BN2: two-level nested *)
  network : Nrc.Value.t;  (** BN1: one-level nested *)
  copynumber : Nrc.Value.t;  (** BF2 *)
  genemeta : Nrc.Value.t;  (** BF1 *)
  soimpact : Nrc.Value.t;  (** BF3 *)
}

val generate : scale -> db
val inputs : db -> (string * Nrc.Value.t) list
