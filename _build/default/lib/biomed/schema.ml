(** Schema of the biomedical benchmark (Section 6), shaped after the ICGC /
    cancer-driver-gene pipeline of [47] that the paper evaluates:

    - [Occurrences] (the paper's BN2, 280 GB): two-level nested — per
      sample, somatic mutations, each with candidate gene consequences from
      a VEP-style annotation;
    - [Network] (BN1, 4 GB): one-level nested — per gene, its
      protein-protein interaction edges (STRING-style);
    - [CopyNumber] (BF2, 34 GB): flat per (sample, gene) copy-number calls;
    - [GeneMeta] (BF1, 23 GB): flat gene metadata;
    - [SOImpact] (BF3, 5 KB): the tiny Sequence-Ontology impact weight
      table. *)

module T = Nrc.Types

let candidate_ty =
  T.tuple [ ("gid", T.int_); ("impact", T.string_); ("cscore", T.real) ]

let mutation_ty =
  T.tuple [ ("mid", T.int_); ("candidates", T.bag candidate_ty) ]

let occurrences_ty =
  T.bag (T.tuple [ ("sid", T.int_); ("mutations", T.bag mutation_ty) ])

let edge_ty = T.tuple [ ("gid2", T.int_); ("eweight", T.real) ]

let network_ty =
  T.bag (T.tuple [ ("gid", T.int_); ("edges", T.bag edge_ty) ])

let copynumber_ty =
  T.bag (T.tuple [ ("sid", T.int_); ("gid", T.int_); ("cnum", T.real) ])

let genemeta_ty =
  T.bag (T.tuple [ ("gid", T.int_); ("gname", T.string_); ("chrom", T.string_) ])

let soimpact_ty =
  T.bag (T.tuple [ ("impact", T.string_); ("iweight", T.real) ])

let inputs_ty =
  [
    ("Occurrences", occurrences_ty);
    ("Network", network_ty);
    ("CopyNumber", copynumber_ty);
    ("GeneMeta", genemeta_ty);
    ("SOImpact", soimpact_ty);
  ]
