(** Schema of the biomedical benchmark (Section 6), shaped after the
    ICGC / driver-gene pipeline of [47]: two-level nested Occurrences
    (BN2), one-level nested Network (BN1), flat CopyNumber (BF2), GeneMeta
    (BF1) and the tiny SOImpact ontology table (BF3). *)

val candidate_ty : Nrc.Types.t
val mutation_ty : Nrc.Types.t
val occurrences_ty : Nrc.Types.t
val edge_ty : Nrc.Types.t
val network_ty : Nrc.Types.t
val copynumber_ty : Nrc.Types.t
val genemeta_ty : Nrc.Types.t
val soimpact_ty : Nrc.Types.t

val inputs_ty : (string * Nrc.Types.t) list
(** All five inputs in pipeline order. *)
