(** Execution metrics collected by the simulator: shuffled and broadcast
    bytes, peak per-worker residency, and a simulated wall-clock built from
    per-stage maxima over partitions (which is where skew and load
    imbalance appear). *)

type t = {
  mutable shuffled_bytes : int;
  mutable broadcast_bytes : int;
  mutable peak_worker_bytes : int;
  mutable rows_processed : int;
  mutable stages : int;  (** shuffle boundaries *)
  mutable sim_seconds : float;
}

exception
  Worker_out_of_memory of {
    stage : string;  (** "Step2/unnest"-style location *)
    worker_bytes : int;
    budget : int;
  }
(** A worker exceeded its memory budget: the paper's FAIL entries. Callers
    that must not fail hard catch this ({!Trance.Api.run} reports it as a
    failed run). *)

val create : unit -> t
val add : t -> t -> t
val pp : Format.formatter -> t -> unit
