(** Partitioned datasets of the cluster simulator: an array of partitions
    of values (top-level tuples — the granularity at which Spark
    distributes collections) plus an optional partitioning guarantee. The
    guarantee lets the executor skip shuffles exactly where Spark's
    partitioner would (Section 3, "Operators effect the partitioning
    guarantee"). *)

type t = {
  parts : Nrc.Value.t array array;
  key : string list list option;
      (** field paths into each element; [Some paths] means all elements
          with equal key values share a partition *)
}

val partition_count : t -> int
val total_rows : t -> int
val part_bytes : t -> int array
val total_bytes : t -> int

val of_bag : partitions:int -> Nrc.Value.t -> t
(** Round-robin distribution, no guarantee (freshly loaded data). *)

val of_bag_by : partitions:int -> key:string list list -> Nrc.Value.t -> t
(** Hash distribution by field paths; establishes the guarantee. Used to
    load dictionaries with their label partitioning (Section 4). *)

val to_bag : t -> Nrc.Value.t
val map : (Nrc.Value.t -> Nrc.Value.t) -> t -> t
val empty : partitions:int -> t
