(** Execution metrics collected by the simulator; see stats.mli. The record
    is mutable internally but opaque to consumers, who read through the
    accessors or an immutable {!snapshot}. *)

type t = {
  mutable shuffled_bytes : int;
  mutable broadcast_bytes : int;
  mutable peak_worker_bytes : int;
  mutable rows_processed : int;
  mutable stages : int;
  mutable sim_seconds : float;
}

type snapshot = {
  shuffled_bytes : int;
  broadcast_bytes : int;
  peak_worker_bytes : int;
  rows_processed : int;
  stages : int;
  sim_seconds : float;
}

exception
  Worker_out_of_memory of {
    stage : string;
    worker_bytes : int;
    budget : int;
  }

let create () : t =
  {
    shuffled_bytes = 0;
    broadcast_bytes = 0;
    peak_worker_bytes = 0;
    rows_processed = 0;
    stages = 0;
    sim_seconds = 0.;
  }

let shuffled_bytes (s : t) = s.shuffled_bytes
let broadcast_bytes (s : t) = s.broadcast_bytes
let peak_worker_bytes (s : t) = s.peak_worker_bytes
let rows_processed (s : t) = s.rows_processed
let stages (s : t) = s.stages
let sim_seconds (s : t) = s.sim_seconds
let add_shuffled (s : t) n = s.shuffled_bytes <- s.shuffled_bytes + n
let add_broadcast (s : t) n = s.broadcast_bytes <- s.broadcast_bytes + n
let add_rows (s : t) n = s.rows_processed <- s.rows_processed + n
let add_stage (s : t) = s.stages <- s.stages + 1
let add_sim_seconds (s : t) dt = s.sim_seconds <- s.sim_seconds +. dt

let observe_worker (s : t) bytes =
  s.peak_worker_bytes <- max s.peak_worker_bytes bytes

let snapshot (s : t) : snapshot =
  {
    shuffled_bytes = s.shuffled_bytes;
    broadcast_bytes = s.broadcast_bytes;
    peak_worker_bytes = s.peak_worker_bytes;
    rows_processed = s.rows_processed;
    stages = s.stages;
    sim_seconds = s.sim_seconds;
  }

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    shuffled_bytes = a.shuffled_bytes - b.shuffled_bytes;
    broadcast_bytes = a.broadcast_bytes - b.broadcast_bytes;
    peak_worker_bytes = a.peak_worker_bytes;
    rows_processed = a.rows_processed - b.rows_processed;
    stages = a.stages - b.stages;
    sim_seconds = a.sim_seconds -. b.sim_seconds;
  }

let merge (a : snapshot) (b : snapshot) : snapshot =
  {
    shuffled_bytes = a.shuffled_bytes + b.shuffled_bytes;
    broadcast_bytes = a.broadcast_bytes + b.broadcast_bytes;
    peak_worker_bytes = max a.peak_worker_bytes b.peak_worker_bytes;
    rows_processed = a.rows_processed + b.rows_processed;
    stages = a.stages + b.stages;
    sim_seconds = a.sim_seconds +. b.sim_seconds;
  }

let zero : snapshot =
  {
    shuffled_bytes = 0;
    broadcast_bytes = 0;
    peak_worker_bytes = 0;
    rows_processed = 0;
    stages = 0;
    sim_seconds = 0.;
  }

let pp_counts ppf (shuffled, broadcast, peak, rows, stages, sim) =
  Fmt.pf ppf
    "shuffle=%.1fMB broadcast=%.1fMB peak_worker=%.1fMB rows=%d stages=%d \
     sim=%.2fs"
    (float_of_int shuffled /. 1048576.)
    (float_of_int broadcast /. 1048576.)
    (float_of_int peak /. 1048576.)
    rows stages sim

let pp ppf (s : t) =
  pp_counts ppf
    ( s.shuffled_bytes,
      s.broadcast_bytes,
      s.peak_worker_bytes,
      s.rows_processed,
      s.stages,
      s.sim_seconds )

let pp_snapshot ppf (s : snapshot) =
  pp_counts ppf
    ( s.shuffled_bytes,
      s.broadcast_bytes,
      s.peak_worker_bytes,
      s.rows_processed,
      s.stages,
      s.sim_seconds )
