(** Execution metrics collected by the simulator: shuffled and broadcast
    bytes, peak per-worker memory, and a simulated wall-clock built from
    per-stage maxima (the slowest partition bounds the stage, which is what
    makes skew visible). *)

type t = {
  mutable shuffled_bytes : int;
  mutable broadcast_bytes : int;
  mutable peak_worker_bytes : int;
  mutable rows_processed : int;
  mutable stages : int;
  mutable sim_seconds : float;
}

exception
  Worker_out_of_memory of {
    stage : string;
    worker_bytes : int;
    budget : int;
  }

let create () =
  {
    shuffled_bytes = 0;
    broadcast_bytes = 0;
    peak_worker_bytes = 0;
    rows_processed = 0;
    stages = 0;
    sim_seconds = 0.;
  }

let add (a : t) (b : t) : t =
  {
    shuffled_bytes = a.shuffled_bytes + b.shuffled_bytes;
    broadcast_bytes = a.broadcast_bytes + b.broadcast_bytes;
    peak_worker_bytes = max a.peak_worker_bytes b.peak_worker_bytes;
    rows_processed = a.rows_processed + b.rows_processed;
    stages = a.stages + b.stages;
    sim_seconds = a.sim_seconds +. b.sim_seconds;
  }

let pp ppf (s : t) =
  Fmt.pf ppf
    "shuffle=%.1fMB broadcast=%.1fMB peak_worker=%.1fMB rows=%d stages=%d \
     sim=%.2fs"
    (float_of_int s.shuffled_bytes /. 1048576.)
    (float_of_int s.broadcast_bytes /. 1048576.)
    (float_of_int s.peak_worker_bytes /. 1048576.)
    s.rows_processed s.stages s.sim_seconds
