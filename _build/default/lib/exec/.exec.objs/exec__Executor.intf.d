lib/exec/executor.mli: Config Dataset Hashtbl Nrc Plan Stats Trace
