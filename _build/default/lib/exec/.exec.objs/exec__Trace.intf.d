lib/exec/trace.mli: Buffer Format
