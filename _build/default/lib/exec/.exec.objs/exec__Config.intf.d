lib/exec/config.mli:
