lib/exec/dataset.ml: Array List Nrc
