lib/exec/config.ml:
