lib/exec/executor.ml: Array Config Dataset Hashtbl List Nrc Option Plan Printf Set Stats String Trace
