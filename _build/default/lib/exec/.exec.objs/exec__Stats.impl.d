lib/exec/stats.ml: Fmt
