lib/exec/dataset.mli: Nrc
