lib/exec/trace.ml: Array Buffer Char Float Fmt Fun List Printf String
