(** Hand-written lexer for the NRC surface syntax (see {!Parser}). *)

type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | DATE of int (* @123 *)
  (* keywords *)
  | FOR | IN | UNION | IF | THEN | ELSE | LET | TRUE | FALSE
  | SNG | GET | DEDUP | SUMBY | GROUPBY | EMPTY | AND_KW | OR_KW | NOT_KW
  | TBAG | TTUPLE | TINT | TREAL | TSTRING | TBOOL | TDATE
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE
  | COMMA | SEMI | DOT | COLON | ASSIGN (* := *)
  | EQ (* == *) | NE | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH | PLUSPLUS (* ++ *)
  | AMPAMP | BARBAR
  | LARROW (* <= for programs: x <= e ; *)
  | EOF

exception Lex_error of { pos : int; message : string }

let keyword = function
  | "for" -> Some FOR
  | "in" -> Some IN
  | "union" -> Some UNION
  | "if" -> Some IF
  | "then" -> Some THEN
  | "else" -> Some ELSE
  | "let" -> Some LET
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "sng" -> Some SNG
  | "get" -> Some GET
  | "dedup" -> Some DEDUP
  | "sumBy" -> Some SUMBY
  | "groupBy" -> Some GROUPBY
  | "empty" -> Some EMPTY
  | "and" -> Some AND_KW
  | "or" -> Some OR_KW
  | "not" -> Some NOT_KW
  | "bag" -> Some TBAG
  | "tuple" -> Some TTUPLE
  | "int" -> Some TINT
  | "real" -> Some TREAL
  | "string" -> Some TSTRING
  | "bool" -> Some TBOOL
  | "date" -> Some TDATE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize a whole string. Comments run from [--] to end of line. *)
let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let push pos t = toks := (t, pos) :: !toks in
  let rec go i =
    if i >= n then push i EOF
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '(' -> push i LPAREN; go (i + 1)
      | ')' -> push i RPAREN; go (i + 1)
      | '{' -> push i LBRACE; go (i + 1)
      | '}' -> push i RBRACE; go (i + 1)
      | ',' -> push i COMMA; go (i + 1)
      | ';' -> push i SEMI; go (i + 1)
      | '.' -> push i DOT; go (i + 1)
      | ':' when i + 1 < n && src.[i + 1] = '=' -> push i ASSIGN; go (i + 2)
      | ':' -> push i COLON; go (i + 1)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> push i EQ; go (i + 2)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> push i NE; go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> push i LE; go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '-' -> push i LARROW; go (i + 2)
      | '<' -> push i LT; go (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> push i GE; go (i + 2)
      | '>' -> push i GT; go (i + 1)
      | '+' when i + 1 < n && src.[i + 1] = '+' -> push i PLUSPLUS; go (i + 2)
      | '+' -> push i PLUS; go (i + 1)
      | '*' -> push i STAR; go (i + 1)
      | '/' -> push i SLASH; go (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> push i AMPAMP; go (i + 2)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> push i BARBAR; go (i + 2)
      | '-' -> push i MINUS; go (i + 1)
      | '"' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then
            raise (Lex_error { pos = i; message = "unterminated string" })
          else if src.[j] = '"' then j + 1
          else if src.[j] = '\\' && j + 1 < n then begin
            (match src.[j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | c -> Buffer.add_char buf c);
            str (j + 2)
          end
          else begin
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let j = str (i + 1) in
        push i (STRING (Buffer.contents buf));
        go j
      | '@' when i + 1 < n && is_digit src.[i + 1] ->
        (* @123 date literal *)
        let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
        let j = num (i + 1) in
        push i (DATE (int_of_string (String.sub src (i + 1) (j - i - 1))));
        go j
      | c when is_digit c ->
        let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
        let j = num i in
        if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then begin
          let k = num (j + 1) in
          push i (REAL (float_of_string (String.sub src i (k - i))));
          go k
        end
        else begin
          push i (INT (int_of_string (String.sub src i (j - i))));
          go j
        end
      | c when is_ident_start c ->
        let rec idend j = if j < n && is_ident_char src.[j] then idend (j + 1) else j in
        let j = idend i in
        let word = String.sub src i (j - i) in
        (match keyword word with
        | Some t -> push i t
        | None -> push i (IDENT word));
        go j
      | c ->
        raise
          (Lex_error
             { pos = i; message = Printf.sprintf "unexpected character %C" c })
  in
  go 0;
  List.rev !toks

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> string_of_int i
  | REAL r -> string_of_float r
  | STRING s -> Printf.sprintf "%S" s
  | DATE d -> Printf.sprintf "@%d" d
  | FOR -> "for" | IN -> "in" | UNION -> "union" | IF -> "if" | THEN -> "then"
  | ELSE -> "else" | LET -> "let" | TRUE -> "true" | FALSE -> "false"
  | SNG -> "sng" | GET -> "get" | DEDUP -> "dedup" | SUMBY -> "sumBy"
  | GROUPBY -> "groupBy" | EMPTY -> "empty" | AND_KW -> "and" | OR_KW -> "or"
  | NOT_KW -> "not" | TBAG -> "bag" | TTUPLE -> "tuple" | TINT -> "int"
  | TREAL -> "real" | TSTRING -> "string" | TBOOL -> "bool" | TDATE -> "date"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | COMMA -> "," | SEMI -> ";" | DOT -> "." | COLON -> ":" | ASSIGN -> ":="
  | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PLUSPLUS -> "++"
  | AMPAMP -> "&&" | BARBAR -> "||" | LARROW -> "<-" | EOF -> "end of input"
