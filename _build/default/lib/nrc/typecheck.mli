(** Type checker for NRC and NRC^{Lbl+lambda}, implementing the typing
    discipline of Figure 1 with the paper's restrictions: [dedup] takes a
    flat bag, [groupBy]/[sumBy] keys are flat, bags never contain bags. *)

exception Type_error of string

module Env : Map.S with type key = string

type env = Types.t Env.t

val env_of_list : (string * Types.t) list -> env

val infer : env -> Expr.t -> Types.t
(** Infer the type of an expression (labels and dictionaries allowed).
    @raise Type_error on ill-typed input. *)

val check_label_free : Expr.t -> unit
(** @raise Type_error if the expression uses shredding constructs. *)

val check_source : env -> Expr.t -> Types.t
(** [check_label_free] followed by [infer]: the entry point for user-facing
    source programs. *)
