(** Types of the nested relational calculus (Figure 1 of the paper) plus the
    label and dictionary types of the shredding extension NRC^{Lbl+lambda}
    (Section 4).

    The grammar restricts bags to contain flat scalars or tuples (whose
    attributes may themselves be bags — but never bags of bags):
    {v
      T ::= S | C        C ::= Bag(F)
      F ::= <a1:T,...,an:T> | S    S ::= int | real | string | bool | date
    v} *)

type scalar = TInt | TReal | TString | TBool | TDate

type t =
  | TScalar of scalar
  | TTuple of (string * t) list
  | TBag of t
  | TLabel  (** atomic label type; runtime labels carry their own payload *)
  | TDict of t  (** [Label -> Bag t], used only during symbolic shredding *)

(** {2 Constructors} *)

val int_ : t
val real : t
val string_ : t
val bool_ : t
val date : t
val tuple : (string * t) list -> t
val bag : t -> t
val label : t
val dict : t -> t

(** {2 Predicates and accessors} *)

val equal : t -> t -> bool

val is_flat : t -> bool
(** A type is flat when it contains no bag (labels and scalars are flat). *)

val is_scalar : t -> bool

val is_flat_bag : t -> bool
(** A bag of scalars or of tuples with flat attributes — the only legal
    input to [dedup] (Section 2). *)

val is_bag : t -> bool

val tuple_fields : t -> (string * t) list
(** @raise Invalid_argument on non-tuple types. *)

val field : t -> string -> t
(** The type of one tuple attribute.
    @raise Invalid_argument if missing or not a tuple. *)

val element : t -> t
(** The element type of a bag. @raise Invalid_argument on non-bags. *)

val depth : t -> int
(** Maximum bag-nesting depth: scalars 0, flat bags 1, COP 3. *)

(** {2 Printing} *)

val scalar_to_string : scalar -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
