(** Types of the nested relational calculus (Figure 1 of the paper) plus the
    label and dictionary types of the shredding extension NRC^{Lbl+lambda}
    (Section 4).

    The grammar restricts bag contents to flat tuples or scalars:
    {v
      T ::= S | C           C ::= Bag(F)
      F ::= <a1:T,...,an:T> | S      S ::= int | real | string | bool | date
    v}
    Labels behave as an extra scalar-like atomic type; a dictionary type
    [Label -> Bag(F)] is [TDict f] where [f] is the bag-element type. *)

type scalar = TInt | TReal | TString | TBool | TDate

type t =
  | TScalar of scalar
  | TTuple of (string * t) list
  | TBag of t
  | TLabel (* atomic label type; runtime labels carry their own payload *)
  | TDict of t (* Label -> Bag(t) *)

let int_ = TScalar TInt
let real = TScalar TReal
let string_ = TScalar TString
let bool_ = TScalar TBool
let date = TScalar TDate
let tuple fields = TTuple fields
let bag t = TBag t
let label = TLabel
let dict t = TDict t

let rec equal a b =
  match a, b with
  | TScalar s1, TScalar s2 -> s1 = s2
  | TTuple f1, TTuple f2 ->
    (try List.for_all2 (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && equal t1 t2) f1 f2
     with Invalid_argument _ -> false)
  | TBag t1, TBag t2 -> equal t1 t2
  | TLabel, TLabel -> true
  | TDict t1, TDict t2 -> equal t1 t2
  | (TScalar _ | TTuple _ | TBag _ | TLabel | TDict _), _ -> false

(** A type is flat when it contains no bag type (labels and scalars are
    flat; dictionaries are not). *)
let rec is_flat = function
  | TScalar _ | TLabel -> true
  | TTuple fields -> List.for_all (fun (_, t) -> is_flat t) fields
  | TBag _ | TDict _ -> false

let is_scalar = function TScalar _ -> true | TTuple _ | TBag _ | TLabel | TDict _ -> false

(** A flat bag: a bag of scalars or of tuples with flat attributes. *)
let is_flat_bag = function TBag t -> is_flat t | _ -> false

let is_bag = function TBag _ -> true | _ -> false

let tuple_fields = function
  | TTuple fields -> fields
  | _ -> invalid_arg "Types.tuple_fields: not a tuple type"

let field ty name =
  match ty with
  | TTuple fields ->
    (try List.assoc name fields
     with Not_found ->
       invalid_arg (Printf.sprintf "Types.field: no attribute %S" name))
  | _ -> invalid_arg "Types.field: not a tuple type"

let element = function
  | TBag t -> t
  | _ -> invalid_arg "Types.element: not a bag type"

(** Maximum nesting depth of bags: a flat bag has depth 1, a bag whose tuples
    contain a flat bag attribute has depth 2, etc. Scalars have depth 0. *)
let rec depth = function
  | TScalar _ | TLabel -> 0
  | TTuple fields -> List.fold_left (fun acc (_, t) -> max acc (depth t)) 0 fields
  | TBag t | TDict t -> 1 + depth t

let scalar_to_string = function
  | TInt -> "int"
  | TReal -> "real"
  | TString -> "string"
  | TBool -> "bool"
  | TDate -> "date"

let rec pp ppf = function
  | TScalar s -> Fmt.string ppf (scalar_to_string s)
  | TTuple fields ->
    Fmt.pf ppf "@[<hov 1>\u{27E8}%a\u{27E9}@]"
      (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf (n, t) -> Fmt.pf ppf "%s: %a" n pp t))
      fields
  | TBag t -> Fmt.pf ppf "Bag(%a)" pp t
  | TLabel -> Fmt.string ppf "Label"
  | TDict t -> Fmt.pf ppf "Label \u{2192} Bag(%a)" pp t

let to_string t = Fmt.str "%a" pp t
