(** A small combinator DSL for constructing NRC programs readably, used by
    examples, benchmarks, and tests.

    {[
      let open Nrc.Builder in
      for_ "cop" (input "COP") (fun cop ->
        sng (record [ "cname", cop #. "cname";
                      "total", ... ]))
    ]} *)

let input name = Expr.Var name
let v = Expr.var
let ( #. ) e a = Expr.Proj (e, a)
let int_ = Expr.int_
let real = Expr.real
let str = Expr.str
let bool_ = Expr.bool_
let date = Expr.date
let record = Expr.record
let sng = Expr.sng
let empty ty = Expr.Empty ty
let get e = Expr.Get e

(** [for_ x src body] builds [for x in src union body x], passing the bound
    variable to the body as an expression. *)
let for_ x src body = Expr.ForUnion (x, src, body (Expr.Var x))

let let_ x e body = Expr.Let (x, e, body (Expr.Var x))
let union = List.fold_left (fun a b -> Expr.Union (a, b)) (* with seed *)
let ( ++ ) a b = Expr.Union (a, b)
let where c e = Expr.If (c, e, None)
let if_ c th el = Expr.If (c, th, Some el)
let ( == ) a b = Expr.Cmp (Expr.Eq, a, b)
let ( <> ) a b = Expr.Cmp (Expr.Ne, a, b)
let ( < ) a b = Expr.Cmp (Expr.Lt, a, b)
let ( <= ) a b = Expr.Cmp (Expr.Le, a, b)
let ( > ) a b = Expr.Cmp (Expr.Gt, a, b)
let ( >= ) a b = Expr.Cmp (Expr.Ge, a, b)
let ( && ) a b = Expr.Logic (Expr.And, a, b)
let ( || ) a b = Expr.Logic (Expr.Or, a, b)
let not_ a = Expr.Not a
let ( + ) a b = Expr.Prim (Expr.Add, a, b)
let ( - ) a b = Expr.Prim (Expr.Sub, a, b)
let ( * ) a b = Expr.Prim (Expr.Mul, a, b)
let ( / ) a b = Expr.Prim (Expr.Div, a, b)
let dedup e = Expr.Dedup e

let group_by ?(group_attr = "group") keys e =
  Expr.GroupBy { input = e; keys; group_attr }

let sum_by ~keys ~values e = Expr.SumBy { input = e; keys; values }

(* Type shorthands *)
let t_int = Types.int_
let t_real = Types.real
let t_str = Types.string_
let t_bool = Types.bool_
let t_date = Types.date
let t_bag t = Types.TBag t
let t_tup fields = Types.TTuple fields
