(** NRC programs: sequences of assignments [(var <= e)*] over named inputs
    (Figure 1). The last assignment is conventionally the program result. *)

type assignment = { target : string; body : Expr.t }

type t = {
  inputs : (string * Types.t) list;
  assignments : assignment list;
}

val make : inputs:(string * Types.t) list -> (string * Expr.t) list -> t
val of_expr : inputs:(string * Types.t) list -> ?name:string -> Expr.t -> t

val result_name : t -> string
(** Target of the last assignment. @raise Invalid_argument if empty. *)

val typecheck : ?source:bool -> t -> Typecheck.env
(** Type every assignment in order; [source] (default true) additionally
    rejects shredding constructs. Returns the extended environment. *)

val eval : t -> (string * Value.t) list -> Eval.env
val eval_result : t -> (string * Value.t) list -> Value.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
