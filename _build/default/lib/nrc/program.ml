(** NRC programs: sequences of assignments [(var <= e)*] over a set of named
    inputs (Figure 1). The last assignment is conventionally the program
    result. *)

type assignment = { target : string; body : Expr.t }

type t = {
  inputs : (string * Types.t) list; (* free input relations and their types *)
  assignments : assignment list;
}

let make ~inputs assignments =
  {
    inputs;
    assignments = List.map (fun (target, body) -> { target; body }) assignments;
  }

let of_expr ~inputs ?(name = "Result") e =
  make ~inputs [ (name, e) ]

let result_name t =
  match List.rev t.assignments with
  | [] -> invalid_arg "Program.result_name: empty program"
  | { target; _ } :: _ -> target

(** Type all assignments in order; returns the environment extended with every
    assigned variable. Raises {!Typecheck.Type_error}. *)
let typecheck ?(source = true) (t : t) : Typecheck.env =
  List.fold_left
    (fun env { target; body } ->
      let ty = if source then Typecheck.check_source env body else Typecheck.infer env body in
      Typecheck.Env.add target ty env)
    (Typecheck.env_of_list t.inputs)
    t.assignments

(** Evaluate against input values; returns the full environment. *)
let eval (t : t) (input_values : (string * Value.t) list) : Eval.env =
  Eval.eval_program (Eval.env_of_list input_values)
    (List.map (fun { target; body } -> (target, body)) t.assignments)

(** Evaluate and return just the result value. *)
let eval_result (t : t) (input_values : (string * Value.t) list) : Value.t =
  let env = eval t input_values in
  match Eval.Env.find_opt (result_name t) env with
  | Some v -> v
  | None -> invalid_arg "Program.eval_result"

let pp ppf (t : t) =
  List.iter
    (fun { target; body } ->
      Fmt.pf ppf "@[<hv 2>%s \u{21D0}@ %a@]@." target Expr.pp body)
    t.assignments

let to_string t = Fmt.str "%a" pp t
