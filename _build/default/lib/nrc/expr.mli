(** Abstract syntax of NRC (Figure 1) and of the shredding extension
    NRC^{Lbl+lambda} (Section 4). A single AST covers both; source programs
    are checked label-free by {!Typecheck.check_source}. *)

type var = string
type prim = Add | Sub | Mul | Div
type cmp = Eq | Ne | Lt | Le | Gt | Ge
type logic = And | Or

type const =
  | CInt of int
  | CReal of float
  | CString of string
  | CBool of bool
  | CDate of int

type t =
  | Const of const
  | Var of var
  | Proj of t * string  (** [e.a] *)
  | Record of (string * t) list  (** tuple constructor *)
  | Empty of Types.t  (** empty bag with the given {e element} type *)
  | Singleton of t  (** [{e}] *)
  | Get of t  (** [get(e)]: the element of a singleton, else a default *)
  | ForUnion of var * t * t  (** [for x in e1 union e2] *)
  | Union of t * t  (** bag union (additive on multiplicities) *)
  | Let of var * t * t
  | Prim of prim * t * t
  | Cmp of cmp * t * t
  | Logic of logic * t * t
  | Not of t
  | If of t * t * t option  (** [If (c, e, None)] is bag-typed [if c then e] *)
  | Dedup of t  (** multiplicities to one; input must be a flat bag *)
  | GroupBy of { input : t; keys : string list; group_attr : string }
      (** per distinct key, nest the remaining attributes under [group_attr] *)
  | SumBy of { input : t; keys : string list; values : string list }
      (** per distinct key, sum the [values] attributes *)
  | NewLabel of { site : int; args : t list }
      (** create a label capturing flat values (shredding extension) *)
  | MatchLabel of {
      label : t;
      site : int;
      params : (var * Types.t) list;
      body : t;
    }
      (** [match l = NewLabel(params) then body]: binds the captured values
          positionally when [label] was created by [site], else the empty
          bag *)
  | Lookup of t * t  (** symbolic dictionary lookup (pre-materialization) *)
  | MatLookup of t * t
      (** lookup in a materialized flat dictionary [<label, f1...fk>]:
          yields the rows of one label, label column stripped *)
  | Lambda of { param : var; body : t }  (** symbolic dictionaries only *)
  | DictTreeUnion of t * t

(** {2 Smart constructors} *)

val int_ : int -> t
val real : float -> t
val str : string -> t
val bool_ : bool -> t
val date : int -> t
val var : var -> t
val proj : t -> string -> t
val path : var -> string list -> t
(** [path x [a; b]] is [x.a.b]. *)

val record : (string * t) list -> t
val sng : t -> t
val for_union : var -> t -> t -> t
val eq : t -> t -> t
val if_then : t -> t -> t

val const_value : const -> Value.t
val const_type : const -> Types.t

(** {2 Traversal, variables, substitution} *)

val map_children : (t -> t) -> t -> t
(** Map over immediate subexpressions (not binder-aware on its own). *)

module VSet : Set.S with type elt = string

val free_vars : t -> VSet.t
val is_free : var -> t -> bool

val fresh : ?hint:string -> unit -> var
(** Globally fresh variable names (contain ['%'], which user programs
    should avoid). *)

val fresh_counter : int ref

val subst : var -> t -> t -> t
(** [subst x e' e]: capture-avoiding substitution of [e'] for [x] in [e]. *)

val subst_many : (var * t) list -> t -> t

val equal : t -> t -> bool

(** {2 Printing} *)

val prim_to_string : prim -> string
val cmp_to_string : cmp -> string
val logic_to_string : logic -> string
val pp : Format.formatter -> t -> unit
val pp_atom : Format.formatter -> t -> unit
val to_string : t -> string
