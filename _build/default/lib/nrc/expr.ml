(** Abstract syntax of NRC (Figure 1) and of the shredding extension
    NRC^{Lbl+lambda} (Section 4). A single AST covers both: source programs
    are checked to be label-free by {!Typecheck.check_source}.

    Conventions:
    - [ForUnion (x, e1, e2)] is [for x in e1 union e2].
    - [If (c, e, None)] is the bag-typed [if c then e] (empty bag otherwise).
    - [GroupBy] introduces the bag-valued attribute [group_attr] holding the
      non-key attributes of each group; [SumBy] sums the [values] attributes
      per distinct key.
    - [NewLabel] sites identify the syntactic creation point of labels; two
      labels are equal iff same site and equal captured arguments. *)

type var = string

type prim = Add | Sub | Mul | Div
type cmp = Eq | Ne | Lt | Le | Gt | Ge
type logic = And | Or

type const =
  | CInt of int
  | CReal of float
  | CString of string
  | CBool of bool
  | CDate of int

type t =
  | Const of const
  | Var of var
  | Proj of t * string
  | Record of (string * t) list
  | Empty of Types.t (* element type of the empty bag *)
  | Singleton of t
  | Get of t
  | ForUnion of var * t * t
  | Union of t * t
  | Let of var * t * t
  | Prim of prim * t * t
  | Cmp of cmp * t * t
  | Logic of logic * t * t
  | Not of t
  | If of t * t * t option
  | Dedup of t
  | GroupBy of { input : t; keys : string list; group_attr : string }
  | SumBy of { input : t; keys : string list; values : string list }
  (* --- NRC^{Lbl+lambda} --- *)
  | NewLabel of { site : int; args : t list }
  | MatchLabel of { label : t; site : int; params : (var * Types.t) list; body : t }
  | Lookup of t * t (* symbolic dictionary lookup *)
  | MatLookup of t * t (* materialized dictionary lookup *)
  | Lambda of { param : var; body : t }
  | DictTreeUnion of t * t

(* ------------------------------------------------------------------ *)
(* Constructors and helpers *)

let int_ i = Const (CInt i)
let real r = Const (CReal r)
let str s = Const (CString s)
let bool_ b = Const (CBool b)
let date d = Const (CDate d)
let var x = Var x
let proj e a = Proj (e, a)

(** [path x [a; b]] is [x.a.b]. *)
let path x attrs = List.fold_left proj (Var x) attrs

let record fields = Record fields
let sng e = Singleton e
let for_union x src body = ForUnion (x, src, body)
let eq a b = Cmp (Eq, a, b)
let if_then c e = If (c, e, None)

let const_value = function
  | CInt i -> Value.Int i
  | CReal r -> Value.Real r
  | CString s -> Value.Str s
  | CBool b -> Value.Bool b
  | CDate d -> Value.Date d

let const_type = function
  | CInt _ -> Types.int_
  | CReal _ -> Types.real
  | CString _ -> Types.string_
  | CBool _ -> Types.bool_
  | CDate _ -> Types.date

(* ------------------------------------------------------------------ *)
(* Traversal: map over immediate subexpressions. The binder-aware folds
   below are built on this. *)

let map_children f e =
  match e with
  | Const _ | Var _ | Empty _ -> e
  | Proj (e1, a) -> Proj (f e1, a)
  | Record fields -> Record (List.map (fun (n, x) -> (n, f x)) fields)
  | Singleton e1 -> Singleton (f e1)
  | Get e1 -> Get (f e1)
  | ForUnion (x, e1, e2) -> ForUnion (x, f e1, f e2)
  | Union (e1, e2) -> Union (f e1, f e2)
  | Let (x, e1, e2) -> Let (x, f e1, f e2)
  | Prim (op, e1, e2) -> Prim (op, f e1, f e2)
  | Cmp (op, e1, e2) -> Cmp (op, f e1, f e2)
  | Logic (op, e1, e2) -> Logic (op, f e1, f e2)
  | Not e1 -> Not (f e1)
  | If (c, e1, e2) -> If (f c, f e1, Option.map f e2)
  | Dedup e1 -> Dedup (f e1)
  | GroupBy g -> GroupBy { g with input = f g.input }
  | SumBy s -> SumBy { s with input = f s.input }
  | NewLabel { site; args } -> NewLabel { site; args = List.map f args }
  | MatchLabel m -> MatchLabel { m with label = f m.label; body = f m.body }
  | Lookup (e1, e2) -> Lookup (f e1, f e2)
  | MatLookup (e1, e2) -> MatLookup (f e1, f e2)
  | Lambda { param; body } -> Lambda { param; body = f body }
  | DictTreeUnion (e1, e2) -> DictTreeUnion (f e1, f e2)

(* ------------------------------------------------------------------ *)
(* Free variables *)

module VSet = Set.Make (String)

let rec free_vars e : VSet.t =
  match e with
  | Const _ | Empty _ -> VSet.empty
  | Var x -> VSet.singleton x
  | ForUnion (x, e1, e2) ->
    VSet.union (free_vars e1) (VSet.remove x (free_vars e2))
  | Let (x, e1, e2) ->
    VSet.union (free_vars e1) (VSet.remove x (free_vars e2))
  | MatchLabel { label; params; body; _ } ->
    let body_fv =
      List.fold_left (fun s (p, _) -> VSet.remove p s) (free_vars body) params
    in
    VSet.union (free_vars label) body_fv
  | Lambda { param; body } -> VSet.remove param (free_vars body)
  | _ ->
    let acc = ref VSet.empty in
    let collect sub =
      acc := VSet.union !acc (free_vars sub);
      sub
    in
    ignore (map_children collect e);
    !acc

let is_free x e = VSet.mem x (free_vars e)

(* ------------------------------------------------------------------ *)
(* Fresh names and capture-avoiding substitution *)

let fresh_counter = ref 0

let fresh ?(hint = "v") () =
  incr fresh_counter;
  Printf.sprintf "%s%%%d" hint !fresh_counter

(** [subst x e' e] replaces free occurrences of [Var x] in [e] by [e'],
    renaming binders that would capture free variables of [e']. *)
let rec subst x e' e =
  match e with
  | Var y -> if String.equal x y then e' else e
  | ForUnion (y, e1, e2) ->
    let e1 = subst x e' e1 in
    if String.equal x y then ForUnion (y, e1, e2)
    else if VSet.mem y (free_vars e') then begin
      let y' = fresh ~hint:y () in
      ForUnion (y', e1, subst x e' (subst y (Var y') e2))
    end
    else ForUnion (y, e1, subst x e' e2)
  | Let (y, e1, e2) ->
    let e1 = subst x e' e1 in
    if String.equal x y then Let (y, e1, e2)
    else if VSet.mem y (free_vars e') then begin
      let y' = fresh ~hint:y () in
      Let (y', e1, subst x e' (subst y (Var y') e2))
    end
    else Let (y, e1, subst x e' e2)
  | Lambda { param = y; body } ->
    if String.equal x y then e
    else if VSet.mem y (free_vars e') then begin
      let y' = fresh ~hint:y () in
      Lambda { param = y'; body = subst x e' (subst y (Var y') body) }
    end
    else Lambda { param = y; body = subst x e' body }
  | MatchLabel { label; site; params; body } ->
    let label = subst x e' label in
    if List.exists (fun (p, _) -> String.equal x p) params then
      MatchLabel { label; site; params; body }
    else begin
      let fv' = free_vars e' in
      let captured = List.filter (fun (p, _) -> VSet.mem p fv') params in
      match captured with
      | [] -> MatchLabel { label; site; params; body = subst x e' body }
      | _ ->
        let renaming = List.map (fun (p, _) -> (p, fresh ~hint:p ())) captured in
        let params =
          List.map
            (fun (p, ty) ->
              match List.assoc_opt p renaming with
              | Some p' -> (p', ty)
              | None -> (p, ty))
            params
        in
        let body =
          List.fold_left (fun b (p, p') -> subst p (Var p') b) body renaming
        in
        MatchLabel { label; site; params; body = subst x e' body }
    end
  | _ -> map_children (subst x e') e

(** Simultaneous substitution of several variables. *)
let subst_many bindings e =
  List.fold_left (fun acc (x, e') -> subst x e' acc) e bindings

(* ------------------------------------------------------------------ *)
(* Structural equality (alpha-insensitive equality is not needed; generated
   names are globally fresh) *)

let equal : t -> t -> bool = Stdlib.( = )

(* ------------------------------------------------------------------ *)
(* Pretty printing *)

let prim_to_string = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let cmp_to_string = function
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let logic_to_string = function And -> "&&" | Or -> "||"

let rec pp ppf e =
  match e with
  | Const c -> Value.pp ppf (const_value c)
  | Var x -> Fmt.string ppf x
  | Proj (e1, a) -> Fmt.pf ppf "%a.%s" pp_atom e1 a
  | Record fields ->
    Fmt.pf ppf "@[<hov 1>\u{27E8}%a\u{27E9}@]"
      (Fmt.list ~sep:(Fmt.any ",@ ")
         (fun ppf (n, x) -> Fmt.pf ppf "%s := %a" n pp x))
      fields
  | Empty ty -> Fmt.pf ppf "\u{2205}[%a]" Types.pp ty
  | Singleton e1 -> Fmt.pf ppf "{%a}" pp e1
  | Get e1 -> Fmt.pf ppf "get(%a)" pp e1
  | ForUnion (x, e1, e2) ->
    Fmt.pf ppf "@[<hv 0>for %s in %a union@ %a@]" x pp e1 pp e2
  | Union (e1, e2) -> Fmt.pf ppf "@[<hv 0>%a@ \u{228E} %a@]" pp e1 pp e2
  | Let (x, e1, e2) ->
    Fmt.pf ppf "@[<hv 0>let %s := %a in@ %a@]" x pp e1 pp e2
  | Prim (op, e1, e2) ->
    Fmt.pf ppf "%a %s %a" pp_atom e1 (prim_to_string op) pp_atom e2
  | Cmp (op, e1, e2) ->
    Fmt.pf ppf "%a %s %a" pp_atom e1 (cmp_to_string op) pp_atom e2
  | Logic (op, e1, e2) ->
    Fmt.pf ppf "%a %s %a" pp_atom e1 (logic_to_string op) pp_atom e2
  | Not e1 -> Fmt.pf ppf "\u{00AC}%a" pp_atom e1
  | If (c, e1, None) -> Fmt.pf ppf "@[<hv 2>if %a then@ %a@]" pp c pp e1
  | If (c, e1, Some e2) ->
    Fmt.pf ppf "@[<hv 2>if %a then@ %a@ else %a@]" pp c pp e1 pp e2
  | Dedup e1 -> Fmt.pf ppf "dedup(%a)" pp e1
  | GroupBy { input; keys; group_attr } ->
    Fmt.pf ppf "groupBy^%s_{%s}(%a)" group_attr (String.concat "," keys) pp input
  | SumBy { input; keys; values } ->
    Fmt.pf ppf "sumBy^{%s}_{%s}(%a)" (String.concat "," values)
      (String.concat "," keys) pp input
  | NewLabel { site; args } ->
    Fmt.pf ppf "NewLabel_%d(%a)" site (Fmt.list ~sep:Fmt.comma pp) args
  | MatchLabel { label; site; params; body } ->
    Fmt.pf ppf "@[<hv 2>match %a = NewLabel_%d(%s) then@ %a@]" pp label site
      (String.concat "," (List.map fst params)) pp body
  | Lookup (e1, e2) -> Fmt.pf ppf "Lookup(%a, %a)" pp e1 pp e2
  | MatLookup (e1, e2) -> Fmt.pf ppf "MatLookup(%a, %a)" pp e1 pp e2
  | Lambda { param; body } -> Fmt.pf ppf "@[<hv 2>\u{03BB}%s.@ %a@]" param pp body
  | DictTreeUnion (e1, e2) ->
    Fmt.pf ppf "@[<hv 0>%a@ DictTreeUnion %a@]" pp e1 pp e2

and pp_atom ppf e =
  match e with
  | Const _ | Var _ | Proj _ | Record _ | Singleton _ | Get _ | Empty _
  | Dedup _ | GroupBy _ | SumBy _ | NewLabel _ | Lookup _ | MatLookup _ ->
    pp ppf e
  | _ -> Fmt.pf ppf "(%a)" pp e

let to_string e = Fmt.str "%a" pp e
