(** Source-level normalization rewrites.

    [inline_lets] implements the "Normalize" step of the materialization
    algorithm (Figure 5, line 3): recursively inline every [let] binding.
    [simplify] additionally performs standard monad-comprehension
    normalization steps that make unnesting applicable:

    - beta-reduction of projections on tuple constructors,
    - flattening of [for] over [for] / [if] / [union] / singleton / empty,
    - hoisting [if] with no else out of singleton heads. *)

let rec inline_lets (e : Expr.t) : Expr.t =
  match e with
  | Expr.Let (x, e1, e2) -> inline_lets (Expr.subst x (inline_lets e1) e2)
  | _ -> Expr.map_children inline_lets e

let rec simplify (e : Expr.t) : Expr.t =
  let e = Expr.map_children simplify e in
  match e with
  (* projection on a tuple constructor *)
  | Expr.Proj (Expr.Record fields, a) -> (
    match List.assoc_opt a fields with
    | Some v -> v
    | None -> e)
  (* let inlining *)
  | Expr.Let (x, e1, e2) -> simplify (Expr.subst x e1 e2)
  (* for x in (for y in e1 union e2) union e3
     ==> for y in e1 union (for x in e2 union e3), y fresh if captured *)
  | Expr.ForUnion (x, Expr.ForUnion (y, e1, e2), e3) ->
    let y', e2' =
      if Expr.is_free y e3 then begin
        let y' = Expr.fresh ~hint:y () in
        (y', Expr.subst y (Expr.Var y') e2)
      end
      else (y, e2)
    in
    simplify (Expr.ForUnion (y', e1, Expr.ForUnion (x, e2', e3)))
  (* for x in {e1} union e2 ==> e2[x := e1] *)
  | Expr.ForUnion (x, Expr.Singleton e1, e2) -> simplify (Expr.subst x e1 e2)
  (* for x in (if c then e1) union e2 ==> if c then (for x in e1 union e2) *)
  | Expr.ForUnion (x, Expr.If (c, e1, None), e2) ->
    simplify (Expr.If (c, Expr.ForUnion (x, e1, e2), None))
  (* for x in (e1 union e2) union e3 ==> (for..e1..) union (for..e2..) *)
  | Expr.ForUnion (x, Expr.Union (e1, e2), e3) ->
    simplify
      (Expr.Union (Expr.ForUnion (x, e1, e3), Expr.ForUnion (x, e2, e3)))
  (* for x in empty union e ==> empty of body element type: we cannot name
     the element type without typing, so keep a canonical marker by reusing
     the body under an impossible condition-free empty: the unnester treats
     this case directly. *)
  | Expr.ForUnion (_, Expr.Empty _, _) -> e
  (* if true / if false *)
  | Expr.If (Expr.Const (Expr.CBool true), e1, _) -> e1
  | Expr.If (Expr.Const (Expr.CBool false), _, Some e2) -> e2
  (* nested if-then fusion: if c1 then (if c2 then b) *)
  | Expr.If (c1, Expr.If (c2, b, None), None) ->
    Expr.If (Expr.Logic (Expr.And, c1, c2), b, None)
  | _ -> e
