(** Hand-written lexer for the NRC surface syntax (see {!Parser}). *)

type token =
  | IDENT of string
  | INT of int
  | REAL of float
  | STRING of string
  | DATE of int  (** [@123] *)
  | FOR | IN | UNION | IF | THEN | ELSE | LET | TRUE | FALSE
  | SNG | GET | DEDUP | SUMBY | GROUPBY | EMPTY | AND_KW | OR_KW | NOT_KW
  | TBAG | TTUPLE | TINT | TREAL | TSTRING | TBOOL | TDATE
  | LPAREN | RPAREN | LBRACE | RBRACE
  | COMMA | SEMI | DOT | COLON | ASSIGN
  | EQ | NE | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH | PLUSPLUS
  | AMPAMP | BARBAR
  | LARROW  (** [<-] in program assignments *)
  | EOF

exception Lex_error of { pos : int; message : string }

val tokenize : string -> (token * int) list
(** Tokens with their byte offsets; comments run from [--] to end of line.
    @raise Lex_error on unterminated strings or stray characters. *)

val token_to_string : token -> string
