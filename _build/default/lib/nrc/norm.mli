(** Source-level normalization rewrites. *)

val inline_lets : Expr.t -> Expr.t
(** Recursively inline every [let] (the "Normalize" step of Figure 5). *)

val simplify : Expr.t -> Expr.t
(** Monad-comprehension normal form: beta-reduce projections of records,
    flatten [for] over [for]/[if]/[union]/singleton, fuse nested
    conditionals, inline lets. Applied before unnesting and shredding. *)
