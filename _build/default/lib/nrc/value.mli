(** Runtime values of the nested data model.

    Bags are lists with explicit duplicates (multiplicity is positional).
    [Null] only ever appears as the product of outer operators in the plan
    language; NRC source programs cannot construct it. Labels are the
    runtime counterpart of the shredding extension: created by a [NewLabel]
    site, capturing a tuple of flat values; two labels are equal iff they
    come from the same site and capture equal values. *)

type t =
  | Null
  | Int of int
  | Real of float
  | Str of string
  | Bool of bool
  | Date of int  (** days since 1970-01-01 *)
  | Label of label
  | Tuple of (string * t) list
  | Bag of t list

and label = { site : int; args : t list }

val unit_ : t
val is_null : t -> bool

(** {2 Ordering, equality, hashing} *)

val compare : t -> t -> int
(** Total structural order (used for grouping, dedup, canonicalization). *)

val equal : t -> t -> bool
val hash : t -> int

(** {2 Accessors} *)

val field : t -> string -> t
(** Tuple attribute access; [Null] propagates ([field Null _ = Null]).
    @raise Invalid_argument on other non-tuples or missing attributes. *)

val bag_items : t -> t list
(** Contents of a bag; [Null] counts as the empty bag (outer-operator
    semantics). @raise Invalid_argument on other non-bags. *)

val as_int : t -> int
val as_real : t -> float
(** Accepts [Int] too (numeric promotion). *)

val as_bool : t -> bool
val as_string : t -> string
val as_label : t -> label

(** {2 Size and defaults} *)

val byte_size : t -> int
(** Rough binary-encoded size: drives the simulator's shuffle accounting
    and worker memory budgets. *)

val default_of_type : Types.t -> t
(** The default value [get] returns on non-singleton bags (Section 2). *)

val type_of : t -> Types.t
(** Type of a closed value; bag elements assumed homogeneous. *)

(** {2 Bag utilities} *)

val canonicalize : t -> t
(** Recursively sort all bag contents: canonical form for order-insensitive
    comparison. *)

val bag_equal : t -> t -> bool
(** Equality up to element order (bags are unordered). *)

val round_reals : ?digits:int -> t -> t
(** Round every real to [digits] (default 6) decimal places. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Structural equality with a relative tolerance on reals. *)

val approx_bag_equal : t -> t -> bool
(** Bag equality up to element order and floating-point summation noise;
    the comparison used to validate distributed aggregates against the
    reference interpreter. *)

val dedup : t list -> t list
(** Distinct elements, first-occurrence order (multiplicities to one). *)

(** {2 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
