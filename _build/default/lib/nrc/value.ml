(** Runtime values of the nested data model.

    Bags are represented as lists with explicit duplicates (multiplicity is
    positional). [Null] only ever appears as the product of outer operators
    in the plan language; NRC source programs cannot construct it.

    Labels are the runtime counterpart of the shredding extension: a label is
    created by a [NewLabel] site and captures a tuple of flat values. Two
    labels are equal iff they come from the same site and capture equal
    values, which is exactly the semantics needed for label-keyed joins. *)

type t =
  | Null
  | Int of int
  | Real of float
  | Str of string
  | Bool of bool
  | Date of int (* days since 1970-01-01 *)
  | Label of label
  | Tuple of (string * t) list
  | Bag of t list

and label = { site : int; args : t list }

let unit_ = Tuple []
let is_null = function Null -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Total order, equality, hashing *)

let tag_rank = function
  | Null -> 0 | Int _ -> 1 | Real _ -> 2 | Str _ -> 3 | Bool _ -> 4
  | Date _ -> 5 | Label _ -> 6 | Tuple _ -> 7 | Bag _ -> 8

let rec compare (a : t) (b : t) =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Real x, Real y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | Label x, Label y ->
    let c = Stdlib.compare x.site y.site in
    if c <> 0 then c else compare_list x.args y.args
  | Tuple x, Tuple y ->
    compare_fields x y
  | Bag x, Bag y -> compare_list x y
  | _, _ -> Stdlib.compare (tag_rank a) (tag_rank b)

and compare_list xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs' ys'

and compare_fields xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (n1, x) :: xs', (n2, y) :: ys' ->
    let c = String.compare n1 n2 in
    if c <> 0 then c
    else
      let c = compare x y in
      if c <> 0 then c else compare_fields xs' ys'

let equal a b = compare a b = 0

let rec hash (v : t) =
  match v with
  | Null -> 17
  | Int x -> Hashtbl.hash x
  | Real x -> Hashtbl.hash x
  | Str x -> Hashtbl.hash x
  | Bool x -> Hashtbl.hash x
  | Date x -> 31 * Hashtbl.hash x + 5
  | Label { site; args } ->
    List.fold_left (fun acc a -> (acc * 31) + hash a) (site + 193) args
  | Tuple fields ->
    List.fold_left
      (fun acc (n, x) -> (acc * 31) + Hashtbl.hash n + hash x)
      7 fields
  | Bag items -> List.fold_left (fun acc x -> acc + hash x) 977 items

(* ------------------------------------------------------------------ *)
(* Accessors *)

let field v name =
  match v with
  | Tuple fields -> (
    match List.assoc_opt name fields with
    | Some x -> x
    | None ->
      invalid_arg (Printf.sprintf "Value.field: no attribute %S in tuple" name))
  | Null -> Null (* null propagation through projections of outer tuples *)
  | _ -> invalid_arg (Printf.sprintf "Value.field %S: not a tuple" name)

let bag_items = function
  | Bag items -> items
  | Null -> [] (* outer operators treat null as the empty bag *)
  | _ -> invalid_arg "Value.bag_items: not a bag"

let as_int = function Int i -> i | v -> invalid_arg ("Value.as_int: " ^ string_of_int (tag_rank v))
let as_real = function Real r -> r | Int i -> float_of_int i | _ -> invalid_arg "Value.as_real"
let as_bool = function Bool b -> b | _ -> invalid_arg "Value.as_bool"
let as_string = function Str s -> s | _ -> invalid_arg "Value.as_string"

let as_label = function
  | Label l -> l
  | _ -> invalid_arg "Value.as_label: not a label"

(* ------------------------------------------------------------------ *)
(* Size estimation: drives shuffle accounting and worker memory budgets in
   the cluster simulator. Numbers are rough per-value byte costs mirroring a
   compact binary row format. *)

let rec byte_size = function
  | Null -> 1
  | Int _ | Real _ | Date _ -> 8
  | Bool _ -> 1
  | Str s -> 8 + String.length s
  | Label { args; _ } -> 8 + List.fold_left (fun acc a -> acc + byte_size a) 0 args
  | Tuple fields ->
    List.fold_left (fun acc (_, v) -> acc + 4 + byte_size v) 8 fields
  | Bag items -> List.fold_left (fun acc v -> acc + byte_size v) 16 items

(* ------------------------------------------------------------------ *)
(* Default values: get(e) on a non-singleton bag returns the default of the
   element type. *)

let rec default_of_type (ty : Types.t) : t =
  match ty with
  | Types.TScalar TInt -> Int 0
  | Types.TScalar TReal -> Real 0.
  | Types.TScalar TString -> Str ""
  | Types.TScalar TBool -> Bool false
  | Types.TScalar TDate -> Date 0
  | Types.TLabel -> Label { site = -1; args = [] }
  | Types.TTuple fields ->
    Tuple (List.map (fun (n, t) -> (n, default_of_type t)) fields)
  | Types.TBag _ | Types.TDict _ -> Bag []

(* ------------------------------------------------------------------ *)
(* Type inference of a closed value (used in tests and for value shredding
   of inputs). All bag elements are assumed homogeneous; an empty bag gets
   element type unit tuple. *)

let rec type_of = function
  | Null -> Types.TTuple [] (* arbitrary; nulls are plan-internal *)
  | Int _ -> Types.int_
  | Real _ -> Types.real
  | Str _ -> Types.string_
  | Bool _ -> Types.bool_
  | Date _ -> Types.date
  | Label _ -> Types.TLabel
  | Tuple fields -> Types.TTuple (List.map (fun (n, v) -> (n, type_of v)) fields)
  | Bag [] -> Types.TBag (Types.TTuple [])
  | Bag (x :: _) -> Types.TBag (type_of x)

(* ------------------------------------------------------------------ *)
(* Bag utilities *)

(** Canonical form of a bag for order-insensitive comparison: recursively
    sorts all bag contents. *)
let rec canonicalize = function
  | Bag items -> Bag (List.sort compare (List.map canonicalize items))
  | Tuple fields -> Tuple (List.map (fun (n, v) -> (n, canonicalize v)) fields)
  | Label { site; args } -> Label { site; args = List.map canonicalize args }
  | (Null | Int _ | Real _ | Str _ | Bool _ | Date _) as v -> v

(** Bag equality up to element order (bags are unordered collections). *)
let bag_equal a b = equal (canonicalize a) (canonicalize b)

(** Round every real to [digits] decimal places (default 6): used to compare
    results of aggregations whose floating-point summation order differs
    between evaluation strategies. *)
let rec round_reals ?(digits = 6) = function
  | Real r ->
    let m = Float.pow 10. (float_of_int digits) in
    Real (Float.round (r *. m) /. m)
  | Tuple fields -> Tuple (List.map (fun (n, v) -> (n, round_reals ~digits v)) fields)
  | Bag items -> Bag (List.map (round_reals ~digits) items)
  | Label { site; args } -> Label { site; args = List.map (round_reals ~digits) args }
  | (Null | Int _ | Str _ | Bool _ | Date _) as v -> v

(** Structural equality with a relative tolerance on reals. *)
let rec approx_equal ?(tol = 1e-3) a b =
  match a, b with
  | Real x, Real y -> Float.abs (x -. y) <= tol *. (1. +. Float.abs x)
  | Tuple xs, Tuple ys -> (
    try
      List.for_all2
        (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && approx_equal ~tol v1 v2)
        xs ys
    with Invalid_argument _ -> false)
  | Bag xs, Bag ys -> (
    try List.for_all2 (approx_equal ~tol) xs ys
    with Invalid_argument _ -> false)
  | Label l1, Label l2 -> (
    l1.site = l2.site
    &&
    try List.for_all2 (approx_equal ~tol) l1.args l2.args
    with Invalid_argument _ -> false)
  | _, _ -> equal a b

(** Bag equality up to element order and floating-point noise: bags are
    canonicalized on rounded values (so summation-order differences cannot
    perturb the sort) and compared with a relative tolerance (so sums that
    straddle a rounding boundary still match). *)
let approx_bag_equal a b =
  approx_equal
    (canonicalize (round_reals ~digits:4 a))
    (canonicalize (round_reals ~digits:4 b))

let dedup items =
  let module S = Set.Make (struct
    type nonrec t = t
    let compare = compare
  end) in
  let _, rev =
    List.fold_left
      (fun (seen, acc) v ->
        if S.mem v seen then (seen, acc) else (S.add v seen, v :: acc))
      (S.empty, []) items
  in
  List.rev rev

(* ------------------------------------------------------------------ *)
(* Pretty printing *)

let rec pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Int i -> Fmt.int ppf i
  | Real r -> Fmt.float ppf r
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Date d -> Fmt.pf ppf "d%d" d
  | Label { site; args } ->
    Fmt.pf ppf "L%d(%a)" site (Fmt.list ~sep:Fmt.comma pp) args
  | Tuple fields ->
    Fmt.pf ppf "@[<hov 1>\u{27E8}%a\u{27E9}@]"
      (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf (n, v) -> Fmt.pf ppf "%s: %a" n pp v))
      fields
  | Bag items ->
    Fmt.pf ppf "@[<hov 1>{%a}@]" (Fmt.list ~sep:(Fmt.any ",@ ") pp) items

let to_string v = Fmt.str "%a" pp v
