(** Reference interpreter for NRC and the lambda-free fragment of
    NRC^{Lbl+lambda} produced by materialization: the semantic oracle that
    the unnesting, shredding, and distributed execution routes are tested
    against. *)

exception Eval_error of string

module Env : Map.S with type key = string

type env = Value.t Env.t

val env_of_list : (string * Value.t) list -> env

val eval_prim : Expr.prim -> Value.t -> Value.t -> Value.t
(** Arithmetic with int/real promotion; division by zero yields 0. *)

val eval_cmp : Expr.cmp -> Value.t -> Value.t -> Value.t

val add_values : Value.t -> Value.t -> Value.t
(** The commutative monoid used by [sumBy] / Gamma-plus. *)

val eval : env -> Expr.t -> Value.t
(** @raise Eval_error on unbound variables, type confusion, or the
    symbolic-only constructs ([Lookup], [Lambda], [DictTreeUnion]). *)

val eval_program : env -> (string * Expr.t) list -> env
(** Evaluate assignments in order, extending the environment. *)
