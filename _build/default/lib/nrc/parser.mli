(** Recursive-descent parser for an ASCII surface syntax of NRC:

    {v
      for cop in COP union
        sng( cname := cop.cname,
             total := sumBy(pname; total)(
               for co in cop.corders union
               for op in co.oparts union
               for p in Part union
               if op.pid == p.pid then
                 sng( pname := p.pname, total := op.qty * p.price )) )
    v}

    Records are written [(a := e, ...)], singletons [sng(e)] (fused as
    [sng(a := e, ...)]), bag union [e ++ e], aggregation
    [sumBy(keys; values)(e)] and [groupBy(keys[; attr])(e)], empty bags
    [empty(type)] with [type] one of the scalars, [bag(t)], or
    [tuple(a: t, ...)]. Programs are assignment sequences [x <- e ;]. *)

exception Parse_error of { pos : int; message : string }

val expr_of_string : string -> Expr.t
(** @raise Parse_error / {!Lexer.Lex_error} with a byte offset. *)

val assignments_of_string : string -> (string * Expr.t) list
(** Assignment sequence, or a bare expression as [[("Q", e)]]. *)

val program_of_string :
  inputs:(string * Types.t) list -> string -> Program.t

val type_to_source : Types.t -> string

val to_source : Expr.t -> string
(** Render a label-free expression as parseable source text;
    [expr_of_string (to_source e)] is semantically equal to [e] (roundtrip
    property in the test suite). @raise Invalid_argument on shredding
    constructs. *)

val program_to_source : Program.t -> string
