lib/nrc/parser.ml: Expr Fmt Lexer List Printf Program String Types
