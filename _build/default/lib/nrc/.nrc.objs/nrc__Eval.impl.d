lib/nrc/eval.ml: Expr Fmt Hashtbl List Map String Value
