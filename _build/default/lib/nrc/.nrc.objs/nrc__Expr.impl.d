lib/nrc/expr.ml: Fmt List Option Printf Set Stdlib String Types Value
