lib/nrc/builder.ml: Expr List Types
