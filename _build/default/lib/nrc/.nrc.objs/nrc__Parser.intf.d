lib/nrc/parser.mli: Expr Program Types
