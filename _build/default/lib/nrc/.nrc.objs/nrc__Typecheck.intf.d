lib/nrc/typecheck.mli: Expr Map Types
