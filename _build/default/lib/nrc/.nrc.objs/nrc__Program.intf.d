lib/nrc/program.mli: Eval Expr Format Typecheck Types Value
