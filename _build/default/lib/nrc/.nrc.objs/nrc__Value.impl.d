lib/nrc/value.ml: Float Fmt Hashtbl List Printf Set Stdlib String Types
