lib/nrc/expr.mli: Format Set Types Value
