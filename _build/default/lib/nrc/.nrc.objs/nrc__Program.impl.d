lib/nrc/program.ml: Eval Expr Fmt List Typecheck Types Value
