lib/nrc/norm.mli: Expr
