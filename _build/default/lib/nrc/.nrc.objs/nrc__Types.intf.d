lib/nrc/types.mli: Format
