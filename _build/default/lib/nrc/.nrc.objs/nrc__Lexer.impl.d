lib/nrc/lexer.ml: Buffer List Printf String
