lib/nrc/eval.mli: Expr Map Value
