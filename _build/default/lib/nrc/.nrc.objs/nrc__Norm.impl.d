lib/nrc/norm.ml: Expr List
