lib/nrc/typecheck.ml: Expr Fmt Hashtbl List Map String Types
