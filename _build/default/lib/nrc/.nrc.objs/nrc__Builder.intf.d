lib/nrc/builder.mli: Expr Types
