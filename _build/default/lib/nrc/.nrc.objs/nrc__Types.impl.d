lib/nrc/types.ml: Fmt List Printf String
