lib/nrc/lexer.mli:
