lib/nrc/value.mli: Format Types
