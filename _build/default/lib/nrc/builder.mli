(** A combinator DSL for constructing NRC programs readably. Open locally —
    [B.(...)] — because it shadows comparison and arithmetic operators:

    {[
      let open Nrc.Builder in
      for_ "cop" (input "COP") (fun cop ->
        sng (record [ ("cname", cop #. "cname") ]))
    ]} *)

val input : string -> Expr.t
(** Reference a named dataset. *)

val v : string -> Expr.t
(** Reference a variable. *)

val ( #. ) : Expr.t -> string -> Expr.t
(** Attribute projection [e.a]; binds tighter than all other operators. *)

(** {2 Literals} *)

val int_ : int -> Expr.t
val real : float -> Expr.t
val str : string -> Expr.t
val bool_ : bool -> Expr.t
val date : int -> Expr.t

(** {2 Collection constructs} *)

val record : (string * Expr.t) list -> Expr.t
val sng : Expr.t -> Expr.t
val empty : Types.t -> Expr.t
val get : Expr.t -> Expr.t

val for_ : string -> Expr.t -> (Expr.t -> Expr.t) -> Expr.t
(** [for_ x src body]: [for x in src union body (Var x)]. *)

val let_ : string -> Expr.t -> (Expr.t -> Expr.t) -> Expr.t

val union : Expr.t -> Expr.t list -> Expr.t
(** Left fold of {!(++)} over a seed. *)

val ( ++ ) : Expr.t -> Expr.t -> Expr.t
(** Bag union. *)

val where : Expr.t -> Expr.t -> Expr.t
(** [where c e]: bag-typed [if c then e]. *)

val if_ : Expr.t -> Expr.t -> Expr.t -> Expr.t

(** {2 Comparisons and logic (shadow the stdlib!)} *)

val ( == ) : Expr.t -> Expr.t -> Expr.t
val ( <> ) : Expr.t -> Expr.t -> Expr.t
val ( < ) : Expr.t -> Expr.t -> Expr.t
val ( <= ) : Expr.t -> Expr.t -> Expr.t
val ( > ) : Expr.t -> Expr.t -> Expr.t
val ( >= ) : Expr.t -> Expr.t -> Expr.t
val ( && ) : Expr.t -> Expr.t -> Expr.t
val ( || ) : Expr.t -> Expr.t -> Expr.t
val not_ : Expr.t -> Expr.t

(** {2 Arithmetic (shadow the stdlib!)} *)

val ( + ) : Expr.t -> Expr.t -> Expr.t
val ( - ) : Expr.t -> Expr.t -> Expr.t
val ( * ) : Expr.t -> Expr.t -> Expr.t
val ( / ) : Expr.t -> Expr.t -> Expr.t

(** {2 Restructuring operators} *)

val dedup : Expr.t -> Expr.t
val group_by : ?group_attr:string -> string list -> Expr.t -> Expr.t
val sum_by : keys:string list -> values:string list -> Expr.t -> Expr.t

(** {2 Type shorthands} *)

val t_int : Types.t
val t_real : Types.t
val t_str : Types.t
val t_bool : Types.t
val t_date : Types.t
val t_bag : Types.t -> Types.t
val t_tup : (string * Types.t) list -> Types.t
