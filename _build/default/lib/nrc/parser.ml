(** Recursive-descent parser for an ASCII surface syntax of NRC, so queries
    can be written as text (CLI, tests, docs) instead of through the
    builder:

    {v
      for cop in COP union
        sng( cname := cop.cname,
             total := sumBy(pname; total)(
               for co in cop.corders union
               for op in co.oparts union
               for p in Part union
               if op.pid == p.pid then
                 sng( pname := p.pname, total := op.qty * p.price )) )
    v}

    Grammar (precedence climbing, loosest first):

    {v
      expr     := for x in expr union expr
                | if expr then expr [else expr]
                | let x := expr in expr
                | or
      or       := and   ( (or | "||") and )*
      and      := cmp   ( (and | "&&") cmp )*
      cmp      := add   [ (== | != | < | <= | > | >=) add ]
      add      := mul   ( (+ | - | ++) mul )*
      mul      := unary ( ( "*" | "/" ) unary )*
      unary    := not unary | postfix
      postfix  := atom ( . ident )*
      atom     := literal | ident | "(" expr ")"
                | sng "(" (expr | fields) ")"          -- singleton / record
                | get "(" expr ")" | dedup "(" expr ")"
                | sumBy "(" idents ";" idents ")" "(" expr ")"
                | groupBy "(" idents ")" "(" expr ")"
                | empty "(" type ")"
      type     := int|real|string|bool|date
                | bag "(" type ")" | tuple "(" (ident ":" type),* ")"
      program  := (ident "<-" expr ";")+ | expr
    v}

    [sng(a := e, ...)] builds a singleton bag of a record; a record by
    itself is written [(a := e, ...)]. *)

open Lexer

exception Parse_error of { pos : int; message : string }

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, p) :: _ -> (t, p) | [] -> (EOF, 0)

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let error st fmt =
  let _, pos = peek st in
  Fmt.kstr (fun message -> raise (Parse_error { pos; message })) fmt

let expect st t =
  let t', _ = peek st in
  if t' = t then advance st
  else error st "expected %s, found %s" (token_to_string t) (token_to_string t')

let ident st =
  match peek st with
  | IDENT x, _ ->
    advance st;
    x
  | t, _ -> error st "expected an identifier, found %s" (token_to_string t)

(* ------------------------------------------------------------------ *)
(* Types *)

let rec parse_type st : Types.t =
  match peek st with
  | TINT, _ -> advance st; Types.int_
  | TREAL, _ -> advance st; Types.real
  | TSTRING, _ -> advance st; Types.string_
  | TBOOL, _ -> advance st; Types.bool_
  | TDATE, _ -> advance st; Types.date
  | TBAG, _ ->
    advance st;
    expect st LPAREN;
    let t = parse_type st in
    expect st RPAREN;
    Types.bag t
  | TTUPLE, _ ->
    advance st;
    expect st LPAREN;
    let rec fields acc =
      let name = ident st in
      expect st COLON;
      let t = parse_type st in
      match peek st with
      | COMMA, _ ->
        advance st;
        fields ((name, t) :: acc)
      | _ -> List.rev ((name, t) :: acc)
    in
    let fs = match peek st with RPAREN, _ -> [] | _ -> fields [] in
    expect st RPAREN;
    Types.tuple fs
  | t, _ -> error st "expected a type, found %s" (token_to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec parse_expr st : Expr.t =
  match peek st with
  | FOR, _ ->
    advance st;
    let x = ident st in
    expect st IN;
    let src = parse_expr_no_union st in
    expect st UNION;
    let body = parse_expr st in
    Expr.ForUnion (x, src, body)
  | IF, _ ->
    advance st;
    let c = parse_or st in
    expect st THEN;
    let t = parse_expr st in
    (match peek st with
    | ELSE, _ ->
      advance st;
      let e = parse_expr st in
      Expr.If (c, t, Some e)
    | _ -> Expr.If (c, t, None))
  | LET, _ ->
    advance st;
    let x = ident st in
    expect st ASSIGN;
    let e1 = parse_expr_no_union st in
    expect st IN;
    let e2 = parse_expr st in
    Expr.Let (x, e1, e2)
  | _ -> parse_or st

(* generator sources and let bodies stop before a top-level 'union'/'in' *)
and parse_expr_no_union st = parse_or st

and parse_or st =
  let rec go acc =
    match peek st with
    | (OR_KW | BARBAR), _ ->
      advance st;
      go (Expr.Logic (Expr.Or, acc, parse_and st))
    | _ -> acc
  in
  go (parse_and st)

and parse_and st =
  let rec go acc =
    match peek st with
    | (AND_KW | AMPAMP), _ ->
      advance st;
      go (Expr.Logic (Expr.And, acc, parse_cmp st))
    | _ -> acc
  in
  go (parse_cmp st)

and parse_cmp st =
  let lhs = parse_add st in
  let mk op =
    advance st;
    Expr.Cmp (op, lhs, parse_add st)
  in
  match peek st with
  | EQ, _ -> mk Expr.Eq
  | NE, _ -> mk Expr.Ne
  | LT, _ -> mk Expr.Lt
  | LE, _ -> mk Expr.Le
  | GT, _ -> mk Expr.Gt
  | GE, _ -> mk Expr.Ge
  | _ -> lhs

and parse_add st =
  let rec go acc =
    match peek st with
    | PLUS, _ ->
      advance st;
      go (Expr.Prim (Expr.Add, acc, parse_mul st))
    | MINUS, _ ->
      advance st;
      go (Expr.Prim (Expr.Sub, acc, parse_mul st))
    | PLUSPLUS, _ ->
      advance st;
      go (Expr.Union (acc, parse_mul st))
    | _ -> acc
  in
  go (parse_mul st)

and parse_mul st =
  let rec go acc =
    match peek st with
    | STAR, _ ->
      advance st;
      go (Expr.Prim (Expr.Mul, acc, parse_unary st))
    | SLASH, _ ->
      advance st;
      go (Expr.Prim (Expr.Div, acc, parse_unary st))
    | _ -> acc
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | NOT_KW, _ ->
    advance st;
    Expr.Not (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go acc =
    match peek st with
    | DOT, _ ->
      advance st;
      go (Expr.Proj (acc, ident st))
    | _ -> acc
  in
  go (parse_atom st)

and parse_fields st : (string * Expr.t) list =
  (* assumes at least one [ident := expr] *)
  let rec fields acc =
    let name = ident st in
    expect st ASSIGN;
    let e = parse_expr st in
    match peek st with
    | COMMA, _ ->
      advance st;
      fields ((name, e) :: acc)
    | _ -> List.rev ((name, e) :: acc)
  in
  fields []

and parse_ident_list st =
  let rec go acc =
    let x = ident st in
    match peek st with
    | COMMA, _ ->
      advance st;
      go (x :: acc)
    | _ -> List.rev (x :: acc)
  in
  go []

and parse_atom st =
  match peek st with
  | INT i, _ -> advance st; Expr.int_ i
  | REAL r, _ -> advance st; Expr.real r
  | STRING s, _ -> advance st; Expr.str s
  | DATE d, _ -> advance st; Expr.date d
  | TRUE, _ -> advance st; Expr.bool_ true
  | FALSE, _ -> advance st; Expr.bool_ false
  | IDENT x, _ -> advance st; Expr.Var x
  | LPAREN, _ -> (
    advance st;
    (* record if we see [ident :=], otherwise parenthesized expression *)
    match st.toks with
    | (IDENT _, _) :: (ASSIGN, _) :: _ ->
      let fs = parse_fields st in
      expect st RPAREN;
      Expr.Record fs
    | (RPAREN, _) :: _ ->
      advance st;
      Expr.Record []
    | _ ->
      let e = parse_expr st in
      expect st RPAREN;
      e)
  | SNG, _ -> (
    advance st;
    expect st LPAREN;
    match st.toks with
    | (IDENT _, _) :: (ASSIGN, _) :: _ ->
      let fs = parse_fields st in
      expect st RPAREN;
      Expr.Singleton (Expr.Record fs)
    | _ ->
      let e = parse_expr st in
      expect st RPAREN;
      Expr.Singleton e)
  | GET, _ ->
    advance st;
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    Expr.Get e
  | DEDUP, _ ->
    advance st;
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    Expr.Dedup e
  | SUMBY, _ ->
    advance st;
    expect st LPAREN;
    let keys = parse_ident_list st in
    expect st SEMI;
    let values = parse_ident_list st in
    expect st RPAREN;
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    Expr.SumBy { input = e; keys; values }
  | GROUPBY, _ ->
    advance st;
    expect st LPAREN;
    let keys = parse_ident_list st in
    let group_attr =
      match peek st with
      | SEMI, _ ->
        advance st;
        ident st
      | _ -> "group"
    in
    expect st RPAREN;
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    Expr.GroupBy { input = e; keys; group_attr }
  | EMPTY, _ ->
    advance st;
    expect st LPAREN;
    let t = parse_type st in
    expect st RPAREN;
    Expr.Empty t
  | t, _ -> error st "unexpected %s" (token_to_string t)

(* ------------------------------------------------------------------ *)
(* Entry points *)

let expr_of_string (src : string) : Expr.t =
  let st = { toks = tokenize src } in
  let e = parse_expr st in
  expect st EOF;
  e

(** A program is either a single expression, or assignments
    [x <- expr ;]+ (the last assignment is the result). *)
let assignments_of_string (src : string) : (string * Expr.t) list =
  let st = { toks = tokenize src } in
  match st.toks with
  | (IDENT _, _) :: (LARROW, _) :: _ ->
    let rec go acc =
      match peek st with
      | EOF, _ -> List.rev acc
      | _ ->
        let x = ident st in
        expect st LARROW;
        let e = parse_expr st in
        (match peek st with SEMI, _ -> advance st | _ -> ());
        go ((x, e) :: acc)
    in
    go []
  | _ ->
    let e = parse_expr st in
    expect st EOF;
    [ ("Q", e) ]

let program_of_string ~inputs (src : string) : Program.t =
  Program.make ~inputs (assignments_of_string src)

(* ------------------------------------------------------------------ *)
(* Rendering expressions back to parseable source text (inverse of
   [expr_of_string] up to semantics; validated by a roundtrip property in
   the test suite). Only label-free NRC can be rendered. *)

let rec type_to_source (t : Types.t) : string =
  match t with
  | Types.TScalar s -> Types.scalar_to_string s
  | Types.TBag inner -> Printf.sprintf "bag(%s)" (type_to_source inner)
  | Types.TTuple fields ->
    Printf.sprintf "tuple(%s)"
      (String.concat ", "
         (List.map (fun (n, ft) -> Printf.sprintf "%s: %s" n (type_to_source ft)) fields))
  | Types.TLabel | Types.TDict _ ->
    invalid_arg "type_to_source: shredding types have no surface syntax"

let rec to_source (e : Expr.t) : string =
  match e with
  | Expr.Const (Expr.CInt i) -> string_of_int i
  | Expr.Const (Expr.CReal r) ->
    let s = Printf.sprintf "%.12g" r in
    if String.contains s '.' || String.contains s 'e' then
      (* the lexer only accepts d.d float syntax *)
      if String.contains s 'e' then Printf.sprintf "(%s * 1.0)" s else s
    else s ^ ".0"
  | Expr.Const (Expr.CString s) -> Printf.sprintf "%S" s
  | Expr.Const (Expr.CBool b) -> string_of_bool b
  | Expr.Const (Expr.CDate d) -> Printf.sprintf "@%d" d
  | Expr.Var x -> x
  | Expr.Proj (e1, a) -> Printf.sprintf "%s.%s" (atom e1) a
  | Expr.Record [] -> "()"
  | Expr.Record fields ->
    Printf.sprintf "(%s)"
      (String.concat ", "
         (List.map (fun (n, x) -> Printf.sprintf "%s := %s" n (to_source x)) fields))
  | Expr.Empty t -> Printf.sprintf "empty(%s)" (type_to_source t)
  | Expr.Singleton (Expr.Record fields) when fields <> [] ->
    Printf.sprintf "sng(%s)"
      (String.concat ", "
         (List.map (fun (n, x) -> Printf.sprintf "%s := %s" n (to_source x)) fields))
  | Expr.Singleton e1 -> Printf.sprintf "sng(%s)" (to_source e1)
  | Expr.Get e1 -> Printf.sprintf "get(%s)" (to_source e1)
  | Expr.ForUnion (x, e1, e2) ->
    Printf.sprintf "for %s in %s union %s" x (atom e1) (to_source e2)
  | Expr.Union (a, b) ->
    (* ++ lives at the additive level: binder forms need parentheses *)
    Printf.sprintf "(%s ++ %s)" (operand a) (operand b)
  | Expr.Let (x, e1, e2) ->
    Printf.sprintf "let %s := %s in %s" x (atom e1) (to_source e2)
  | Expr.Prim (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_source a) (Expr.prim_to_string op) (to_source b)
  | Expr.Cmp (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_source a) (Expr.cmp_to_string op) (to_source b)
  | Expr.Logic (Expr.And, a, b) ->
    Printf.sprintf "(%s && %s)" (to_source a) (to_source b)
  | Expr.Logic (Expr.Or, a, b) ->
    Printf.sprintf "(%s || %s)" (to_source a) (to_source b)
  | Expr.Not a -> Printf.sprintf "not %s" (atom a)
  | Expr.If (c, t, None) ->
    Printf.sprintf "if %s then %s" (to_source c) (to_source t)
  | Expr.If (c, t, Some e2) ->
    Printf.sprintf "if %s then (%s) else (%s)" (to_source c) (to_source t)
      (to_source e2)
  | Expr.Dedup e1 -> Printf.sprintf "dedup(%s)" (to_source e1)
  | Expr.GroupBy { input; keys; group_attr } ->
    Printf.sprintf "groupBy(%s; %s)(%s)" (String.concat ", " keys) group_attr
      (to_source input)
  | Expr.SumBy { input; keys; values } ->
    Printf.sprintf "sumBy(%s; %s)(%s)" (String.concat ", " keys)
      (String.concat ", " values) (to_source input)
  | Expr.NewLabel _ | Expr.MatchLabel _ | Expr.Lookup _ | Expr.MatLookup _
  | Expr.Lambda _ | Expr.DictTreeUnion _ ->
    invalid_arg "to_source: shredding constructs have no surface syntax"

and operand e =
  match e with
  | Expr.ForUnion _ | Expr.If _ | Expr.Let _ -> Printf.sprintf "(%s)" (to_source e)
  | _ -> to_source e

and atom e =
  match e with
  | Expr.Var _ | Expr.Proj _ | Expr.Const _ | Expr.Singleton _ | Expr.Get _
  | Expr.Dedup _ | Expr.GroupBy _ | Expr.SumBy _ | Expr.Empty _ | Expr.Record _
    ->
    to_source e
  | _ -> Printf.sprintf "(%s)" (to_source e)

let program_to_source (p : Program.t) : string =
  String.concat "\n"
    (List.map
       (fun { Program.target; body } ->
         Printf.sprintf "%s <- %s;" target (to_source body))
       p.Program.assignments)
