(** Reference interpreter for NRC and for the lambda-free fragment of
    NRC^{Lbl+lambda} that materialization produces. This is the semantic
    oracle against which the unnesting, shredding and distributed execution
    routes are tested.

    [Lambda], [Lookup] (symbolic) and [DictTreeUnion] are intermediate-only
    constructs of the symbolic shredding phase and are rejected here: they
    are eliminated by materialization before any program is run. *)

exception Eval_error of string

let error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

module Env = Map.Make (String)

type env = Value.t Env.t

let env_of_list l : env =
  List.fold_left (fun m (x, v) -> Env.add x v m) Env.empty l

let eval_prim op v1 v2 =
  let open Value in
  match op, v1, v2 with
  | Expr.Add, Int a, Int b -> Int (a + b)
  | Expr.Sub, Int a, Int b -> Int (a - b)
  | Expr.Mul, Int a, Int b -> Int (a * b)
  | Expr.Div, Int a, Int b -> if b = 0 then Int 0 else Int (a / b)
  | Expr.Add, _, _ -> Real (as_real v1 +. as_real v2)
  | Expr.Sub, _, _ -> Real (as_real v1 -. as_real v2)
  | Expr.Mul, _, _ -> Real (as_real v1 *. as_real v2)
  | Expr.Div, _, _ ->
    let d = as_real v2 in
    if d = 0. then Real 0. else Real (as_real v1 /. d)

let eval_cmp op v1 v2 =
  let c = Value.compare v1 v2 in
  let r =
    match op with
    | Expr.Eq -> c = 0
    | Expr.Ne -> c <> 0
    | Expr.Lt -> c < 0
    | Expr.Le -> c <= 0
    | Expr.Gt -> c > 0
    | Expr.Ge -> c >= 0
  in
  Value.Bool r

(* Grouping helper shared by groupBy/sumBy: returns groups in first-seen key
   order for determinism. *)
let group_rows ~keys rows =
  let tbl : (Value.t list, Value.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let kvs = List.map (fun k -> Value.field row k) keys in
      match Hashtbl.find_opt tbl kvs with
      | Some cell -> cell := row :: !cell
      | None ->
        Hashtbl.add tbl kvs (ref [ row ]);
        order := kvs :: !order)
    rows;
  List.rev_map
    (fun kvs -> (kvs, List.rev !(Hashtbl.find tbl kvs)))
    !order
  |> List.rev

let add_values a b =
  match a, b with
  | Value.Int x, Value.Int y -> Value.Int (x + y)
  | _ -> Value.Real (Value.as_real a +. Value.as_real b)

let rec eval (env : env) (e : Expr.t) : Value.t =
  match e with
  | Expr.Const c -> Expr.const_value c
  | Expr.Var x -> (
    match Env.find_opt x env with
    | Some v -> v
    | None -> error "unbound variable %s" x)
  | Expr.Proj (e1, a) -> Value.field (eval env e1) a
  | Expr.Record fields ->
    Value.Tuple (List.map (fun (n, x) -> (n, eval env x)) fields)
  | Expr.Empty _ -> Value.Bag []
  | Expr.Singleton e1 -> Value.Bag [ eval env e1 ]
  | Expr.Get e1 -> (
    match eval env e1 with
    | Value.Bag [ v ] -> v
    | Value.Bag items -> (
      (* default value on non-singleton input; we use the element type
         reconstructed from a witness when available *)
      match items with
      | [] -> Value.Null
      | w :: _ -> Value.default_of_type (Value.type_of w))
    | v -> error "get on non-bag %a" Value.pp v)
  | Expr.ForUnion (x, e1, e2) ->
    let items = Value.bag_items (eval env e1) in
    Value.Bag
      (List.concat_map
         (fun item -> Value.bag_items (eval (Env.add x item env) e2))
         items)
  | Expr.Union (e1, e2) ->
    Value.Bag (Value.bag_items (eval env e1) @ Value.bag_items (eval env e2))
  | Expr.Let (x, e1, e2) -> eval (Env.add x (eval env e1) env) e2
  | Expr.Prim (op, e1, e2) -> eval_prim op (eval env e1) (eval env e2)
  | Expr.Cmp (op, e1, e2) -> eval_cmp op (eval env e1) (eval env e2)
  | Expr.Logic (Expr.And, e1, e2) ->
    if Value.as_bool (eval env e1) then eval env e2 else Value.Bool false
  | Expr.Logic (Expr.Or, e1, e2) ->
    if Value.as_bool (eval env e1) then Value.Bool true else eval env e2
  | Expr.Not e1 -> Value.Bool (not (Value.as_bool (eval env e1)))
  | Expr.If (c, e1, e2_opt) ->
    if Value.as_bool (eval env c) then eval env e1
    else (match e2_opt with Some e2 -> eval env e2 | None -> Value.Bag [])
  | Expr.Dedup e1 -> Value.Bag (Value.dedup (Value.bag_items (eval env e1)))
  | Expr.GroupBy { input; keys; group_attr } ->
    let rows = Value.bag_items (eval env input) in
    let groups = group_rows ~keys rows in
    Value.Bag
      (List.map
         (fun (kvs, members) ->
           let rest row =
             match row with
             | Value.Tuple fields ->
               Value.Tuple (List.filter (fun (n, _) -> not (List.mem n keys)) fields)
             | _ -> error "groupBy over non-tuple rows"
           in
           Value.Tuple
             (List.combine keys kvs
             @ [ (group_attr, Value.Bag (List.map rest members)) ]))
         groups)
  | Expr.SumBy { input; keys; values } ->
    let rows = Value.bag_items (eval env input) in
    let groups = group_rows ~keys rows in
    Value.Bag
      (List.map
         (fun (kvs, members) ->
           let sums =
             List.map
               (fun v ->
                 let total =
                   List.fold_left
                     (fun acc row -> add_values acc (Value.field row v))
                     (Value.Int 0) members
                 in
                 (v, total))
               values
           in
           Value.Tuple (List.combine keys kvs @ sums))
         groups)
  | Expr.NewLabel { site; args } ->
    Value.Label { site; args = List.map (eval env) args }
  | Expr.MatchLabel { label; site; params; body } -> (
    match eval env label with
    | Value.Label l when l.site = site && List.length l.args = List.length params ->
      let env' =
        List.fold_left2
          (fun m (p, _) v -> Env.add p v m)
          env params l.args
      in
      eval env' body
    | Value.Label _ -> Value.Bag []
    | v -> error "match on non-label %a" Value.pp v)
  | Expr.MatLookup (d, l) ->
    (* materialized dictionaries are flat bags of <label, f1, ..., fk> rows
       (Section 4, "dictionaries are represented the same as bags, with a
       label column"); lookup selects the rows of one label and strips the
       label column *)
    let lv = eval env l in
    let entries = Value.bag_items (eval env d) in
    let matching =
      List.filter_map
        (fun row ->
          match row with
          | Value.Tuple (("label", l0) :: fields) when Value.equal l0 lv ->
            Some (Value.Tuple fields)
          | Value.Tuple _ -> None
          | v -> error "MatLookup over non-tuple dictionary row %a" Value.pp v)
        entries
    in
    Value.Bag matching
  | Expr.Lookup _ -> error "symbolic Lookup cannot be evaluated (materialize first)"
  | Expr.Lambda _ -> error "lambda cannot be evaluated (materialize first)"
  | Expr.DictTreeUnion _ ->
    error "DictTreeUnion cannot be evaluated (materialize first)"

(** Evaluate a program: a sequence of assignments extending the environment,
    returning the final environment. *)
let eval_program (env : env) (assigns : (string * Expr.t) list) : env =
  List.fold_left (fun env (x, e) -> Env.add x (eval env e) env) env assigns
