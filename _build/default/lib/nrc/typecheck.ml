(** Type checker for NRC and NRC^{Lbl+lambda}.

    Implements the typing discipline of Figure 1 with the paper's
    restrictions: the input of [dedup] must be a flat bag, and [groupBy] /
    [sumBy] grouping attributes must be flat. [check_source] additionally
    rejects the shredding-extension constructs so that user-facing programs
    are plain NRC. *)

exception Type_error of string

let error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

module Env = Map.Make (String)

type env = Types.t Env.t

let env_of_list l : env =
  List.fold_left (fun m (x, t) -> Env.add x t m) Env.empty l

let numeric = function
  | Types.TScalar (TInt | TReal) -> true
  | _ -> false

let join_numeric a b =
  match a, b with
  | Types.TScalar TInt, Types.TScalar TInt -> Types.int_
  | _, _ -> Types.real

(** Bags may only contain scalars, labels, or tuples (Figure 1 restricts bag
    contents to flat types or tuples whose attributes may themselves be
    bags). *)
let check_bag_element = function
  | Types.TBag _ -> error "bags of bags are not allowed (Figure 1)"
  | Types.TDict _ -> error "bags of dictionaries are not allowed"
  | Types.TScalar _ | Types.TTuple _ | Types.TLabel -> ()

let rec infer (env : env) (e : Expr.t) : Types.t =
  match e with
  | Expr.Const c -> Expr.const_type c
  | Expr.Var x -> (
    match Env.find_opt x env with
    | Some t -> t
    | None -> error "unbound variable %s" x)
  | Expr.Proj (e1, a) -> (
    match infer env e1 with
    | Types.TTuple fields -> (
      match List.assoc_opt a fields with
      | Some t -> t
      | None -> error "tuple has no attribute %s" a)
    | t -> error "projection .%s on non-tuple type %a" a Types.pp t)
  | Expr.Record fields ->
    let seen = Hashtbl.create 8 in
    Types.TTuple
      (List.map
         (fun (n, x) ->
           if Hashtbl.mem seen n then error "duplicate attribute %s" n;
           Hashtbl.add seen n ();
           (n, infer env x))
         fields)
  | Expr.Empty elem_ty ->
    check_bag_element elem_ty;
    Types.TBag elem_ty
  | Expr.Singleton e1 ->
    let t = infer env e1 in
    check_bag_element t;
    Types.TBag t
  | Expr.Get e1 -> (
    match infer env e1 with
    | Types.TBag t -> t
    | t -> error "get on non-bag type %a" Types.pp t)
  | Expr.ForUnion (x, e1, e2) -> (
    match infer env e1 with
    | Types.TBag elem -> (
      match infer (Env.add x elem env) e2 with
      | Types.TBag _ as t -> t
      | t -> error "for body must have bag type, got %a" Types.pp t)
    | t -> error "for source must have bag type, got %a" Types.pp t)
  | Expr.Union (e1, e2) ->
    let t1 = infer env e1 and t2 = infer env e2 in
    if not (Types.is_bag t1) then error "union on non-bag %a" Types.pp t1;
    if not (Types.equal t1 t2) then
      error "union of different types %a vs %a" Types.pp t1 Types.pp t2;
    t1
  | Expr.Let (x, e1, e2) ->
    let t1 = infer env e1 in
    infer (Env.add x t1 env) e2
  | Expr.Prim (op, e1, e2) ->
    let t1 = infer env e1 and t2 = infer env e2 in
    if not (numeric t1) then
      error "%s on non-numeric %a" (Expr.prim_to_string op) Types.pp t1;
    if not (numeric t2) then
      error "%s on non-numeric %a" (Expr.prim_to_string op) Types.pp t2;
    join_numeric t1 t2
  | Expr.Cmp (op, e1, e2) ->
    let t1 = infer env e1 and t2 = infer env e2 in
    let comparable =
      match t1, t2 with
      | Types.TScalar (TInt | TReal), Types.TScalar (TInt | TReal) -> true
      | Types.TLabel, Types.TLabel -> op = Expr.Eq || op = Expr.Ne
      | _ -> Types.equal t1 t2 && Types.is_flat t1
    in
    if not comparable then
      error "cannot compare %a with %a" Types.pp t1 Types.pp t2;
    Types.bool_
  | Expr.Logic (_, e1, e2) ->
    let t1 = infer env e1 and t2 = infer env e2 in
    if not (Types.equal t1 Types.bool_ && Types.equal t2 Types.bool_) then
      error "boolean operator on non-boolean operands";
    Types.bool_
  | Expr.Not e1 ->
    if not (Types.equal (infer env e1) Types.bool_) then
      error "negation of non-boolean";
    Types.bool_
  | Expr.If (c, e1, e2_opt) -> (
    if not (Types.equal (infer env c) Types.bool_) then
      error "if condition must be boolean";
    let t1 = infer env e1 in
    match e2_opt with
    | Some e2 ->
      let t2 = infer env e2 in
      if not (Types.equal t1 t2) then
        error "if branches differ: %a vs %a" Types.pp t1 Types.pp t2;
      t1
    | None ->
      if not (Types.is_bag t1) then
        error "if-then without else must have bag type, got %a" Types.pp t1;
      t1)
  | Expr.Dedup e1 -> (
    match infer env e1 with
    | Types.TBag elem as t ->
      if not (Types.is_flat elem) then
        error "dedup input must be a flat bag (Section 2), got %a" Types.pp t;
      t
    | t -> error "dedup on non-bag %a" Types.pp t)
  | Expr.GroupBy { input; keys; group_attr } -> (
    match infer env input with
    | Types.TBag (Types.TTuple fields) ->
      let key_fields, rest = split_keys ~keys fields in
      if List.mem_assoc group_attr key_fields then
        error "group attribute %s collides with a key" group_attr;
      Types.TBag
        (Types.TTuple (key_fields @ [ (group_attr, Types.TBag (Types.TTuple rest)) ]))
    | t -> error "groupBy input must be a bag of tuples, got %a" Types.pp t)
  | Expr.SumBy { input; keys; values } -> (
    match infer env input with
    | Types.TBag (Types.TTuple fields) ->
      let key_fields, _ = split_keys ~keys fields in
      let value_fields =
        List.map
          (fun v ->
            match List.assoc_opt v fields with
            | None -> error "sumBy value attribute %s missing" v
            | Some t ->
              if not (numeric t) then
                error "sumBy value attribute %s is not numeric" v;
              (v, t))
          values
      in
      Types.TBag (Types.TTuple (key_fields @ value_fields))
    | t -> error "sumBy input must be a bag of tuples, got %a" Types.pp t)
  | Expr.NewLabel { args; _ } ->
    List.iter
      (fun a ->
        let t = infer env a in
        if not (Types.is_flat t) then
          error "NewLabel captures non-flat value of type %a" Types.pp t)
      args;
    Types.TLabel
  | Expr.MatchLabel { label; params; body; _ } ->
    if not (Types.equal (infer env label) Types.TLabel) then
      error "match subject must be a label";
    List.iter
      (fun (p, t) ->
        if not (Types.is_flat t) then
          error "label parameter %s has non-flat type %a" p Types.pp t)
      params;
    let env' =
      List.fold_left (fun m (p, t) -> Env.add p t m) env params
    in
    let t = infer env' body in
    if not (Types.is_bag t) then
      error "match body must have bag type, got %a" Types.pp t;
    t
  | Expr.Lookup (d, l) -> (
    if not (Types.equal (infer env l) Types.TLabel) then
      error "Lookup key must be a label";
    match infer env d with
    | Types.TDict t -> Types.TBag t
    | t -> error "Lookup on non-dictionary %a" Types.pp t)
  | Expr.MatLookup (d, l) -> (
    if not (Types.equal (infer env l) Types.TLabel) then
      error "MatLookup key must be a label";
    match infer env d with
    | Types.TBag (Types.TTuple (("label", Types.TLabel) :: fields)) ->
      Types.TBag (Types.TTuple fields)
    | t ->
      error "MatLookup input must be a flat dictionary (label column first), got %a"
        Types.pp t)
  | Expr.Lambda { param; body } ->
    let t = infer (Env.add param Types.TLabel env) body in
    Types.TDict (match t with Types.TBag e -> e | other -> other)
  | Expr.DictTreeUnion (e1, e2) ->
    let t1 = infer env e1 and t2 = infer env e2 in
    if not (Types.equal t1 t2) then
      error "DictTreeUnion of different types %a vs %a" Types.pp t1 Types.pp t2;
    t1

and split_keys ~keys fields =
  let key_fields =
    List.map
      (fun k ->
        match List.assoc_opt k fields with
        | None -> error "grouping attribute %s missing from input" k
        | Some t ->
          if not (Types.is_flat t) then
            error "grouping attribute %s must be flat (Section 2)" k;
          (k, t))
      keys
  in
  let rest = List.filter (fun (n, _) -> not (List.mem n keys)) fields in
  (key_fields, rest)

(** Reject shredding-extension constructs in user-facing source programs. *)
let rec check_label_free (e : Expr.t) =
  match e with
  | Expr.NewLabel _ | Expr.MatchLabel _ | Expr.Lookup _ | Expr.MatLookup _
  | Expr.Lambda _ | Expr.DictTreeUnion _ ->
    error "source NRC programs may not use shredding constructs: %a" Expr.pp e
  | _ ->
    ignore
      (Expr.map_children
         (fun sub ->
           check_label_free sub;
           sub)
         e)

let check_source (env : env) (e : Expr.t) : Types.t =
  check_label_free e;
  infer env e
