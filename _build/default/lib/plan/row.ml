(** Rows flowing through plan operators: flat records mapping column names to
    values. Columns typically hold whole generator variables (tuples), added
    index columns (ints), or nested bags produced by {!Op.NestBag}. *)

type t = (string * Nrc.Value.t) list

let empty : t = []

let get (row : t) col : Nrc.Value.t =
  match List.assoc_opt col row with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Row.get: no column %S" col)

let get_opt (row : t) col = List.assoc_opt col row
let add col v (row : t) : t = (col, v) :: List.remove_assoc col row
let columns (row : t) = List.map fst row

let byte_size (row : t) =
  List.fold_left (fun acc (_, v) -> acc + 8 + Nrc.Value.byte_size v) 0 row

(** Restrict to the given columns, in that order; missing columns are Null
    (used to align union branches and to nullify outer-join sides). *)
let restrict cols (row : t) : t =
  List.map
    (fun c ->
      match List.assoc_opt c row with
      | Some v -> (c, v)
      | None -> (c, Nrc.Value.Null))
    cols

let nulls cols : t = List.map (fun c -> (c, Nrc.Value.Null)) cols

let pp ppf (row : t) =
  Fmt.pf ppf "@[<h>[%a]@]"
    (Fmt.list ~sep:(Fmt.any "; ")
       (fun ppf (c, v) -> Fmt.pf ppf "%s=%a" c Nrc.Value.pp v))
    row
