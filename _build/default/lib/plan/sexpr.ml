(** Scalar expressions evaluated per row inside plan operators (selections,
    projections, join keys, nest keys and aggregands).

    Null semantics mirror the paper's outer operators: projecting a field of
    a Null tuple yields Null; any primitive or comparison with a Null operand
    yields Null, which selections treat as false and {!Op.NestSum} casts
    to 0. *)

type t =
  | Col of string list (* column name followed by tuple-field path *)
  | Const of Nrc.Value.t
  | Prim of Nrc.Expr.prim * t * t
  | Cmp of Nrc.Expr.cmp * t * t
  | Logic of Nrc.Expr.logic * t * t
  | Not of t
  | IsNull of t
  | MkLabel of { site : int; args : t list }
  | LabelArg of t * int (* extract i-th captured value of a label *)
  | IsLabelSite of t * int (* true iff the label was created by this site *)
  | MkTuple of (string * t) list (* build a tuple value (for nested columns) *)

let col c = Col [ c ]
let path c fields = Col (c :: fields)

let rec eval (row : Row.t) (e : t) : Nrc.Value.t =
  match e with
  | Col [] -> invalid_arg "Sexpr.eval: empty path"
  | Col (c :: fields) ->
    List.fold_left
      (fun v f -> match v with Nrc.Value.Null -> Nrc.Value.Null | _ -> Nrc.Value.field v f)
      (Row.get row c) fields
  | Const v -> v
  | Prim (op, a, b) -> (
    match eval row a, eval row b with
    | Nrc.Value.Null, _ | _, Nrc.Value.Null -> Nrc.Value.Null
    | va, vb -> Nrc.Eval.eval_prim op va vb)
  | Cmp (op, a, b) -> (
    match eval row a, eval row b with
    | Nrc.Value.Null, _ | _, Nrc.Value.Null -> Nrc.Value.Null
    | va, vb -> Nrc.Eval.eval_cmp op va vb)
  | Logic (op, a, b) -> (
    match eval row a, eval row b with
    | Nrc.Value.Null, _ | _, Nrc.Value.Null -> Nrc.Value.Null
    | Nrc.Value.Bool x, Nrc.Value.Bool y ->
      Nrc.Value.Bool (match op with Nrc.Expr.And -> x && y | Nrc.Expr.Or -> x || y)
    | _ -> invalid_arg "Sexpr.eval: logic on non-boolean")
  | Not a -> (
    match eval row a with
    | Nrc.Value.Null -> Nrc.Value.Null
    | Nrc.Value.Bool b -> Nrc.Value.Bool (not b)
    | _ -> invalid_arg "Sexpr.eval: not on non-boolean")
  | IsNull a -> Nrc.Value.Bool (Nrc.Value.is_null (eval row a))
  | MkLabel { site; args } ->
    Nrc.Value.Label { site; args = List.map (eval row) args }
  | LabelArg (a, i) -> (
    match eval row a with
    | Nrc.Value.Null -> Nrc.Value.Null
    | Nrc.Value.Label { args; _ } -> (
      (* out-of-bounds yields Null: rows from a foreign-site label are
         filtered by the accompanying IsLabelSite guard *)
      match List.nth_opt args i with Some v -> v | None -> Nrc.Value.Null)
    | v ->
      invalid_arg
        (Printf.sprintf "Sexpr.eval: LabelArg on non-label %s"
           (Nrc.Value.to_string v)))
  | IsLabelSite (a, site) -> (
    match eval row a with
    | Nrc.Value.Null -> Nrc.Value.Null
    | Nrc.Value.Label { site = s; _ } -> Nrc.Value.Bool (s = site)
    | _ -> Nrc.Value.Bool false)
  | MkTuple fields ->
    Nrc.Value.Tuple (List.map (fun (n, x) -> (n, eval row x)) fields)

(** Truthiness for selections: Null counts as false (outer-join semantics). *)
let eval_pred row e =
  match eval row e with
  | Nrc.Value.Bool b -> b
  | Nrc.Value.Null -> false
  | v ->
    invalid_arg
      (Printf.sprintf "Sexpr.eval_pred: non-boolean %s" (Nrc.Value.to_string v))

(** Columns referenced by an expression (for pushdown analyses). *)
let rec cols_used (e : t) : string list =
  match e with
  | Col (c :: _) -> [ c ]
  | Col [] -> []
  | Const _ -> []
  | Prim (_, a, b) | Cmp (_, a, b) | Logic (_, a, b) ->
    cols_used a @ cols_used b
  | Not a | IsNull a | LabelArg (a, _) | IsLabelSite (a, _) -> cols_used a
  | MkLabel { args; _ } -> List.concat_map cols_used args
  | MkTuple fields -> List.concat_map (fun (_, x) -> cols_used x) fields

let rec pp ppf = function
  | Col p -> Fmt.string ppf (String.concat "." p)
  | Const v -> Nrc.Value.pp ppf v
  | Prim (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp a (Nrc.Expr.prim_to_string op) pp b
  | Cmp (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp a (Nrc.Expr.cmp_to_string op) pp b
  | Logic (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp a (Nrc.Expr.logic_to_string op) pp b
  | Not a -> Fmt.pf ppf "\u{00AC}%a" pp a
  | IsNull a -> Fmt.pf ppf "isnull(%a)" pp a
  | MkLabel { site; args } ->
    Fmt.pf ppf "NewLabel_%d(%a)" site (Fmt.list ~sep:Fmt.comma pp) args
  | LabelArg (a, i) -> Fmt.pf ppf "%a#%d" pp a i
  | IsLabelSite (a, site) -> Fmt.pf ppf "site(%a)==%d" pp a site
  | MkTuple fields ->
    Fmt.pf ppf "\u{27E8}%a\u{27E9}"
      (Fmt.list ~sep:Fmt.comma (fun ppf (n, x) -> Fmt.pf ppf "%s:%a" n pp x))
      fields
