(** Rows flowing through plan operators: flat records mapping column names
    to values. Columns typically hold whole generator variables (tuples),
    index columns (ints), or nested bags produced by {!Op.NestBag}. *)

type t = (string * Nrc.Value.t) list

val empty : t

val get : t -> string -> Nrc.Value.t
(** @raise Invalid_argument on missing columns. *)

val get_opt : t -> string -> Nrc.Value.t option
val add : string -> Nrc.Value.t -> t -> t
val columns : t -> string list

val byte_size : t -> int
(** Used by the executor's shuffle and memory accounting. *)

val restrict : string list -> t -> t
(** Project to the given columns in order; missing ones become [Null]
    (aligns union branches and pads outer-join sides). *)

val nulls : string list -> t
val pp : Format.formatter -> t -> unit
