(** Single-node plan interpreter: the oracle used to validate the unnesting
    translation against the NRC reference semantics. The distributed
    executor implements the same operators over partitioned data and reuses
    the nest-group semantics exported here. *)

type env = (string, Nrc.Value.t list) Hashtbl.t
(** Named datasets: bag items per input name. *)

val env_of_list : (string * Nrc.Value.t) list -> env
val lookup : env -> string -> Nrc.Value.t list

val group_by_keys :
  (string * Sexpr.t) list ->
  Row.t list ->
  (Nrc.Value.t list * Row.t list) list
(** Group rows by evaluated key tuples, first-seen order. *)

val sum_agg : Sexpr.t -> Row.t list -> Nrc.Value.t
(** Sum an aggregand over rows, skipping Nulls (contributes 0). *)

val nest_bag_rows :
  keys:(string * Sexpr.t) list ->
  agg_keys:(string * Sexpr.t) list ->
  item:Sexpr.t ->
  presence:Sexpr.t ->
  out:string ->
  Row.t list ->
  Row.t list
(** Gamma-union over an in-memory group of rows; shared with the
    distributed executor (applied per partition after key shuffling). *)

val nest_sum_rows :
  keys:(string * Sexpr.t) list ->
  agg_keys:(string * Sexpr.t) list ->
  aggs:(string * Sexpr.t) list ->
  presence:Sexpr.t ->
  Row.t list ->
  Row.t list
(** Gamma-plus over an in-memory group of rows. *)

val drop_path : Row.t -> string list -> Row.t
(** Remove the consumed bag attribute from the source column of a dropping
    unnest (see {!Op.Unnest}). *)

val eval : env -> Op.t -> Row.t list

val eval_to_bag : env -> Op.t -> Nrc.Value.t
(** Package result rows as a bag of tuples named by the plan's columns; the
    reserved single column ["item"] is unwrapped to the bare element. *)
