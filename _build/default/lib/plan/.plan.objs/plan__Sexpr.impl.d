lib/plan/sexpr.ml: Fmt List Nrc Printf Row String
