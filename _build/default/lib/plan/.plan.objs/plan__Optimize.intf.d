lib/plan/optimize.mli: Op
