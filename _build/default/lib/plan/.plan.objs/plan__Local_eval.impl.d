lib/plan/local_eval.ml: Hashtbl List Nrc Op Printf Row Sexpr
