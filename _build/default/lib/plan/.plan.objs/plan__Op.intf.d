lib/plan/op.mli: Format Sexpr
