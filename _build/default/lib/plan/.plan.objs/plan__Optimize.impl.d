lib/plan/optimize.ml: List Map Nrc Op Option Printf Set Sexpr String
