lib/plan/row.mli: Format Nrc
