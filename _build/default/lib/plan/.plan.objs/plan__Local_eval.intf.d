lib/plan/local_eval.mli: Hashtbl Nrc Op Row Sexpr
