lib/plan/sexpr.mli: Format Nrc Row
