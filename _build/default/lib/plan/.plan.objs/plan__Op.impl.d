lib/plan/op.ml: Fmt List Sexpr String
