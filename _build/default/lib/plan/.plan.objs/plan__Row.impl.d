lib/plan/row.ml: Fmt List Nrc Printf
