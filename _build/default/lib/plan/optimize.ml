(** Plan optimizations of Section 3: selection pushdown, column pruning
    (projection pushdown to scans), and aggregation pushdown past joins when
    the join key of the other side is known to be unique. The join+nest ->
    cogroup fusion is a physical rewrite and lives in the code generator.

    All rewrites are semantics-preserving and are validated against
    {!Local_eval} in the test suite. *)

type config = {
  push_selects : bool;
  prune_columns : bool;
  push_aggs : bool;
  unique_keys : (string * string list) list;
      (** [(input, fields)]: the named input is keyed uniquely by [fields]
          (e.g. [("Part", ["pid"])]); licenses aggregation pushdown across a
          join against that input *)
}

let default =
  { push_selects = true; prune_columns = true; push_aggs = true; unique_keys = [] }

let none =
  { push_selects = false; prune_columns = false; push_aggs = false; unique_keys = [] }

(* ------------------------------------------------------------------ *)
(* Demand analysis for column pruning *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)

type demand = Whole | Fields of SSet.t

let join_demand a b =
  match a, b with
  | Whole, _ | _, Whole -> Whole
  | Fields x, Fields y -> Fields (SSet.union x y)

let demand_of_use = function
  | [] -> Whole
  | f :: _ -> Fields (SSet.singleton f)

(* (col, field-path) uses of an sexpr *)
let rec uses (e : Sexpr.t) : (string * string list) list =
  match e with
  | Sexpr.Col (c :: rest) -> [ (c, rest) ]
  | Sexpr.Col [] -> []
  | Sexpr.Const _ -> []
  | Sexpr.Prim (_, a, b) | Sexpr.Cmp (_, a, b) | Sexpr.Logic (_, a, b) ->
    uses a @ uses b
  | Sexpr.Not a | Sexpr.IsNull a | Sexpr.LabelArg (a, _) | Sexpr.IsLabelSite (a, _) ->
    uses a
  | Sexpr.MkLabel { args; _ } -> List.concat_map uses args
  | Sexpr.MkTuple fields -> List.concat_map (fun (_, x) -> uses x) fields

let add_uses demands exprs =
  List.fold_left
    (fun d e ->
      List.fold_left
        (fun d (c, path) ->
          SMap.update c
            (fun cur ->
              Some
                (join_demand
                   (Option.value cur ~default:(Fields SSet.empty))
                   (demand_of_use path)))
            d)
        d (uses e))
    demands exprs

let whole_demands cols =
  List.fold_left (fun d c -> SMap.add c Whole d) SMap.empty cols

(** Rewrite the plan, inserting narrowing projections directly above scans
    whose binder is only ever used through a known set of fields. *)
let rec prune (demands : demand SMap.t) (op : Op.t) : Op.t =
  match op with
  | Op.Nil _ | Op.UnitRow -> op
  | Op.Scan { binder; _ } -> (
    match SMap.find_opt binder demands with
    | Some (Fields fs) when not (SSet.is_empty fs) ->
      let fields =
        List.map (fun f -> (f, Sexpr.Col [ binder; f ])) (SSet.elements fs)
      in
      Op.Project ([ (binder, Sexpr.MkTuple fields) ], op)
    | _ -> op)
  | Op.Select (p, child) -> Op.Select (p, prune (add_uses demands [ p ]) child)
  | Op.Project (fields, child) ->
    let child_demands = add_uses SMap.empty (List.map snd fields) in
    Op.Project (fields, prune child_demands child)
  | Op.Join { left; right; lkey; rkey; kind } ->
    let lcols = SSet.of_list (Op.columns left) in
    let d = add_uses demands (lkey @ rkey) in
    let dl = SMap.filter (fun c _ -> SSet.mem c lcols) d in
    let dr = SMap.filter (fun c _ -> not (SSet.mem c lcols)) d in
    Op.Join { left = prune dl left; right = prune dr right; lkey; rkey; kind }
  | Op.Product (left, right) ->
    let lcols = SSet.of_list (Op.columns left) in
    let dl = SMap.filter (fun c _ -> SSet.mem c lcols) demands in
    let dr = SMap.filter (fun c _ -> not (SSet.mem c lcols)) demands in
    Op.Product (prune dl left, prune dr right)
  | Op.Unnest { input; path; binder; outer; drop } ->
    let d = SMap.remove binder demands in
    (* the consumed bag attribute can be projected away (the paper's mu
       semantics) when nothing above still demands it *)
    let drop =
      drop
      ||
      match path with
      | [ col ] -> (
        match SMap.find_opt col d with None -> true | Some _ -> false)
      | [ col; attr ] -> (
        match SMap.find_opt col d with
        | None -> true
        | Some Whole -> false
        | Some (Fields fs) -> not (SSet.mem attr fs))
      | _ -> false
    in
    let d = add_uses d [ Sexpr.Col path ] in
    Op.Unnest { input = prune d input; path; binder; outer; drop }
  | Op.AddIndex { input; col } ->
    Op.AddIndex { input = prune (SMap.remove col demands) input; col }
  | Op.NestBag { input; keys; agg_keys; item; presence; out } ->
    let exprs =
      List.map snd keys @ List.map snd agg_keys @ [ item; presence ]
    in
    Op.NestBag
      { input = prune (add_uses SMap.empty exprs) input;
        keys; agg_keys; item; presence; out }
  | Op.NestSum { input; keys; agg_keys; aggs; presence } ->
    let exprs =
      List.map snd keys @ List.map snd agg_keys @ List.map snd aggs
      @ [ presence ]
    in
    Op.NestSum
      { input = prune (add_uses SMap.empty exprs) input;
        keys; agg_keys; aggs; presence }
  | Op.Dedup child ->
    (* pruning through dedup would change multiplicities downstream *)
    Op.Dedup (prune (whole_demands (Op.columns child)) child)
  | Op.UnionAll (left, right) ->
    Op.UnionAll (prune demands left, prune demands right)
  | Op.BagToDict { input; label } ->
    Op.BagToDict { input = prune (add_uses demands [ label ]) input; label }

let prune_columns op = prune (whole_demands (Op.columns op)) op

(* ------------------------------------------------------------------ *)
(* Selection pushdown *)

let cols_subset exprs cols =
  let cs = SSet.of_list cols in
  List.for_all
    (fun e -> List.for_all (fun c -> SSet.mem c cs) (Sexpr.cols_used e))
    exprs

let rec push_select (op : Op.t) : Op.t =
  match op with
  | Op.Select (p, Op.Join ({ left; right; kind; _ } as j)) ->
    if cols_subset [ p ] (Op.columns left) then
      push_select (Op.Join { j with left = Op.Select (p, left) })
    else if kind = Op.Inner && cols_subset [ p ] (Op.columns right) then
      push_select (Op.Join { j with right = Op.Select (p, right) })
    else Op.Select (p, push_select (Op.Join j))
  | Op.Select (p, Op.Product (l, r)) ->
    if cols_subset [ p ] (Op.columns l) then
      push_select (Op.Product (Op.Select (p, l), r))
    else if cols_subset [ p ] (Op.columns r) then
      push_select (Op.Product (l, Op.Select (p, r)))
    else Op.Select (p, push_select (Op.Product (l, r)))
  | Op.Select (p, Op.Unnest ({ input; binder; _ } as u)) ->
    if (not (List.mem binder (Sexpr.cols_used p))) && not u.outer then
      push_select (Op.Unnest { u with input = Op.Select (p, input) })
    else Op.Select (p, push_select (Op.Unnest u))
  | Op.Select (p, Op.Select (q, child)) ->
    push_select (Op.Select (Sexpr.Logic (Nrc.Expr.And, p, q), child))
  (* recurse *)
  | Op.Nil _ | Op.UnitRow | Op.Scan _ -> op
  | Op.Select (p, c) -> Op.Select (p, push_select c)
  | Op.Project (f, c) -> Op.Project (f, push_select c)
  | Op.Join j ->
    Op.Join { j with left = push_select j.left; right = push_select j.right }
  | Op.Product (l, r) -> Op.Product (push_select l, push_select r)
  | Op.Unnest u -> Op.Unnest { u with input = push_select u.input }
  | Op.AddIndex a -> Op.AddIndex { a with input = push_select a.input }
  | Op.NestBag n -> Op.NestBag { n with input = push_select n.input }
  | Op.NestSum n -> Op.NestSum { n with input = push_select n.input }
  | Op.Dedup c -> Op.Dedup (push_select c)
  | Op.UnionAll (l, r) -> Op.UnionAll (push_select l, push_select r)
  | Op.BagToDict b -> Op.BagToDict { b with input = push_select b.input }

(* ------------------------------------------------------------------ *)
(* Aggregation pushdown.

   Gamma-plus over Join(left, right) where the single aggregand factors as
   lv * rv (or is entirely left-sided), every key expression is
   single-sided, the left join key is left-sided, the presence predicate is
   right-sided, and the right join key is unique: pre-aggregate lv on the
   left grouped by (left-sided keys + join key), join, then sum
   partial * rv. This is the rewrite of Example 2 ("push the sum aggregate
   past the join to compute partial sums of qty values"). Uniqueness of the
   right key guarantees the pre-aggregated groups are not duplicated by the
   join. *)

let scan_of_unique unique_keys (right : Op.t) (rkey : Sexpr.t list) : bool =
  let rec base = function
    | Op.Scan { input; binder } -> Some (input, binder)
    | Op.Select (_, c) -> base c
    | Op.Project ([ (b, Sexpr.MkTuple _) ], c) -> (
      match base c with Some (i, b') when b = b' -> Some (i, b') | _ -> None)
    | _ -> None
  in
  match base right with
  | None -> false
  | Some (input, binder) -> (
    match List.assoc_opt input unique_keys with
    | None -> false
    | Some ufields ->
      let joined_fields =
        List.filter_map
          (function Sexpr.Col [ b; f ] when b = binder -> Some f | _ -> None)
          rkey
      in
      List.length joined_fields = List.length rkey
      && List.for_all (fun f -> List.mem f joined_fields) ufields)

(* decompose a conjunction into its conjuncts *)
let rec conjuncts = function
  | Sexpr.Logic (Nrc.Expr.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conj_of = function
  | [] -> Sexpr.Const (Nrc.Value.Bool true)
  | c :: cs -> List.fold_left (fun a b -> Sexpr.Logic (Nrc.Expr.And, a, b)) c cs

let rec push_agg unique_keys (op : Op.t) : Op.t =
  match op with
  | Op.NestSum
      { input = Op.Join { left; right; lkey; rkey; kind };
        keys; agg_keys; aggs = [ (out, value) ]; presence }
    when scan_of_unique unique_keys right rkey ->
    let lcols = Op.columns left in
    let left_sided e = cols_subset [ e ] lcols in
    let right_sided e = cols_subset [ e ] (Op.columns right) in
    (* A left-sided conjunct of the form not(isnull(x)) is implied by the
       right-sided presence whenever some join key references x: a Null x
       nulls the key, the (outer) join then cannot match, and the right side
       comes back Null. Such conjuncts may be dropped from the pushed
       aggregate. *)
    let implied_by_join = function
      | Sexpr.Not (Sexpr.IsNull (Sexpr.Col [ x ])) ->
        List.exists (fun k -> List.mem x (Sexpr.cols_used k)) lkey
      | _ -> false
    in
    let right_conjs, left_conjs =
      List.partition right_sided (conjuncts presence)
    in
    let presence_splittable = List.for_all implied_by_join left_conjs in
    let presence_right = conj_of right_conjs in
    let split_value =
      if left_sided value then Some (value, None)
      else
        match value with
        | Sexpr.Prim (Nrc.Expr.Mul, lv, rv) when left_sided lv && right_sided rv ->
          Some (lv, Some rv)
        | Sexpr.Prim (Nrc.Expr.Mul, rv, lv) when left_sided lv && right_sided rv ->
          Some (lv, Some rv)
        | _ -> None
    in
    let keys_ok =
      List.for_all (fun (_, e) -> left_sided e) keys
      && List.for_all (fun (_, e) -> left_sided e || right_sided e) agg_keys
    in
    (match split_value with
    | Some (lv, rv_opt)
      when keys_ok && List.for_all left_sided lkey && presence_splittable ->
      let partial = "partial%sum" in
      let left_aks = List.filter (fun (_, e) -> left_sided e) agg_keys in
      let jkeys = List.mapi (fun i e -> (Printf.sprintf "jk%%%d" i, e)) lkey in
      let pre =
        Op.NestSum
          { input = push_agg unique_keys left;
            keys = keys @ left_aks @ jkeys;
            agg_keys = [];
            aggs = [ (partial, lv) ];
            presence = Sexpr.Const (Nrc.Value.Bool true) }
      in
      let lkey' = List.map (fun (n, _) -> Sexpr.Col [ n ]) jkeys in
      let joined = Op.Join { left = pre; right; lkey = lkey'; rkey; kind } in
      let refresh (n, e) =
        if left_sided e then (n, Sexpr.Col [ n ]) else (n, e)
      in
      let value' =
        match rv_opt with
        | None -> Sexpr.Col [ partial ]
        | Some rv -> Sexpr.Prim (Nrc.Expr.Mul, Sexpr.Col [ partial ], rv)
      in
      Op.NestSum
        { input = joined;
          keys = List.map refresh keys;
          agg_keys = List.map refresh agg_keys;
          aggs = [ (out, value') ];
          presence = presence_right }
    | _ ->
      Op.NestSum
        { input = push_agg unique_keys (Op.Join { left; right; lkey; rkey; kind });
          keys; agg_keys; aggs = [ (out, value) ]; presence })
  (* recurse *)
  | Op.Nil _ | Op.UnitRow | Op.Scan _ -> op
  | Op.Select (p, c) -> Op.Select (p, push_agg unique_keys c)
  | Op.Project (f, c) -> Op.Project (f, push_agg unique_keys c)
  | Op.Join j ->
    Op.Join
      { j with
        left = push_agg unique_keys j.left;
        right = push_agg unique_keys j.right }
  | Op.Product (l, r) -> Op.Product (push_agg unique_keys l, push_agg unique_keys r)
  | Op.Unnest u -> Op.Unnest { u with input = push_agg unique_keys u.input }
  | Op.AddIndex a -> Op.AddIndex { a with input = push_agg unique_keys a.input }
  | Op.NestBag n -> Op.NestBag { n with input = push_agg unique_keys n.input }
  | Op.NestSum n -> Op.NestSum { n with input = push_agg unique_keys n.input }
  | Op.Dedup c -> Op.Dedup (push_agg unique_keys c)
  | Op.UnionAll (l, r) ->
    Op.UnionAll (push_agg unique_keys l, push_agg unique_keys r)
  | Op.BagToDict b -> Op.BagToDict { b with input = push_agg unique_keys b.input }

(* ------------------------------------------------------------------ *)

let optimize ?(config = default) (op : Op.t) : Op.t =
  let op = if config.push_selects then push_select op else op in
  let op = if config.push_aggs then push_agg config.unique_keys op else op in
  let op = if config.prune_columns then prune_columns op else op in
  op
