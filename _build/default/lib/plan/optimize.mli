(** Plan optimizations of Section 3: selection pushdown, column pruning
    (projection pushdown to scans + mu-consumption of unnested attributes),
    and aggregation pushdown past joins against relations with a declared
    unique key. All rewrites are validated against {!Local_eval} in the
    test suite. *)

type config = {
  push_selects : bool;
  prune_columns : bool;
  push_aggs : bool;
  unique_keys : (string * string list) list;
      (** [(input, fields)]: the named input is uniquely keyed by [fields]
          (e.g. [("Part", ["pkey"])]); licenses aggregation pushdown across
          a join against it (Example 2). *)
}

val default : config
(** Everything on, no uniqueness hints. *)

val none : config
(** Everything off (for ablations and plan-shape tests). *)

val prune_columns : Op.t -> Op.t
(** Demand analysis: narrow scans of tuples to their used fields and mark
    unnests whose consumed attribute is dead as dropping. *)

val push_select : Op.t -> Op.t
(** Push selections below joins, products, and non-outer unnests whose
    columns allow it; fuse adjacent selections. *)

val push_agg : (string * string list) list -> Op.t -> Op.t
(** Gamma-plus over a join against a unique-keyed scan: pre-aggregate the
    left side grouped by (left keys + join key), join, then combine. *)

val optimize : ?config:config -> Op.t -> Op.t
