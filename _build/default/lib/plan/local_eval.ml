(** Single-node interpreter for plans: the oracle used to validate the
    unnesting translation against the NRC reference semantics before any
    distributed concerns enter the picture. The distributed executor
    (lib/exec) implements the same operators over partitioned data and is
    tested for agreement with this module. *)

module V = Nrc.Value

type env = (string, V.t list) Hashtbl.t
(** named datasets: bag items per input name *)

let env_of_list l : env =
  let h = Hashtbl.create 16 in
  List.iter
    (fun (name, items) ->
      match (items : V.t) with
      | V.Bag xs -> Hashtbl.replace h name xs
      | v -> Hashtbl.replace h name [ v ])
    l;
  h

let lookup (env : env) name =
  match Hashtbl.find_opt env name with
  | Some items -> items
  | None -> invalid_arg (Printf.sprintf "Local_eval: unknown input %S" name)

(* Grouping with first-seen order, keyed by evaluated key tuples *)
let group_by_keys keys (rows : Row.t list) =
  let tbl : (V.t list, Row.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let kv = List.map (fun (_, e) -> Sexpr.eval row e) keys in
      match Hashtbl.find_opt tbl kv with
      | Some cell -> cell := row :: !cell
      | None ->
        Hashtbl.add tbl kv (ref [ row ]);
        order := kv :: !order)
    rows;
  List.rev_map (fun kv -> (kv, List.rev !(Hashtbl.find tbl kv))) !order
  |> List.rev

let name_values names_exprs vals =
  List.map2 (fun (n, _) v -> (n, v)) names_exprs vals

let sum_agg value rows =
  List.fold_left
    (fun acc row ->
      match Sexpr.eval row value with
      | V.Null -> acc
      | v -> Nrc.Eval.add_values acc v)
    (V.Int 0) rows

(** Gamma-union over an in-memory group of rows; shared by this interpreter
    and by the distributed executor (per partition, after key shuffling). *)
let nest_bag_rows ~keys ~agg_keys ~item ~presence ~out (rows : Row.t list) :
    Row.t list =
  group_by_keys keys rows
  |> List.concat_map (fun (kv, members) ->
         let base = name_values keys kv in
         let present =
           List.filter (fun r -> Sexpr.eval_pred r presence) members
         in
         let mk_bag rs = V.Bag (List.map (fun r -> Sexpr.eval r item) rs) in
         match agg_keys with
         | [] -> [ base @ [ (out, mk_bag present) ] ]
         | _ -> (
           match present with
           | [] ->
             if keys = [] then []
             else
               [ base
                 @ List.map (fun (n, _) -> (n, V.Null)) agg_keys
                 @ [ (out, V.Bag []) ] ]
           | _ ->
             group_by_keys agg_keys present
             |> List.map (fun (akv, sub) ->
                    base @ name_values agg_keys akv @ [ (out, mk_bag sub) ])))

(** Gamma-plus over an in-memory group of rows (see {!nest_bag_rows}). *)
let nest_sum_rows ~keys ~agg_keys ~aggs ~presence (rows : Row.t list) :
    Row.t list =
  group_by_keys keys rows
  |> List.concat_map (fun (kv, members) ->
         let base = name_values keys kv in
         let present =
           List.filter (fun r -> Sexpr.eval_pred r presence) members
         in
         let mk_sums rs = List.map (fun (n, e) -> (n, sum_agg e rs)) aggs in
         match agg_keys with
         | [] -> if keys = [] && present = [] then [] else [ base @ mk_sums present ]
         | _ -> (
           match present with
           | [] ->
             if keys = [] then []
             else
               [ base
                 @ List.map (fun (n, _) -> (n, V.Null)) agg_keys
                 @ List.map (fun (n, _) -> (n, V.Int 0)) aggs ]
           | _ ->
             group_by_keys agg_keys present
             |> List.map (fun (akv, sub) ->
                    base @ name_values agg_keys akv @ mk_sums sub)))

(* remove the consumed bag attribute from the source column of an unnest *)
let drop_path (row : Row.t) = function
  | [ col ] -> List.remove_assoc col row
  | [ col; attr ] -> (
    match List.assoc_opt col row with
    | Some (V.Tuple fields) ->
      Row.add col (V.Tuple (List.remove_assoc attr fields)) row
    | _ -> row)
  | _ -> row (* deeper paths: keep (rare, and dropping is only an optimization) *)

let next_index = ref 0

let rec eval (env : env) (op : Op.t) : Row.t list =
  match op with
  | Op.Nil _ -> []
  | Op.UnitRow -> [ [] ]
  | Op.Scan { input; binder } ->
    List.map (fun item -> [ (binder, item) ]) (lookup env input)
  | Op.Select (p, child) ->
    List.filter (fun row -> Sexpr.eval_pred row p) (eval env child)
  | Op.Project (fields, child) ->
    List.map
      (fun row -> List.map (fun (n, e) -> (n, Sexpr.eval row e)) fields)
      (eval env child)
  | Op.Join { left; right; lkey; rkey; kind } ->
    let lrows = eval env left and rrows = eval env right in
    let rcols = Op.columns right in
    let index : (V.t list, Row.t list ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun rrow ->
        let kv = List.map (Sexpr.eval rrow) rkey in
        if not (List.exists V.is_null kv) then begin
          match Hashtbl.find_opt index kv with
          | Some cell -> cell := rrow :: !cell
          | None -> Hashtbl.add index kv (ref [ rrow ])
        end)
      rrows;
    List.concat_map
      (fun lrow ->
        let kv = List.map (Sexpr.eval lrow) lkey in
        let matches =
          if List.exists V.is_null kv then []
          else
            match Hashtbl.find_opt index kv with
            | Some cell -> List.rev !cell
            | None -> []
        in
        match matches, kind with
        | [], Op.LeftOuter -> [ lrow @ Row.nulls rcols ]
        | [], Op.Inner -> []
        | ms, _ -> List.map (fun rrow -> lrow @ rrow) ms)
      lrows
  | Op.Product (left, right) ->
    let lrows = eval env left and rrows = eval env right in
    List.concat_map (fun lrow -> List.map (fun rrow -> lrow @ rrow) rrows) lrows
  | Op.Unnest { input; path; binder; outer; drop } ->
    List.concat_map
      (fun row ->
        let bag = Sexpr.eval row (Sexpr.Col path) in
        let row = if drop then drop_path row path else row in
        match V.bag_items bag with
        | [] -> if outer then [ row @ [ (binder, V.Null) ] ] else []
        | items -> List.map (fun item -> row @ [ (binder, item) ]) items)
      (eval env input)
  | Op.AddIndex { input; col } ->
    List.map
      (fun row ->
        incr next_index;
        row @ [ (col, V.Int !next_index) ])
      (eval env input)
  | Op.NestBag { input; keys; agg_keys; item; presence; out } ->
    nest_bag_rows ~keys ~agg_keys ~item ~presence ~out (eval env input)
  | Op.NestSum { input; keys; agg_keys; aggs; presence } ->
    nest_sum_rows ~keys ~agg_keys ~aggs ~presence (eval env input)
  | Op.Dedup child ->
    let rows = eval env child in
    let as_values = List.map (fun r -> V.Tuple r) rows in
    List.map
      (fun v -> match v with V.Tuple r -> r | _ -> assert false)
      (V.dedup as_values)
  | Op.UnionAll (left, right) ->
    let cols = Op.columns left in
    eval env left @ List.map (Row.restrict cols) (eval env right)
  | Op.BagToDict { input; _ } -> eval env input

(** Evaluate a plan and package the result rows as a bag of tuples, using the
    plan's column names as attributes. The reserved single column ["item"]
    marks rows that carry whole bag elements (scalars or pass-through
    tuples); they are unwrapped rather than re-wrapped in a tuple. *)
let eval_to_bag (env : env) (op : Op.t) : V.t =
  let rows = eval env op in
  match Op.columns op with
  | [ "item" ] -> V.Bag (List.map (fun row -> Row.get row "item") rows)
  | cols -> V.Bag (List.map (fun row -> V.Tuple (Row.restrict cols row)) rows)
