(** Scalar expressions evaluated per row inside plan operators (selections,
    projections, join keys, nest keys and aggregands).

    Null semantics mirror the paper's outer operators: projecting through a
    Null tuple yields Null; primitives and comparisons with a Null operand
    yield Null; selections treat Null as false; {!Op.NestSum} casts Null
    aggregands to 0. *)

type t =
  | Col of string list  (** column name followed by tuple-field path *)
  | Const of Nrc.Value.t
  | Prim of Nrc.Expr.prim * t * t
  | Cmp of Nrc.Expr.cmp * t * t
  | Logic of Nrc.Expr.logic * t * t
  | Not of t
  | IsNull of t
  | MkLabel of { site : int; args : t list }
  | LabelArg of t * int
      (** extract the i-th captured value of a label (Null when out of
          range, e.g. on a foreign-site label filtered by {!IsLabelSite}) *)
  | IsLabelSite of t * int  (** was the label created by this site? *)
  | MkTuple of (string * t) list  (** build a tuple value *)

val col : string -> t
val path : string -> string list -> t

val eval : Row.t -> t -> Nrc.Value.t
val eval_pred : Row.t -> t -> bool
(** Truthiness for selections: Null counts as false. *)

val cols_used : t -> string list
(** Columns referenced (for pushdown analyses). *)

val pp : Format.formatter -> t -> unit
