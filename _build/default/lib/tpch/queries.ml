(** The TPC-H NRC query benchmark of Section 6: flat-to-nested,
    nested-to-nested, and nested-to-flat query families, each parameterized
    by nesting level (0-4) and by the narrow/wide variant.

    - Flat-to-nested queries iteratively group the relational inputs
      (Lineitem under Orders under Customer under Nation under Region),
      keeping (pkey, lqty) at the leaf; the narrow variant projects a single
      attribute per level, the wide variant keeps everything.
    - Nested-to-nested queries take the materialized flat-to-nested result
      (dataset ["COP"]) and join Part at the lowest level followed by
      [sumBy^{qty*price}_{pname}], as in Example 1.
    - Nested-to-flat queries do the same join/aggregation but sum at the top
      level keyed by top-level attributes, returning a flat collection. *)

module E = Nrc.Expr
module T = Nrc.Types
open Nrc.Builder

let nested_name = "COP"

let leaf_attrs ~wide =
  if wide then Schema.leaf_attrs_wide else Schema.leaf_attrs_narrow

let level_attrs ~wide (info : Schema.level_info) =
  if wide then info.Schema.wide_attrs else [ info.Schema.narrow_attr ]

let record_of var attrs = record (List.map (fun a -> (a, var #. a)) attrs)

(* ------------------------------------------------------------------ *)
(* Types of the materialized nested inputs *)

let rec nested_input_ty ?(wide = false) ~level () : T.t =
  let leaf_item_ty =
    T.tuple
      (List.map
         (fun a -> (a, T.field (T.element Schema.lineitem_ty) a))
         (leaf_attrs ~wide))
  in
  if level = 0 then T.bag leaf_item_ty
  else begin
    let info = Schema.levels.(pred level) in
    let entity_ty =
      List.assoc info.Schema.entity Schema.flat_inputs_ty
    in
    let fields =
      List.map
        (fun a -> (a, T.field (T.element entity_ty) a))
        (level_attrs ~wide info)
    in
    T.bag
      (T.tuple
         (fields
         @ [ (info.Schema.nested_attr, nested_input_ty ~wide ~level:(pred level) ()) ]))
  end

(* ------------------------------------------------------------------ *)
(* Flat-to-nested *)

let flat_to_nested ?(wide = false) ~level () : E.t =
  let leaf parent =
    for_ "l" (input "Lineitem") (fun l ->
        let body = sng (record_of l (leaf_attrs ~wide)) in
        match parent with
        | None -> body
        | Some (pvar, pk) -> where (l #. pk == pvar #. pk) body)
  in
  let rec build lvl parent =
    if lvl = 0 then leaf parent
    else begin
      let info = Schema.levels.(pred lvl) in
      let x = Printf.sprintf "x%d" lvl in
      for_ x (input info.Schema.entity) (fun xv ->
          let fields =
            List.map (fun a -> (a, xv #. a)) (level_attrs ~wide info)
          in
          let body =
            sng
              (record
                 (fields
                 @ [
                     ( info.Schema.nested_attr,
                       build (pred lvl) (Some (xv, info.Schema.pk)) );
                   ]))
          in
          match parent with
          | None -> body
          | Some (pvar, pk) -> where (xv #. pk == pvar #. pk) body)
    end
  in
  build level None

(* ------------------------------------------------------------------ *)
(* Nested-to-nested *)

(* the leaf aggregation of Example 1: join Part, sum qty*price per pname *)
let leaf_aggregate src =
  sum_by ~keys:[ "pname" ] ~values:[ "total" ]
    (for_ "op" src (fun op ->
         for_ "p" (input "Part") (fun p ->
             where
               (op #. "pkey" == p #. "pkey")
               (sng
                  (record
                     [
                       ("pname", p #. "pname");
                       ("total", op #. "lqty" * p #. "pprice");
                     ])))))

let nested_to_nested ?(wide = false) ~level () : E.t =
  if level = 0 then leaf_aggregate (input nested_name)
  else begin
    let rec rebuild lvl src =
      let info = Schema.levels.(pred lvl) in
      let x = Printf.sprintf "y%d" lvl in
      for_ x src (fun xv ->
          let fields =
            List.map (fun a -> (a, xv #. a)) (level_attrs ~wide info)
          in
          let child =
            if lvl = 1 then leaf_aggregate (xv #. info.Schema.nested_attr)
            else rebuild (pred lvl) (xv #. info.Schema.nested_attr)
          in
          sng (record (fields @ [ (info.Schema.nested_attr, child) ])))
    in
    rebuild level (input nested_name)
  end

(* ------------------------------------------------------------------ *)
(* Nested-to-flat *)

let nested_to_flat ?(wide = false) ~level () : E.t =
  if level = 0 then leaf_aggregate (input nested_name)
  else begin
    let top = Schema.levels.(pred level) in
    let keys = level_attrs ~wide top in
    let rec navigate lvl src (topvar : E.t) =
      if lvl = 0 then
        for_ "op" src (fun op ->
            for_ "p" (input "Part") (fun p ->
                where
                  (op #. "pkey" == p #. "pkey")
                  (sng
                     (record
                        (List.map (fun a -> (a, topvar #. a)) keys
                        @ [ ("total", op #. "lqty" * p #. "pprice") ])))))
      else begin
        let info = Schema.levels.(pred lvl) in
        let x = Printf.sprintf "z%d" lvl in
        for_ x src (fun xv ->
            let topvar = if lvl = level then xv else topvar in
            navigate (pred lvl) (xv #. info.Schema.nested_attr) topvar)
      end
    in
    sum_by ~keys ~values:[ "total" ]
      (navigate level (input nested_name) (v "unused"))
  end

(* ------------------------------------------------------------------ *)
(* Program assembly *)

type family = Flat_to_nested | Nested_to_nested | Nested_to_flat

let family_name = function
  | Flat_to_nested -> "flat-to-nested"
  | Nested_to_nested -> "nested-to-nested"
  | Nested_to_flat -> "nested-to-flat"

(** The benchmark program for one (family, level, variant) cell, together
    with the inputs it needs. Flat-to-nested reads the relational inputs;
    the nested families read the materialized nested input [COP] and
    [Part]. *)
let program ?(wide = false) ~family ~level () : Nrc.Program.t =
  match family with
  | Flat_to_nested ->
    Nrc.Program.of_expr ~inputs:Schema.flat_inputs_ty ~name:"Q"
      (flat_to_nested ~wide ~level ())
  | Nested_to_nested ->
    Nrc.Program.of_expr
      ~inputs:
        [
          (nested_name, nested_input_ty ~wide ~level ());
          ("Part", Schema.part_ty);
        ]
      ~name:"Q"
      (nested_to_nested ~wide ~level ())
  | Nested_to_flat ->
    Nrc.Program.of_expr
      ~inputs:
        [
          (nested_name, nested_input_ty ~wide ~level ());
          ("Part", Schema.part_ty);
        ]
      ~name:"Q"
      (nested_to_flat ~wide ~level ())

(** Input values for one benchmark cell. *)
let input_values ?(wide = false) ~family ~level (db : Generator.db) :
    (string * Nrc.Value.t) list =
  match family with
  | Flat_to_nested -> Generator.flat_inputs db
  | Nested_to_nested | Nested_to_flat ->
    [
      (nested_name, Generator.nested_input ~wide ~level db);
      ("Part", db.Generator.part);
    ]
