(** The TPC-H NRC query benchmark of Section 6: flat-to-nested,
    nested-to-nested, and nested-to-flat families, parameterized by nesting
    level (0-4) and the narrow/wide variant. The nested families read the
    materialized nested input under the dataset name [COP] plus [Part]. *)

val nested_name : string
(** ["COP"]. *)

val nested_input_ty : ?wide:bool -> level:int -> unit -> Nrc.Types.t
(** Type of {!Generator.nested_input}. *)

val flat_to_nested : ?wide:bool -> level:int -> unit -> Nrc.Expr.t
(** Iteratively group the relational inputs up to the given level, keeping
    (pkey, lqty) at the leaf; narrow keeps one attribute per level. *)

val leaf_aggregate : Nrc.Expr.t -> Nrc.Expr.t
(** Join Part and [sumBy^{qty*price}_{pname}] — the Example 1 aggregate. *)

val nested_to_nested : ?wide:bool -> level:int -> unit -> Nrc.Expr.t
(** Rebuild the input hierarchy with {!leaf_aggregate} at the bottom. *)

val nested_to_flat : ?wide:bool -> level:int -> unit -> Nrc.Expr.t
(** Navigate all levels, aggregate at the top keyed by top attributes. *)

type family = Flat_to_nested | Nested_to_nested | Nested_to_flat

val family_name : family -> string

val program : ?wide:bool -> family:family -> level:int -> unit -> Nrc.Program.t
(** The benchmark program of one cell, with its input signature. *)

val input_values :
  ?wide:bool ->
  family:family ->
  level:int ->
  Generator.db ->
  (string * Nrc.Value.t) list
(** Input values for one cell (flat tables, or nested input + Part). *)
