(** Zipf-distributed key sampling, mirroring the skewed TPC-H generator [43]
    used in Section 6: skew factor 0 draws keys uniformly; higher factors
    concentrate mass on few heavy keys (factor 4 is the paper's extreme).

    Deterministic: driven by a local linear congruential generator so the
    benchmarks are reproducible. *)

type t = {
  cdf : float array; (* cumulative probabilities over 1..n *)
  n : int;
  mutable state : int64;
}

let lcg_next st =
  (* Numerical Recipes LCG; 48-bit state *)
  st.state <- Int64.logand (Int64.add (Int64.mul st.state 6364136223846793005L) 1442695040888963407L) Int64.max_int;
  Int64.to_float (Int64.rem st.state 1_000_000_007L) /. 1_000_000_007.

let create ~n ~skew ~seed =
  let s = float_of_int skew in
  let weights =
    Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s)
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  { cdf; n; state = Int64.of_int (seed * 2 + 1) }

(** Draw a key in [0, n). With skew 0 the distribution is uniform; with
    higher skew, key 0 dominates. Keys are scrambled so that heavy keys are
    not clustered at the low end of the domain. *)
let draw t =
  let u = lcg_next t in
  (* binary search in the cdf *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  (* multiplicative scramble to spread the heavy ranks over the domain *)
  !lo * 2654435761 mod t.n

(** Uniform integer in [0, bound). *)
let uniform t bound =
  let u = lcg_next t in
  min (bound - 1) (int_of_float (u *. float_of_int bound))
