(** Deterministic TPC-H-like data generator with Zipfian skew (Section 6).

    Cardinality ratios follow the paper's organization (lineitems : orders
    : customers = 40 : 10 : 1, 25 nations, 5 regions); skew factor s in 0-4
    Zipf-distributes the customer of each order (skewed inner collections)
    and the part key of each lineitem (heavy join keys). *)

type scale = {
  customers : int;
  orders_per_customer : int;
  lineitems_per_order : int;
  parts : int;
  skew : int;  (** 0..4 *)
  comment_width : int;  (** padding width of wide-variant strings *)
  seed : int;
}

val default_scale : scale

type db = {
  scale : scale;
  lineitem : Nrc.Value.t;
  orders : Nrc.Value.t;
  customer : Nrc.Value.t;
  nation : Nrc.Value.t;
  region : Nrc.Value.t;
  part : Nrc.Value.t;
}

val nations : int
val regions : int

val generate : scale -> db
val flat_inputs : db -> (string * Nrc.Value.t) list

val nested_input : ?wide:bool -> level:int -> db -> Nrc.Value.t
(** The materialized result of the flat-to-nested query at the given level
    (0 = flat leaf projection, 4 = grouped up to regions), built directly;
    equals the evaluated query (asserted in the test suite). *)
