(** Zipf-distributed key sampling, mirroring the skewed TPC-H generator
    [43] used in Section 6: skew factor 0 is uniform; higher factors
    concentrate mass on few heavy keys (factor 4 is the paper's extreme).
    Deterministic (local LCG) so the benchmarks are reproducible. *)

type t

val create : n:int -> skew:int -> seed:int -> t
(** A sampler over the key domain [0, n) with Zipf exponent [skew]. *)

val draw : t -> int
(** Draw a key; heavy ranks are scrambled across the domain. *)

val uniform : t -> int -> int
(** Uniform integer in [0, bound), advancing the same stream. *)
