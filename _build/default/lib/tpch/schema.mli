(** TPC-H-derived schema used by the micro-benchmark (Section 6): the level
    hierarchy Lineitem -> Orders -> Customer -> Nation -> Region plus the
    flat Part relation joined at the lowest level. *)

val region_ty : Nrc.Types.t
val nation_ty : Nrc.Types.t
val customer_ty : Nrc.Types.t
val orders_ty : Nrc.Types.t
val lineitem_ty : Nrc.Types.t
val part_ty : Nrc.Types.t

type level_info = {
  entity : string;  (** dataset name of the flat input *)
  pk : string;  (** primary key attribute (same name as the child's FK) *)
  fk_down : string;
  narrow_attr : string;  (** the one attribute narrow queries keep *)
  wide_attrs : string list;  (** all payload attributes (wide variant) *)
  nested_attr : string;  (** name of the nested collection in outputs *)
}

val levels : level_info array
(** [levels.(0)] is Orders (children: lineitems) ... [levels.(3)] Region. *)

val child_fk : string array
val leaf_attrs_narrow : string list
val leaf_attrs_wide : string list
val flat_inputs_ty : (string * Nrc.Types.t) list
