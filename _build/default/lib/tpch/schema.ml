(** TPC-H-derived schema used by the micro-benchmark (Section 6): the level
    hierarchy Lineitem -> Orders -> Customer -> Nation -> Region plus the
    flat Part relation joined at the lowest level.

    Each entity has a narrow attribute (the single attribute the narrow
    query variant keeps at that level) and a set of wide attributes
    (everything, including padded comment strings, for the wide variant). *)

module T = Nrc.Types
module V = Nrc.Value

let region_ty =
  T.bag
    (T.tuple
       [ ("rkey", T.int_); ("rname", T.string_); ("rcomment", T.string_) ])

let nation_ty =
  T.bag
    (T.tuple
       [
         ("nkey", T.int_); ("nname", T.string_); ("rkey", T.int_);
         ("ncomment", T.string_);
       ])

let customer_ty =
  T.bag
    (T.tuple
       [
         ("ckey", T.int_); ("cname", T.string_); ("nkey", T.int_);
         ("acctbal", T.real); ("mktsegment", T.string_);
         ("ccomment", T.string_);
       ])

let orders_ty =
  T.bag
    (T.tuple
       [
         ("okey", T.int_); ("ckey", T.int_); ("odate", T.date);
         ("ototal", T.real); ("opriority", T.string_);
         ("ocomment", T.string_);
       ])

let lineitem_ty =
  T.bag
    (T.tuple
       [
         ("okey", T.int_); ("pkey", T.int_); ("lqty", T.real);
         ("eprice", T.real); ("ldiscount", T.real); ("lcomment", T.string_);
       ])

let part_ty =
  T.bag
    (T.tuple
       [
         ("pkey", T.int_); ("pname", T.string_); ("pprice", T.real);
         ("brand", T.string_); ("pcomment", T.string_);
       ])

(** The hierarchy from the leaf upward. [parent_key]/[child_key] give the
    join columns linking a level to the one above it. *)
type level_info = {
  entity : string; (* dataset name of the flat input *)
  pk : string; (* primary key attribute *)
  fk_down : string; (* attribute of the CHILD entity referencing this pk *)
  narrow_attr : string; (* the single attribute kept by narrow queries *)
  wide_attrs : string list; (* all non-key payload attributes *)
  nested_attr : string; (* name of the nested collection in outputs *)
}

(* levels.(0) is Orders (whose children are Lineitems); levels.(3) Region *)
let levels =
  [|
    {
      entity = "Orders"; pk = "okey"; fk_down = "okey"; narrow_attr = "odate";
      wide_attrs = [ "odate"; "ototal"; "opriority"; "ocomment" ];
      nested_attr = "o_parts";
    };
    {
      entity = "Customer"; pk = "ckey"; fk_down = "ckey"; narrow_attr = "cname";
      wide_attrs = [ "cname"; "acctbal"; "mktsegment"; "ccomment" ];
      nested_attr = "c_orders";
    };
    {
      entity = "Nation"; pk = "nkey"; fk_down = "nkey"; narrow_attr = "nname";
      wide_attrs = [ "nname"; "ncomment" ];
      nested_attr = "n_custs";
    };
    {
      entity = "Region"; pk = "rkey"; fk_down = "rkey"; narrow_attr = "rname";
      wide_attrs = [ "rname"; "rcomment" ];
      nested_attr = "r_nations";
    };
  |]

(* FK attribute in the child entity pointing at the parent level:
   Lineitem.okey, Orders.ckey, Customer.nkey, Nation.rkey *)
let child_fk = [| "okey"; "ckey"; "nkey"; "rkey" |]

let leaf_attrs_narrow = [ "pkey"; "lqty" ]
let leaf_attrs_wide = [ "pkey"; "lqty"; "eprice"; "ldiscount"; "lcomment" ]

let flat_inputs_ty =
  [
    ("Lineitem", lineitem_ty);
    ("Orders", orders_ty);
    ("Customer", customer_ty);
    ("Nation", nation_ty);
    ("Region", region_ty);
    ("Part", part_ty);
  ]
