(** Deterministic TPC-H-like data generator with Zipfian skew (Section 6).

    Cardinality ratios follow the paper's organization — the number of
    top-level tuples decreases as the nesting level increases: at scale
    factor 100 the paper has 600M lineitems / 150M orders / 15M customers /
    25 nations / 5 regions; we preserve 4 lineitems per order, 10 orders per
    customer, 25 nations, 5 regions at a configurable base size.

    Skew factor s in 0..4 applies a Zipf(s) distribution to (a) the
    customer of each order — few customers get very many orders, producing
    skewed inner collections — and (b) the part key of each lineitem —
    producing heavy join keys. Factor 0 is the uniform baseline. *)

module V = Nrc.Value

type scale = {
  customers : int;
  orders_per_customer : int; (* average *)
  lineitems_per_order : int; (* average *)
  parts : int;
  skew : int; (* 0..4 *)
  comment_width : int; (* padding width for wide-variant strings *)
  seed : int;
}

let default_scale =
  {
    customers = 300;
    orders_per_customer = 10;
    lineitems_per_order = 4;
    parts = 400;
    skew = 0;
    comment_width = 24;
    seed = 7;
  }

type db = {
  scale : scale;
  lineitem : V.t;
  orders : V.t;
  customer : V.t;
  nation : V.t;
  region : V.t;
  part : V.t;
}

let nations = 25
let regions = 5

let pad width tag i =
  let s = Printf.sprintf "%s%d" tag i in
  if String.length s >= width then s
  else s ^ String.make (width - String.length s) '.'

let generate (scale : scale) : db =
  let rng = Zipf.create ~n:1 ~skew:0 ~seed:scale.seed in
  (* uniform helper over arbitrary bounds *)
  let u bound = Zipf.uniform rng bound in
  let cw = scale.comment_width in
  let region =
    V.Bag
      (List.init regions (fun r ->
           V.Tuple
             [
               ("rkey", V.Int r);
               ("rname", V.Str (Printf.sprintf "region%d" r));
               ("rcomment", V.Str (pad cw "rc" r));
             ]))
  in
  let nation =
    V.Bag
      (List.init nations (fun n ->
           V.Tuple
             [
               ("nkey", V.Int n);
               ("nname", V.Str (Printf.sprintf "nation%d" n));
               ("rkey", V.Int (n mod regions));
               ("ncomment", V.Str (pad cw "nc" n));
             ]))
  in
  let customer =
    V.Bag
      (List.init scale.customers (fun c ->
           V.Tuple
             [
               ("ckey", V.Int c);
               ("cname", V.Str (Printf.sprintf "cust%d" c));
               ("nkey", V.Int (c mod nations));
               ("acctbal", V.Real (float_of_int (u 10000) /. 10.));
               ("mktsegment", V.Str (Printf.sprintf "seg%d" (u 5)));
               ("ccomment", V.Str (pad cw "cc" c));
             ]))
  in
  let n_orders = scale.customers * scale.orders_per_customer in
  let cust_zipf =
    Zipf.create ~n:scale.customers ~skew:scale.skew ~seed:(scale.seed + 1)
  in
  let orders_list =
    List.init n_orders (fun o ->
        let ckey =
          if scale.skew = 0 then o mod scale.customers else Zipf.draw cust_zipf
        in
        V.Tuple
          [
            ("okey", V.Int o);
            ("ckey", V.Int ckey);
            ("odate", V.Date (7000 + u 2500));
            ("ototal", V.Real (float_of_int (u 500000) /. 100.));
            ("opriority", V.Str (Printf.sprintf "p%d" (u 5)));
            ("ocomment", V.Str (pad cw "oc" o));
          ])
  in
  let n_lineitems = n_orders * scale.lineitems_per_order in
  let part_zipf =
    Zipf.create ~n:scale.parts ~skew:scale.skew ~seed:(scale.seed + 2)
  in
  let lineitem_list =
    List.init n_lineitems (fun l ->
        let pkey =
          if scale.skew = 0 then u scale.parts else Zipf.draw part_zipf
        in
        V.Tuple
          [
            ("okey", V.Int (l mod n_orders));
            ("pkey", V.Int pkey);
            ("lqty", V.Real (1. +. float_of_int (u 50)));
            ("eprice", V.Real (float_of_int (u 10000) /. 100.));
            ("ldiscount", V.Real (float_of_int (u 10) /. 100.));
            ("lcomment", V.Str (pad cw "lc" l));
          ])
  in
  let part =
    V.Bag
      (List.init scale.parts (fun p ->
           V.Tuple
             [
               ("pkey", V.Int p);
               (* several parts share a name: aggregation across pkeys *)
               ("pname", V.Str (Printf.sprintf "part%d" (p / 4)));
               ("pprice", V.Real (1. +. (float_of_int (u 9999) /. 100.)));
               ("brand", V.Str (Printf.sprintf "brand%d" (u 25)));
               ("pcomment", V.Str (pad cw "pc" p));
             ]))
  in
  {
    scale;
    lineitem = V.Bag lineitem_list;
    orders = V.Bag orders_list;
    customer;
    nation;
    region;
    part;
  }

let flat_inputs (db : db) : (string * V.t) list =
  [
    ("Lineitem", db.lineitem);
    ("Orders", db.orders);
    ("Customer", db.customer);
    ("Nation", db.nation);
    ("Region", db.region);
    ("Part", db.part);
  ]

(* ------------------------------------------------------------------ *)
(* Nested input construction: materializes the result of the flat-to-nested
   query at a given level directly (the nested-to-* benchmarks take this as
   their input, exactly as the paper materializes the flat-to-nested output
   before timing the downstream queries). *)

let index_by field bag =
  let tbl : (V.t, V.t list ref) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun row ->
      let k = V.field row field in
      match Hashtbl.find_opt tbl k with
      | Some cell -> cell := row :: !cell
      | None -> Hashtbl.add tbl k (ref [ row ]))
    (V.bag_items bag);
  fun k ->
    match Hashtbl.find_opt tbl k with
    | Some cell -> List.rev !cell
    | None -> []

let project attrs row = V.Tuple (List.map (fun a -> (a, V.field row a)) attrs)

(** The nested input of the given nesting level (1..4) and variant.
    Level 1: Bag<odate..., o_parts: Bag<pkey, lqty...>>; level 2 wraps per
    customer; and so on up to regions. Level 0 is the flat leaf projection. *)
let nested_input ?(wide = false) ~level (db : db) : V.t =
  let leaf_attrs =
    if wide then Schema.leaf_attrs_wide else Schema.leaf_attrs_narrow
  in
  let items_of = index_by "okey" db.lineitem in
  let level_attrs (info : Schema.level_info) =
    if wide then info.Schema.wide_attrs else [ info.Schema.narrow_attr ]
  in
  let wrap_level info parent_rows child_builder =
    List.map
      (fun row ->
        let attrs = level_attrs info in
        let fields = List.map (fun a -> (a, V.field row a)) attrs in
        V.Tuple (fields @ [ (info.Schema.nested_attr, V.Bag (child_builder row)) ]))
      parent_rows
  in
  if level = 0 then
    V.Bag (List.map (project leaf_attrs) (V.bag_items db.lineitem))
  else begin
    (* build from the bottom: orders with their items *)
    let build_orders rows =
      wrap_level Schema.levels.(0) rows (fun o ->
          List.map (project leaf_attrs) (items_of (V.field o "okey")))
    in
    if level = 1 then V.Bag (build_orders (V.bag_items db.orders))
    else begin
      let orders_of = index_by "ckey" db.orders in
      let build_customers rows =
        wrap_level Schema.levels.(1) rows (fun c ->
            build_orders (orders_of (V.field c "ckey")))
      in
      if level = 2 then V.Bag (build_customers (V.bag_items db.customer))
      else begin
        let custs_of = index_by "nkey" db.customer in
        let build_nations rows =
          wrap_level Schema.levels.(2) rows (fun n ->
              build_customers (custs_of (V.field n "nkey")))
        in
        if level = 3 then V.Bag (build_nations (V.bag_items db.nation))
        else begin
          let nations_of = index_by "rkey" db.nation in
          let build_regions rows =
            wrap_level Schema.levels.(3) rows (fun r ->
                build_nations (nations_of (V.field r "rkey")))
          in
          V.Bag (build_regions (V.bag_items db.region))
        end
      end
    end
  end
