lib/tpch/schema.mli: Nrc
