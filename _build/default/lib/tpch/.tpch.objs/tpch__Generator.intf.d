lib/tpch/generator.mli: Nrc
