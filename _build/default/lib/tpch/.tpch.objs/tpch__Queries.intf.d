lib/tpch/queries.mli: Generator Nrc
