lib/tpch/generator.ml: Array Hashtbl List Nrc Printf Schema String Zipf
