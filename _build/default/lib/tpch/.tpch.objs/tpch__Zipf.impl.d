lib/tpch/zipf.ml: Array Float Int64
