lib/tpch/schema.ml: Nrc
