lib/tpch/queries.ml: Array Generator List Nrc Printf Schema
