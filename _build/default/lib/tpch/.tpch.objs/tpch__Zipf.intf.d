lib/tpch/zipf.mli:
