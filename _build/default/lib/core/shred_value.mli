(** Value shredding and unshredding (Section 4): convert nested values to
    their shredded representation — flat top bag plus flat dictionaries —
    and back. Used to prepare inputs for the shredded pipeline and as the
    semantic reference for query-shredding tests. *)

type shredded = {
  top : Nrc.Value.t;  (** flat bag with labels in bag positions *)
  dicts : (string list * Nrc.Value.t) list;
      (** path -> flat dictionary bag (label + item fields) *)
}

val shred_bag : string -> Nrc.Types.t -> Nrc.Value.t -> shredded
(** [shred_bag base elem_ty v]: shred one nested bag, drawing label sites
    from {!Shred_type.input_site}[ base]. *)

val to_datasets : string -> shredded -> (string * Nrc.Value.t) list
(** Named datasets ([COP_F], [COP_D_corders], ...). *)

val shred_env :
  (string * Nrc.Types.t) list ->
  (string * Nrc.Value.t) list ->
  (string * Nrc.Value.t) list
(** Shred every nested input of an environment; flat bags pass through
    under their [_F] name; non-bag inputs unchanged. *)

val unshred_bag :
  Nrc.Types.t ->
  Nrc.Value.t ->
  (string list * Nrc.Value.t) list ->
  Nrc.Value.t
(** Rebuild the nested bag; inverse of {!shred_bag} up to label identity. *)
