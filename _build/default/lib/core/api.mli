(** Top-level TraNCE-style API: compile an NRC program down one of the two
    routes of Figure 2 and execute it on the cluster simulator.

    - {b Standard}: unnesting -> plan -> optimization -> distributed
      execution over nested top-level tuples (Section 3).
    - {b Shredded}: symbolic shredding -> materialization (domain
      elimination) -> per-assignment unnesting -> distributed execution
      over flat shredded datasets, optionally followed by unshredding
      (Section 4).

    Both routes accept skew-aware execution (Section 5). Per-worker memory
    exhaustion is reported as a failed run (the paper's FAIL bars), never
    an exception. *)

type strategy =
  | Standard
  | Shredded of { unshred : bool }
      (** [unshred = true] reassembles the nested result (the paper's
          Shred+Unshred series); [false] leaves the shredded datasets for a
          downstream consumer and returns the top bag *)
  | SparkSQL_proxy
      (** the paper's strongest competitor, modelled as the standard route
          minus cogroup fusion, aggregation pushdown, and column pruning —
          the behavioural differences Section 6 identifies *)

val strategy_name : strategy -> string

type config = {
  cluster : Exec.Config.t;
  skew_aware : bool;  (** Section 5 operators *)
  cogroup : bool;  (** join+nest fusion (Section 3, Optimization) *)
  optimizer : Plan.Optimize.config;
  materializer : Materialize.config;
  collect : bool;  (** gather the result back to the driver *)
}

val default_config : config

type run = {
  strategy : string;
  value : Nrc.Value.t option;  (** None when not collected or failed *)
  stats : Exec.Stats.t;
  wall_seconds : float;
  failure : string option;
      (** ["Step2/unnest: 5MB > 4MB"]-style description when a worker
          exceeded its budget — the paper's FAIL *)
  step_seconds : (string * float) list;
      (** simulated seconds per source assignment (shredded dictionary
          assignments fold into their step by name prefix); a trailing
          ["Unshred"] entry covers reassembly *)
}

val pp_run : Format.formatter -> run -> unit

(** {2 Compilation} *)

val compile_standard :
  ?config:config -> Nrc.Program.t -> (string * Plan.Op.t) list
(** One optimized plan per assignment. *)

type shredded_compiled = {
  pipeline : Shred_pipeline.t;
  plans : (string * Plan.Op.t) list;
      (** materialized assignments; dictionary outputs wrapped in
          [BagToDict] to establish the label partitioning guarantee *)
  unshred_plan : Plan.Op.t option;
}

val compile_shredded : ?config:config -> Nrc.Program.t -> shredded_compiled

(** {2 Input loading} *)

val load_inputs :
  cluster:Exec.Config.t ->
  (string * Nrc.Types.t) list ->
  (string * Nrc.Value.t) list ->
  Exec.Executor.env

val load_shredded_inputs :
  cluster:Exec.Config.t ->
  (string * Nrc.Types.t) list ->
  (string * Nrc.Value.t) list ->
  Exec.Executor.env
(** Value-shred nested inputs; dictionaries loaded with their label
    partitioning guarantee. *)

(** {2 Execution} *)

val run :
  ?config:config ->
  strategy:strategy ->
  Nrc.Program.t ->
  (string * Nrc.Value.t) list ->
  run
(** Compile and execute; never raises on memory exhaustion. *)
