(** Materialization (Section 4, Figure 5): turn symbolic dictionaries into
    a sequence of label-free assignments computing flat datasets — the top
    bag plus one flat dictionary per output level. Dictionaries are emitted
    directly in flat form (label column + item columns); per-label [match]
    loops become label joins and localized aggregation becomes global
    aggregation with the label prepended to the key.

    Domain elimination (Section 4) is applied per symbolic dictionary:
    rule 1 (body dereferences only its own label in an existing dictionary,
    including the sumBy/dedup extensions of Example 6) and rule 2 (the
    label captures scalars used only as equality filters). Output levels
    that alias an input dictionary are recorded in the {!Registry} and cost
    nothing. *)

type config = { domain_elimination : bool }

val default : config

type result = {
  assignments : (string * Nrc.Expr.t) list;  (** in dependency order *)
  top : string;  (** dataset holding the flat top bag *)
  dicts : (string list * string) list;  (** output dict path -> dataset *)
}

val materialize :
  ?config:config ->
  registry:Registry.t ->
  target:string ->
  Nrc.Expr.t * Symbolic.dtree ->
  result
(** Materialize one shredded assignment: the top bag as [<target>_F], each
    dictionary as [<target>_D_<path>] or an alias. *)
