(** Unshredding: reconstruct a nested result from its materialized shredded
    form. The reconstruction is itself an NRC query over the top bag and
    the flat dictionaries (per-label lookups, which unnesting turns into
    label joins and regrouping), so its cost is measured on the same
    substrate as everything else — the Unshred series of the paper's
    experiments. *)

val query :
  registry:Registry.t -> dataset:string -> Nrc.Types.t -> Nrc.Expr.t
(** [query ~registry ~dataset elem_ty]: the NRC expression rebuilding a
    nested bag with the given original element type from [dataset]'s
    shredded datasets (dictionary names resolved through the registry, so
    aliased levels read input dictionaries directly). *)
