(** Symbolic query shredding (Section 4, Figure 4): the mutually recursive
    translation F / D from a source NRC expression to (a) a flat expression
    computing the top-level bag with labels in place of inner collections and
    (b) a dictionary tree describing how each label dereferences.

    Dictionary trees are kept as a structured OCaml value rather than
    lambda-bearing expressions: the paper's [let varD := D(e1) in ...]
    bindings are resolved eagerly through an environment, and [Lookup] on the
    dictionary of an already-materialized dataset becomes [MatLookup] on its
    named flat dictionary immediately. This fuses the normalization step of
    Figure 5 (line 3) into the translation; the semantics is that of [28]
    extended with aggregation, as in the paper.

    The label refinement of Section 4 is implemented: a [NewLabel] captures
    only the attribute paths of free variables actually used by the
    dictionary body, not whole variables. *)

module E = Nrc.Expr
module T = Nrc.Types

open Shred_type

(* ------------------------------------------------------------------ *)
(* Dictionary trees *)

type dtree =
  | DEmpty  (** scalar / flat contents: no dictionaries *)
  | DNode of (string * entry) list
      (** one entry per bag-valued attribute of a tuple *)
  | DRef of { dataset : string; path : string list; elem_ty : T.t }
      (** the dictionaries of an already-materialized dataset at an attribute
          path; [elem_ty] is the original (nested) element type there *)
  | DUnion of dtree * dtree

and entry =
  | EAlias of dtree
      (** the output dictionary is exactly an existing one (label reuse) *)
  | ELams of { lams : lam list; child : dtree; item_ty : T.t }
      (** symbolic dictionary: one lambda per label site flowing into this
          attribute; [item_ty] is the flat type of the dictionary's items *)

and lam = {
  site : int;
  params : (string * T.t) list; (* captured values, in label-argument order *)
  body : E.t; (* flat bag expression over params + datasets *)
  identity : bool;
      (* the label is exactly the single captured label (the Section 4
         refinement collapsed to identity): the F side passes the inner
         label through unchanged instead of wrapping it *)
}

exception Unsupported_shredding of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported_shredding s)) fmt

(* ------------------------------------------------------------------ *)
(* Context *)

type ctx = {
  dtenv : (string * T.t) list; (* original types of named datasets *)
  ftenv : (string * T.t) list; (* flat types of generator variables *)
  denv : (string * dtree) list; (* dictionary trees of generator variables *)
  registry : Registry.t;
}

let bind ctx x fty d =
  { ctx with ftenv = (x, fty) :: ctx.ftenv; denv = (x, d) :: ctx.denv }

let flat_type_of ctx (e : E.t) : T.t =
  Nrc.Typecheck.infer
    (Nrc.Typecheck.env_of_list
       (ctx.ftenv
       @ List.concat_map
           (fun (name, ty) ->
             match ty with
             | T.TBag _ -> shredded_inputs name ty
             | _ -> [ (name, ty) ])
           ctx.dtenv))
    e

(* the dictionary subtree for elements of the bag attribute [a] *)
let rec child_of ctx (d : dtree) (a : string) : dtree =
  match d with
  | DRef { dataset; path; elem_ty } -> (
    match elem_at elem_ty [ a ] with
    | inner -> DRef { dataset; path = path @ [ a ]; elem_ty = inner })
  | DNode entries -> (
    match List.assoc_opt a entries with
    | Some (EAlias t) -> t
    | Some (ELams { child; _ }) -> child
    | None -> unsupported "no dictionary entry for attribute %s" a)
  | DUnion (d1, d2) -> DUnion (child_of ctx d1 a, child_of ctx d2 a)
  | DEmpty -> unsupported "navigating attribute %s of an empty dictionary tree" a

(* the named dataset holding the dictionary for attribute [a] under [d];
   only resolvable for already-materialized dictionaries *)
let rec dict_dataset_of ctx (d : dtree) (a : string) : string =
  match d with
  | DRef { dataset; path; _ } -> Registry.resolve ctx.registry dataset (path @ [ a ])
  | DNode entries -> (
    match List.assoc_opt a entries with
    | Some (EAlias sub) -> dict_dataset_root ctx sub
    | _ ->
      unsupported
        "dictionary lookup on a not-yet-materialized dictionary (attribute %s); \
         normalize the query or split it into assignments"
        a)
  | DUnion _ -> unsupported "dictionary lookup through a union dictionary"
  | DEmpty -> unsupported "dictionary lookup on empty tree"

and dict_dataset_root ctx = function
  | DRef { dataset; path; _ } -> Registry.resolve ctx.registry dataset path
  | _ -> unsupported "alias to a non-materialized dictionary"

(* ------------------------------------------------------------------ *)
(* Captured-path analysis: the refinement of Section 4 — labels capture only
   the used attribute paths of free generator variables. *)

module SSet = Set.Make (String)

type use = Whole | Attrs of SSet.t

let add_use m v u =
  let cur = Option.value (List.assoc_opt v !m) ~default:(Attrs SSet.empty) in
  let joined =
    match cur, u with
    | Whole, _ | _, Whole -> Whole
    | Attrs a, Attrs b -> Attrs (SSet.union a b)
  in
  m := (v, joined) :: List.remove_assoc v !m

let used_paths (bound : SSet.t) (e : E.t) : (string * use) list =
  let acc = ref [] in
  let rec go e =
    match e with
    | E.Proj (E.Var v, a) when SSet.mem v bound ->
      add_use acc v (Attrs (SSet.singleton a))
    | E.Var v when SSet.mem v bound -> add_use acc v Whole
    | E.ForUnion (x, e1, e2) ->
      go e1;
      if SSet.mem x bound then () else go e2
      (* shadowing of bound names cannot occur: generated names are fresh *)
    | _ ->
      ignore
        (E.map_children
           (fun sub ->
             go sub;
             sub)
           e)
  in
  go e;
  !acc

(* replace occurrences of [Proj (Var v, a)] by [e'] *)
let subst_path v a e' (e : E.t) : E.t =
  let rec go e =
    match e with
    | E.Proj (E.Var v', a') when v' = v && a' = a -> e'
    | E.ForUnion (x, e1, e2) when x = v -> E.ForUnion (x, go e1, e2)
    | E.Let (x, e1, e2) when x = v -> E.Let (x, go e1, e2)
    | _ -> E.map_children go e
  in
  go e

(** Build the label for a dictionary body: returns the [NewLabel] expression
    (to embed in F) and the lambda closing the body over the captured
    values. *)
let close_body ctx ~site (body : E.t) : E.t * lam =
  let bound = SSet.of_list (List.map fst ctx.ftenv) in
  let usage = used_paths bound body in
  (* one captured argument per used path, in a deterministic order *)
  let captures =
    List.concat_map
      (fun (v, u) ->
        let vty =
          match List.assoc_opt v ctx.ftenv with
          | Some t -> t
          | None -> unsupported "no flat type for %s" v
        in
        match u with
        | Whole -> [ (E.Var v, vty) ]
        | Attrs attrs ->
          List.map
            (fun a -> (E.Proj (E.Var v, a), T.field vty a))
            (SSet.elements attrs))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) usage)
  in
  List.iter
    (fun (_, t) ->
      if not (T.is_flat t) then
        unsupported "label would capture a non-flat value of type %a" T.pp t)
    captures;
  let params =
    List.mapi
      (fun i (_, t) -> (Printf.sprintf "cap%%%d_%d" site i, t))
      captures
  in
  let closed_body =
    List.fold_left2
      (fun b (path_expr, _) (p, _) ->
        match path_expr with
        | E.Var v -> E.subst v (E.Var p) b
        | E.Proj (E.Var v, a) -> subst_path v a (E.Var p) b
        | _ -> assert false)
      body captures params
  in
  match captures with
  | [ (path_expr, T.TLabel) ] ->
    (* single label capture: the new label would be a bijective wrapper
       around the inner label — use the inner label itself, which is what
       makes rule-1 domain elimination (Example 6) produce dictionaries
       keyed consistently with the top bag *)
    (path_expr, { site; params; body = closed_body; identity = true })
  | _ ->
    let label = E.NewLabel { site; args = List.map fst captures } in
    (label, { site; params; body = closed_body; identity = false })

(* ------------------------------------------------------------------ *)
(* F / D translation *)

let rec rooted_path (e : E.t) : (string * string list) option =
  match e with
  | E.Var v -> Some (v, [])
  | E.Proj (e1, a) ->
    Option.map (fun (v, p) -> (v, p @ [ a ])) (rooted_path e1)
  | _ -> None

let rec shred (ctx : ctx) (e : E.t) : E.t * dtree =
  match e with
  | E.Const _ -> (e, DEmpty)
  | E.Var x -> (
    match List.assoc_opt x ctx.denv with
    | Some d -> (E.Var x, d)
    | None -> (
      (* a named dataset *)
      match List.assoc_opt x ctx.dtenv with
      | Some (T.TBag elem) ->
        (E.Var (top_name x), DRef { dataset = x; path = []; elem_ty = elem })
      | Some _ -> (E.Var x, DEmpty)
      | None -> unsupported "unbound variable %s" x))
  | E.Proj (e1, a) -> (
    let e1F, d1 = shred ctx e1 in
    (* bag-valued iff the dictionary tree knows the attribute *)
    match attr_kind ctx d1 a with
    | `Bag ->
      let dict = dict_dataset_of ctx d1 a in
      (E.MatLookup (E.Var dict, E.Proj (e1F, a)), child_of ctx d1 a)
    | `Scalar -> (E.Proj (e1F, a), DEmpty))
  | E.Record fields ->
    let fF, entries =
      List.fold_left
        (fun (accF, accE) (n, ei) ->
          match field_shred ctx ei with
          | `Scalar eF -> ((n, eF) :: accF, accE)
          | `Label (labelE, entry) -> ((n, labelE) :: accF, (n, entry) :: accE))
        ([], []) fields
    in
    ( E.Record (List.rev fF),
      match entries with [] -> DEmpty | es -> DNode (List.rev es) )
  | E.Empty elem ->
    (E.Empty (flat_of elem), dtree_of_empty elem)
  | E.Singleton e1 ->
    let e1F, d1 = shred ctx e1 in
    (E.Singleton e1F, d1)
  | E.Get e1 ->
    let e1F, d1 = shred ctx e1 in
    (E.Get e1F, d1)
  | E.ForUnion (x, e1, e2) ->
    let e1F, d1 = shred ctx e1 in
    let elem_fty =
      match flat_type_of ctx e1F with
      | T.TBag t -> t
      | t -> unsupported "generator over non-bag of type %a" T.pp t
    in
    let ctx' = bind ctx x elem_fty d1 in
    let e2F, d2 = shred ctx' e2 in
    (E.ForUnion (x, e1F, e2F), d2)
  | E.Union (e1, e2) ->
    let e1F, d1 = shred ctx e1 in
    let e2F, d2 = shred ctx e2 in
    (E.Union (e1F, e2F), union_dtree d1 d2)
  | E.Let (x, e1, e2) ->
    let e1F, d1 = shred ctx e1 in
    let fty = flat_type_of ctx e1F in
    let ctx' = bind ctx x fty d1 in
    let e2F, d2 = shred ctx' e2 in
    (E.Let (x, e1F, e2F), d2)
  | E.Prim (op, a, b) -> (E.Prim (op, fst (shred ctx a), fst (shred ctx b)), DEmpty)
  | E.Cmp (op, a, b) -> (E.Cmp (op, fst (shred ctx a), fst (shred ctx b)), DEmpty)
  | E.Logic (op, a, b) ->
    (E.Logic (op, fst (shred ctx a), fst (shred ctx b)), DEmpty)
  | E.Not a -> (E.Not (fst (shred ctx a)), DEmpty)
  | E.If (c, e1, e2opt) ->
    let cF, _ = shred ctx c in
    let e1F, d1 = shred ctx e1 in
    (match e2opt with
    | None -> (E.If (cF, e1F, None), d1)
    | Some e2 ->
      let e2F, d2 = shred ctx e2 in
      (E.If (cF, e1F, Some e2F), union_dtree d1 d2))
  | E.Dedup e1 ->
    (* dedup input is a flat bag: shredding is the identity on contents *)
    let e1F, _ = shred ctx e1 in
    (E.Dedup e1F, DEmpty)
  | E.SumBy { input; keys; values } ->
    (* keys and values are flat: the aggregate applies to the flat bag *)
    let inF, _ = shred ctx input in
    (E.SumBy { input = inF; keys; values }, DEmpty)
  | E.GroupBy { input; keys; group_attr } ->
    shred_groupby ctx ~input ~keys ~group_attr
  | E.NewLabel _ | E.MatchLabel _ | E.Lookup _ | E.MatLookup _ | E.Lambda _
  | E.DictTreeUnion _ ->
    unsupported "source expression already contains shredding constructs"

(* how does attribute [a] of a value described by [d] behave? *)
and attr_kind ctx (d : dtree) a =
  match d with
  | DEmpty -> `Scalar
  | DNode entries -> if List.mem_assoc a entries then `Bag else `Scalar
  | DRef { elem_ty; _ } -> (
    match elem_ty with
    | T.TTuple fields -> (
      match List.assoc_opt a fields with
      | Some (T.TBag _) -> `Bag
      | _ -> `Scalar)
    | _ -> `Scalar)
  | DUnion (d1, _) -> attr_kind ctx d1 a

(* shred one tuple-constructor field (Figure 4, lines 3-4 + label reuse) *)
and field_shred ctx (ei : E.t) =
  match shred_field_kind ctx ei with
  | `Scalar ->
    let eF, _ = shred ctx ei in
    `Scalar eF
  | `Bag -> (
    (* label reuse: a bag-valued path copies the existing label *)
    match rooted_path ei with
    | Some (v, path) when List.mem_assoc v ctx.denv && path <> [] ->
      let d0 = List.assoc v ctx.denv in
      let rec nav d = function
        | [] -> d
        | a :: rest -> nav (child_of ctx d a) rest
      in
      let parent = nav d0 (List.filteri (fun i _ -> i < List.length path - 1) path) in
      let last = List.nth path (List.length path - 1) in
      let sub = child_of ctx parent last in
      let labelE =
        List.fold_left (fun acc a -> E.Proj (acc, a)) (E.Var v) path
      in
      `Label (labelE, EAlias sub)
    | _ ->
      let eiF, di = shred ctx ei in
      let site = fresh_site "tuple" in
      let labelE, lam = close_body ctx ~site eiF in
      let item_ty =
        match flat_type_of ctx eiF with
        | T.TBag t -> t
        | t -> unsupported "bag field of non-bag flat type %a" T.pp t
      in
      `Label (labelE, ELams { lams = [ lam ]; child = di; item_ty }))

and shred_field_kind ctx (ei : E.t) =
  (* decide bag-ness syntactically where cheap, else via flat typing of the
     shredded form: bag fields shred to bag-typed expressions *)
  match ei with
  | E.ForUnion _ | E.Union _ | E.Empty _ | E.Singleton _ | E.Dedup _
  | E.SumBy _ | E.GroupBy _ ->
    `Bag
  | E.If (_, t, _) -> shred_field_kind ctx t
  | E.Proj _ | E.Var _ -> (
    let eF, d = shred ctx ei in
    ignore d;
    match flat_type_of ctx eF with
    | T.TBag _ -> `Bag
    | T.TLabel -> (
      (* a label-typed flat value corresponds to a bag in the source *)
      match rooted_path ei with Some _ -> `Bag | None -> `Scalar)
    | _ -> `Scalar)
  | _ -> `Scalar

(* an empty bag's dictionary tree: entries with no lambdas *)
and dtree_of_empty (elem : T.t) : dtree =
  match bag_attrs elem with
  | [] -> DEmpty
  | attrs ->
    DNode
      (List.map
         (fun (a, inner) ->
           ( a,
             ELams
               { lams = [];
                 child = dtree_of_empty inner;
                 item_ty = flat_of inner } ))
         attrs)

and union_dtree d1 d2 =
  match d1, d2 with
  | DEmpty, d | d, DEmpty -> d
  | _ -> DUnion (d1, d2)

(* groupBy produces one nesting level: group labels capture the key values
   (this is exactly the shape of the second domain-elimination rule). *)
and shred_groupby ctx ~input ~keys ~group_attr =
  let inF, _din = shred ctx input in
  let item_fty =
    match flat_type_of ctx inF with
    | T.TBag t -> t
    | t -> unsupported "groupBy over non-bag %a" T.pp t
  in
  let fields = T.tuple_fields item_fty in
  let rest = List.filter (fun (n, _) -> not (List.mem n keys)) fields in
  List.iter
    (fun (n, t) ->
      match t with
      | T.TLabel ->
        unsupported
          "groupBy whose group contents contain inner collections (%s) is \
           not supported in the shredded route"
          n
      | _ -> ())
    rest;
  let site = fresh_site "groupBy" in
  let x = E.fresh ~hint:"g" () in
  (* the group dictionary: match l = NewLabel(k..., outer captures...) then
     for y in inF union if y.k == k then <rest> *)
  let key_params =
    List.map
      (fun k -> (Printf.sprintf "cap%%%d_%s" site k, T.field item_fty k))
      keys
  in
  let y = E.fresh ~hint:"g" () in
  let cond =
    match
      List.map2
        (fun k (p, _) -> E.Cmp (E.Eq, E.Proj (E.Var y, k), E.Var p))
        keys key_params
    with
    | [] -> E.bool_ true
    | c :: cs -> List.fold_left (fun a b -> E.Logic (E.And, a, b)) c cs
  in
  let raw_body =
    E.ForUnion
      ( y,
        inF,
        E.If
          ( cond,
            E.Singleton
              (E.Record (List.map (fun (n, _) -> (n, E.Proj (E.Var y, n))) rest)),
            None ) )
  in
  (* the body may reference enclosing generator variables (e.g. a groupBy
     over cop.corders inside a tuple constructor): close over their used
     paths, extending the label's captures beyond the grouping keys *)
  let bound = SSet.of_list (List.map fst ctx.ftenv) in
  let usage = used_paths bound raw_body in
  let extra_captures =
    List.concat_map
      (fun (v, u) ->
        let vty = List.assoc v ctx.ftenv in
        match u with
        | Whole -> [ (E.Var v, vty) ]
        | Attrs attrs ->
          List.map
            (fun a -> (E.Proj (E.Var v, a), T.field vty a))
            (SSet.elements attrs))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) usage)
  in
  let extra_params =
    List.mapi
      (fun i (_, t) -> (Printf.sprintf "cap%%%d_x%d" site i, t))
      extra_captures
  in
  let body =
    List.fold_left2
      (fun b (path_expr, _) (prm, _) ->
        match path_expr with
        | E.Var v -> E.subst v (E.Var prm) b
        | E.Proj (E.Var v, a) -> subst_path v a (E.Var prm) b
        | _ -> assert false)
      raw_body extra_captures extra_params
  in
  let label_args x_expr =
    List.map (fun k -> E.Proj (x_expr, k)) keys @ List.map fst extra_captures
  in
  let fF =
    E.Dedup
      (E.ForUnion
         ( x,
           inF,
           E.Singleton
             (E.Record
                (List.map (fun k -> (k, E.Proj (E.Var x, k))) keys
                @ [ (group_attr, E.NewLabel { site; args = label_args (E.Var x) }) ])) ))
  in
  ( fF,
    DNode
      [
        ( group_attr,
          ELams
            { lams =
                [ { site; params = key_params @ extra_params; body;
                    identity = false } ];
              child = DEmpty;
              item_ty = T.TTuple rest } );
      ] )

(* ------------------------------------------------------------------ *)
(* Entry point *)

(** Shred one assignment body against the dataset environment. *)
let shred_expr ~registry ~(dtenv : (string * T.t) list) (e : E.t) :
    E.t * dtree =
  let e = Nrc.Norm.simplify e in
  shred { dtenv; ftenv = []; denv = []; registry } e
