(** Registry of materialized dictionary names.

    Maps (dataset, attribute path) to the concrete dataset holding that
    dictionary. By default a dictionary lives under its canonical name
    [<dataset>_D_<path>]; the materializer records aliases when an output
    level reuses an input dictionary unchanged (Section 4: "The first two
    output levels are those from the shredded input"). *)

type t = { aliases : (string, string) Hashtbl.t }

let create () = { aliases = Hashtbl.create 32 }

let key dataset path = String.concat "\x00" (dataset :: path)

(** The dataset name holding the dictionary of [dataset] at [path]. *)
let resolve (t : t) dataset path =
  match Hashtbl.find_opt t.aliases (key dataset path) with
  | Some name -> name
  | None -> Shred_type.dict_name dataset path

(** Record that the dictionary of [dataset] at [path] is stored in
    [target_name] (an alias or a freshly materialized dataset). *)
let record (t : t) dataset path target_name =
  Hashtbl.replace t.aliases (key dataset path) target_name

(** Is this dictionary an alias (no materialization of its own)? *)
let is_alias (t : t) dataset path =
  match Hashtbl.find_opt t.aliases (key dataset path) with
  | Some name -> name <> Shred_type.dict_name dataset path
  | None -> false
