(** Symbolic query shredding (Section 4, Figure 4): the mutually recursive
    translation F / D from a source NRC expression to (a) a flat expression
    computing the top-level bag with labels in place of inner collections
    and (b) a dictionary tree describing how each label dereferences.

    Dictionary trees are structured values rather than lambda-bearing
    expressions: the paper's [let varD := D(e1) in ...] bindings are
    resolved eagerly through an environment, and [Lookup] on an
    already-materialized dictionary becomes [MatLookup] on its named flat
    dataset immediately — fusing Figure 5's normalization step into the
    translation. The Section 4 label refinement is implemented: labels
    capture only the used attribute paths of free variables, and a label
    that would capture exactly one label {e is} that label ([identity]). *)

type dtree =
  | DEmpty  (** scalar / flat contents: no dictionaries *)
  | DNode of (string * entry) list
      (** one entry per bag-valued attribute of a tuple *)
  | DRef of { dataset : string; path : string list; elem_ty : Nrc.Types.t }
      (** the dictionaries of an already-materialized dataset at a path;
          [elem_ty] is the original (nested) element type there *)
  | DUnion of dtree * dtree

and entry =
  | EAlias of dtree
      (** the output dictionary is exactly an existing one (label reuse) *)
  | ELams of { lams : lam list; child : dtree; item_ty : Nrc.Types.t }
      (** symbolic dictionary: one lambda per label site flowing in;
          [item_ty] is the flat type of the dictionary's items *)

and lam = {
  site : int;
  params : (string * Nrc.Types.t) list;
      (** captured values, in label-argument order *)
  body : Nrc.Expr.t;  (** flat bag expression over params + datasets *)
  identity : bool;
      (** the label is exactly the single captured label: the F side passes
          the inner label through unchanged *)
}

exception Unsupported_shredding of string

val union_dtree : dtree -> dtree -> dtree
(** Union of dictionary trees ([DEmpty] is the unit). *)

(** {2 Captured-path analysis} *)

module SSet : Set.S with type elt = string

type use = Whole | Attrs of SSet.t

val used_paths : SSet.t -> Nrc.Expr.t -> (string * use) list
(** How each bound variable is used: whole, or through which attributes. *)

val subst_path : string -> string -> Nrc.Expr.t -> Nrc.Expr.t -> Nrc.Expr.t
(** Replace occurrences of [Proj (Var v, a)]. *)

(** {2 Entry point} *)

val shred_expr :
  registry:Registry.t ->
  dtenv:(string * Nrc.Types.t) list ->
  Nrc.Expr.t ->
  Nrc.Expr.t * dtree
(** Shred one assignment body against the dataset environment (original
    types). Returns F(e) and D(e).
    @raise Unsupported_shredding outside the supported fragment. *)
