(** The unnesting stage (Section 3): translates an NRC expression into a
    query plan, following the variant of Fegaras and Maier's algorithm
    described in the paper.

    Pipeline inside this module:

    + normalize the expression to monad-comprehension form
      ({!Nrc.Norm.simplify}), then extract a union of comprehensions
      [{ head | quals }];
    + translate qualifiers left-to-right into scans, (outer) joins — with
      equality predicates detected as join keys — and (outer) unnests;
    + translate the head: flat heads become projections; bag-valued
      attributes of tuple heads open a new nesting level with an [AddIndex]
      (the unique ID of the paper), an expanded grouping-attribute set G,
      outer variants of joins and unnests, and a closing Gamma.

    At non-root levels, residual predicates are folded into the presence
    predicate of the closing nest operator rather than becoming selections:
    a filtered-out row must still keep its group alive with an empty bag /
    zero sum, which is exactly the NULL-casting behaviour of Section 2. *)

module E = Nrc.Expr
module T = Nrc.Types
module S = Plan.Sexpr
module Op = Plan.Op

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(* ------------------------------------------------------------------ *)
(* Comprehension form *)

type source =
  | SInput of string (* named dataset *)
  | SPath of string * string list (* bound variable, field path *)
  | SSub of E.t (* independent subexpression (dedup/aggregate result) *)

type qual =
  | Gen of string * source
  | Pred of E.t
  | BindLabel of { label : E.t; site : int; params : (string * T.t) list }

type comp = { quals : qual list; head : E.t }

(* [comps_of bound e]: decompose a (simplified) bag expression into a union
   of comprehensions. [bound] tracks generator/label-bound variables; free
   variables outside [bound] denote named datasets. *)
let rec comps_of (bound : E.VSet.t) (e : E.t) : comp list =
  match e with
  | E.Singleton h -> [ { quals = []; head = h } ]
  | E.Empty _ -> []
  | E.Union (a, b) -> comps_of bound a @ comps_of bound b
  | E.If (c, b1, None) -> prepend (Pred c) (comps_of bound b1)
  | E.If (c, b1, Some b2) ->
    prepend (Pred c) (comps_of bound b1)
    @ prepend (Pred (E.Not c)) (comps_of bound b2)
  | E.ForUnion (x, src, body) -> gen_of bound x src body
  | E.Var r when not (E.VSet.mem r bound) ->
    let x = E.fresh ~hint:"it" () in
    [ { quals = [ Gen (x, SInput r) ]; head = E.Var x } ]
  | E.Proj _ -> (
    match rooted_path e with
    | Some (v, fields) when E.VSet.mem v bound ->
      let x = E.fresh ~hint:"it" () in
      [ { quals = [ Gen (x, SPath (v, fields)) ]; head = E.Var x } ]
    | _ -> unsupported "bag projection not rooted at a bound variable: %a" E.pp e)
  | E.MatchLabel { label; site; params; body } ->
    prepend_all
      [ BindLabel { label; site; params } ]
      (comps_of
         (List.fold_left (fun s (p, _) -> E.VSet.add p s) bound params)
         body)
  | E.SumBy _ | E.GroupBy _ | E.Dedup _ ->
    let x = E.fresh ~hint:"it" () in
    [ { quals = [ Gen (x, SSub e) ]; head = E.Var x } ]
  | _ -> unsupported "cannot normalize bag expression: %a" E.pp e

and prepend q comps = List.map (fun c -> { c with quals = q :: c.quals }) comps

and prepend_all qs comps =
  List.map (fun c -> { c with quals = qs @ c.quals }) comps

and gen_of bound x src body : comp list =
  let continue_with source =
    prepend (Gen (x, source)) (comps_of (E.VSet.add x bound) body)
  in
  match src with
  | E.Var r when not (E.VSet.mem r bound) -> continue_with (SInput r)
  | E.Proj _ -> (
    match rooted_path src with
    | Some (v, fields) when E.VSet.mem v bound ->
      continue_with (SPath (v, fields))
    | _ -> unsupported "generator over unrooted projection: %a" E.pp src)
  | E.SumBy _ | E.GroupBy _ | E.Dedup _ -> continue_with (SSub src)
  | E.MatLookup (E.Var d, lbl) when not (E.VSet.mem d bound) ->
    (* for x in MatLookup(D, l) union body: scan the flat dictionary and
       filter on its label column; x's field projections remain valid on the
       full row (Section 4, MatLookup translates to a join) *)
    let row = E.fresh ~hint:"row" () in
    let pred = E.Cmp (E.Eq, E.Proj (E.Var row, "label"), lbl) in
    let body' = E.subst x (E.Var row) body in
    prepend_all
      [ Gen (row, SInput d); Pred pred ]
      (comps_of (E.VSet.add row bound) body')
  | E.MatLookup _ ->
    unsupported "MatLookup source must be a named dictionary: %a" E.pp src
  | E.Empty _ -> []
  | E.MatchLabel { label; site; params; body = inner } ->
    (* for x in (match l = L(p) then inner) union body *)
    prepend_all
      [ BindLabel { label; site; params } ]
      (gen_of
         (List.fold_left (fun s (p, _) -> E.VSet.add p s) bound params)
         x inner body)
  | E.Union (s1, s2) ->
    gen_of bound x s1 body @ gen_of bound x s2 body
  | E.Singleton s1 ->
    (* substitution can create new projection/generator redexes *)
    comps_of bound (Nrc.Norm.simplify (E.subst x s1 body))
  | E.ForUnion (y, s1, b1) ->
    (* associativity; freshen y if it would capture in body *)
    let y', b1' =
      if E.is_free y body then begin
        let y' = E.fresh ~hint:y () in
        (y', E.subst y (E.Var y') b1)
      end
      else (y, b1)
    in
    comps_of bound (E.ForUnion (y', s1, E.ForUnion (x, b1', body)))
  | E.If (c, s1, None) ->
    prepend (Pred c) (gen_of bound x s1 body)
  | _ -> unsupported "unsupported generator source: %a" E.pp src

and rooted_path (e : E.t) : (string * string list) option =
  let rec go acc = function
    | E.Var v -> Some (v, acc)
    | E.Proj (e1, a) -> go (a :: acc) e1
    | _ -> None
  in
  go [] e

(* ------------------------------------------------------------------ *)
(* Scalar expression compilation *)

let rec compile_sexpr (e : E.t) : S.t =
  match e with
  | E.Const c -> S.Const (E.const_value c)
  | E.Var x -> S.Col [ x ]
  | E.Proj (E.Record fields, a) -> (
    (* residual beta-redex from substitution *)
    match List.assoc_opt a fields with
    | Some inner -> compile_sexpr inner
    | None -> unsupported "projection %s missing from record" a)
  | E.Proj _ -> (
    match rooted_path e with
    | Some (v, fields) -> S.Col (v :: fields)
    | None -> unsupported "projection not rooted at a variable: %a" E.pp e)
  | E.Prim (op, a, b) -> S.Prim (op, compile_sexpr a, compile_sexpr b)
  | E.Cmp (op, a, b) -> S.Cmp (op, compile_sexpr a, compile_sexpr b)
  | E.Logic (op, a, b) -> S.Logic (op, compile_sexpr a, compile_sexpr b)
  | E.Not a -> S.Not (compile_sexpr a)
  | E.NewLabel { site; args } ->
    S.MkLabel { site; args = List.map compile_sexpr args }
  | E.Record fields ->
    S.MkTuple (List.map (fun (n, x) -> (n, compile_sexpr x)) fields)
  | E.If (c, a, Some b) ->
    (* scalar conditional: encode as presence-free case split is not
       available in the plan sexprs; supported only for boolean scalars *)
    S.Logic
      ( E.Or,
        S.Logic (E.And, compile_sexpr c, compile_sexpr a),
        S.Logic (E.And, S.Not (compile_sexpr c), compile_sexpr b) )
  | _ -> unsupported "not a flat scalar expression: %a" E.pp e

(* ------------------------------------------------------------------ *)
(* Typing helpers: generator environments *)

type tenv = (string * T.t) list

let infer (tenv : tenv) (e : E.t) : T.t =
  Nrc.Typecheck.infer (Nrc.Typecheck.env_of_list tenv) e

let is_bag_expr tenv e =
  match infer tenv e with T.TBag _ -> true | _ -> false

(* Field accessor over a head expression *)
let head_field (head : E.t) (field : string) : E.t =
  match head with
  | E.Record fields -> (
    match List.assoc_opt field fields with
    | Some e -> e
    | None -> unsupported "head has no attribute %s" field)
  | E.Var x -> E.Proj (E.Var x, field)
  | _ -> unsupported "cannot project attribute %s from head %a" field E.pp head

let head_fields tenv (head : E.t) : (string * E.t) list =
  match head with
  | E.Record fields -> fields
  | E.Var _ | E.Proj _ -> (
    match infer tenv head with
    | T.TTuple fields -> List.map (fun (n, _) -> (n, head_field head n)) fields
    | _ -> unsupported "head %a is not a tuple" E.pp head)
  | _ -> unsupported "cannot enumerate fields of head %a" E.pp head

(* ------------------------------------------------------------------ *)
(* Qualifier compilation *)

type quals_result = {
  plan : Op.t;
  genv : tenv; (* generator variables and their element types *)
  presence_parts : S.t list; (* outer mode: residual predicates + witnesses *)
}

let conj = function
  | [] -> S.Const (Nrc.Value.Bool true)
  | p :: ps -> List.fold_left (fun a b -> S.Logic (E.And, a, b)) p ps

(* split a predicate into equality conjuncts usable as join keys between the
   existing columns [have] and the new binder [x], plus a residual *)
let rec split_join_preds have x (e : E.t) : (S.t * S.t) list * E.t list =
  match e with
  | E.Logic (E.And, a, b) ->
    let k1, r1 = split_join_preds have x a in
    let k2, r2 = split_join_preds have x b in
    (k1 @ k2, r1 @ r2)
  | E.Cmp (E.Eq, a, b) ->
    let fv_in vars ex = E.VSet.subset (E.free_vars ex) vars in
    let have_set = E.VSet.of_list have in
    let xset = E.VSet.singleton x in
    if fv_in have_set a && fv_in xset b then
      ([ (compile_sexpr a, compile_sexpr b) ], [])
    else if fv_in have_set b && fv_in xset a then
      ([ (compile_sexpr b, compile_sexpr a) ], [])
    else ([], [ e ])
  | _ -> ([], [ e ])

(* Is this predicate evaluable given the bound variables? *)
let pred_ready bound (e : E.t) =
  E.VSet.subset (E.free_vars e) (E.VSet.of_list bound)

let compile_quals ~outer ~tenv (start : (Op.t * tenv) option)
    (quals : qual list) (sub_translate : E.t -> Op.t) : quals_result =
  let plan, genv =
    match start with Some (p, g) -> (Some p, g) | None -> (None, [])
  in
  let presence = ref [] in
  let bound_cols g = List.map fst g in
  let rec go plan genv quals =
    match quals with
    | [] -> (plan, genv)
    | Gen (x, src) :: rest ->
      let x_ty, right_plan =
        match src with
        | SInput r -> (
          match List.assoc_opt r tenv with
          | Some (T.TBag elem) -> (elem, Op.Scan { input = r; binder = x })
          | Some t ->
            unsupported "input %s is not a bag (type %a)" r T.pp t
          | None -> unsupported "unknown input %s" r)
        | SPath (v, fields) -> (
          match List.assoc_opt v genv with
          | None -> unsupported "generator path over unbound variable %s" v
          | Some vt ->
            let t = List.fold_left T.field vt fields in
            (match t with
            | T.TBag elem -> (elem, Op.Nil []) (* placeholder, handled below *)
            | _ -> unsupported "path %s.%s is not a bag" v (String.concat "." fields)))
        | SSub sub ->
          let fv = E.free_vars sub in
          let bound_gen = E.VSet.of_list (bound_cols genv) in
          if not (E.VSet.is_empty (E.VSet.inter fv bound_gen)) then
            unsupported "correlated subquery generator: %a" E.pp sub;
          let sub_ty =
            match infer tenv sub with
            | T.TBag elem -> elem
            | t -> unsupported "subquery is not a bag: %a" T.pp t
          in
          let p = sub_translate sub in
          let p =
            match Op.columns p with
            | [ c ] when c = x -> p
            | [ c ] -> Op.Project ([ (x, S.Col [ c ]) ], p)
            | cols ->
              Op.Project
                ([ (x, S.MkTuple (List.map (fun c -> (c, S.Col [ c ])) cols)) ], p)
          in
          (sub_ty, p)
      in
      let genv' = genv @ [ (x, x_ty) ] in
      (match src, plan with
      | SPath (v, fields), Some p ->
        if outer then presence := S.Not (S.IsNull (S.Col [ x ])) :: !presence;
        go
          (Some (Op.Unnest { input = p; path = v :: fields; binder = x; outer; drop = false }))
          genv' rest
      | SPath (v, _), None ->
        unsupported "unnest of %s.* with no enclosing plan" v
      | (SInput _ | SSub _), None -> go (Some right_plan) genv' rest
      | (SInput _ | SSub _), Some p ->
        (* extract equality predicates linking x to existing columns *)
        let have = bound_cols genv in
        let keys = ref [] in
        let rest' =
          List.concat_map
            (fun q ->
              match q with
              | Pred c when pred_ready (x :: have) c ->
                let ks, residual = split_join_preds have x c in
                keys := !keys @ ks;
                List.map (fun r -> Pred r) residual
              | q -> [ q ])
            rest
        in
        if outer then presence := S.Not (S.IsNull (S.Col [ x ])) :: !presence;
        let joined =
          match !keys with
          | [] ->
            if outer then
              Op.Join
                { left = p; right = right_plan;
                  lkey = [ S.Const (Nrc.Value.Int 1) ];
                  rkey = [ S.Const (Nrc.Value.Int 1) ];
                  kind = Op.LeftOuter }
            else Op.Product (p, right_plan)
          | ks ->
            Op.Join
              { left = p; right = right_plan;
                lkey = List.map fst ks;
                rkey = List.map snd ks;
                kind = (if outer then Op.LeftOuter else Op.Inner) }
        in
        go (Some joined) genv' rest')
    | Pred c :: rest ->
      if not (pred_ready (bound_cols genv) c) then
        unsupported "predicate %a references unbound variables" E.pp c;
      let s = compile_sexpr c in
      if outer then begin
        presence := s :: !presence;
        go plan genv rest
      end
      else begin
        match plan with
        | Some p -> go (Some (Op.Select (s, p))) genv rest
        | None -> (
          (* constant predicate before any generator: defer via UnitRow *)
          match rest with
          | [] -> (Some (Op.Select (s, Op.UnitRow)), genv)
          | _ ->
            let plan', genv' = go plan genv rest in
            (match plan' with
            | Some p -> (Some (Op.Select (s, p)), genv')
            | None -> (Some (Op.Select (s, Op.UnitRow)), genv')))
      end
    | BindLabel { label; site; params } :: rest ->
      let p =
        match plan with
        | Some p -> p
        | None -> unsupported "label match with no enclosing plan"
      in
      let lbl = compile_sexpr label in
      let passthrough =
        List.map (fun c -> (c, S.Col [ c ])) (Op.columns p)
      in
      let bindings =
        List.mapi (fun i (prm, _) -> (prm, S.LabelArg (lbl, i))) params
      in
      let projected = Op.Project (passthrough @ bindings, p) in
      let guard = S.IsLabelSite (lbl, site) in
      let p' =
        if outer then begin
          presence := guard :: !presence;
          projected
        end
        else Op.Select (guard, projected)
      in
      go (Some p') (genv @ List.map (fun (prm, t) -> (prm, t)) params) rest
  in
  let plan, genv = go plan genv quals in
  match plan with
  | Some p -> { plan = p; genv; presence_parts = List.rev !presence }
  | None -> { plan = Op.UnitRow; genv; presence_parts = List.rev !presence }

(* ------------------------------------------------------------------ *)
(* Head and level compilation *)

let fresh_id () = E.fresh ~hint:"id" ()

(* Split head record fields into scalar-valued and bag-valued ones. Only
   Record heads are decomposed; Var/Proj heads pass whole values through. *)
let split_head_fields tenv genv head =
  match head with
  | E.Record fields ->
    Some (List.partition (fun (_, e) -> not (is_bag_expr (tenv @ genv) e)) fields)
  | _ -> None

let rec translate_root ~(tenv : tenv) (e : E.t) : Op.t =
  let e = Nrc.Norm.simplify e in
  translate_bag ~tenv e

and translate_bag ~tenv (e : E.t) : Op.t =
  match e with
  | E.SumBy { input; keys; values } ->
    translate_agg ~tenv ~g:[] ~start:None input (fun r hf ->
        Op.NestSum
          { input = r.plan;
            keys = [];
            agg_keys = List.map (fun k -> (k, hf k)) keys;
            aggs = List.map (fun v -> (v, hf v)) values;
            presence = conj r.presence_parts })
  | E.GroupBy { input; keys; group_attr } ->
    translate_agg ~tenv ~g:[] ~start:None input (fun r hf ->
        let rest =
          rest_fields ~tenv r input keys
        in
        Op.NestBag
          { input = r.plan;
            keys = [];
            agg_keys = List.map (fun k -> (k, hf k)) keys;
            item = S.MkTuple (List.map (fun f -> (f, hf f)) rest);
            presence = conj r.presence_parts;
            out = group_attr })
  | E.Dedup inner -> Op.Dedup (translate_bag ~tenv (Nrc.Norm.simplify inner))
  | E.Union (a, b) ->
    Op.UnionAll (translate_bag ~tenv a, translate_bag ~tenv b)
  | E.Empty _ -> Op.Nil [ "item" ]
  | _ ->
    let comps = comps_of E.VSet.empty e in
    let plans = List.map (compile_comp_root ~tenv) comps in
    (match plans with
    | [] -> Op.Nil [ "item" ]
    | [ p ] -> p
    | p :: ps -> List.fold_left (fun a b -> Op.UnionAll (a, b)) p ps)

(* the non-key attributes of the head of an aggregate input *)
and rest_fields ~tenv r input keys =
  match comps_of (E.VSet.of_list (List.map fst r.genv)) input with
  | c :: _ ->
    let fields = head_fields (tenv @ r.genv) c.head in
    List.filter_map (fun (n, _) -> if List.mem n keys then None else Some n) fields
  | [] -> unsupported "groupBy over an empty union"

(* Compile an aggregate input; [finish] receives the compiled qualifiers
   and a head-field accessor. A union of comprehensions at the root is
   compiled branch-per-branch, aligned by projection, and aggregated once
   over the union. *)
and translate_agg ~tenv ~g ~start input finish =
  match comps_of (E.VSet.of_list (List.map fst (match start with Some (_, ge) -> ge | None -> []))) input with
  | [ c ] ->
    let outer = Option.is_some start in
    let r =
      compile_quals ~outer ~tenv start c.quals (fun sub ->
          translate_bag ~tenv sub)
    in
    ignore g;
    let hf field = compile_sexpr (head_field c.head field) in
    let hf field =
      match c.head with
      | E.Var x when not (List.mem_assoc x r.genv) ->
        unsupported "aggregate head variable %s unbound" x
      | _ -> hf field
    in
    finish r hf
  | [] -> Op.Nil [ "item" ]
  | c0 :: _ as comps when start = None ->
    (* aggregate over a union at the root: project each branch to the head
       fields, union, aggregate the union *)
    let r0 =
      compile_quals ~outer:false ~tenv None c0.quals (fun sub ->
          translate_bag ~tenv sub)
    in
    let field_names = List.map fst (head_fields (tenv @ r0.genv) c0.head) in
    let branch (c : comp) =
      let r =
        compile_quals ~outer:false ~tenv None c.quals (fun sub ->
            translate_bag ~tenv sub)
      in
      Op.Project
        ( List.map (fun f -> (f, compile_sexpr (head_field c.head f))) field_names,
          r.plan )
    in
    let unioned =
      match List.map branch comps with
      | [] -> assert false
      | p :: ps -> List.fold_left (fun a b -> Op.UnionAll (a, b)) p ps
    in
    finish
      { plan = unioned; genv = []; presence_parts = [] }
      (fun field -> S.Col [ field ])
  | _ -> unsupported "aggregate over a union inside a nested attribute"

and compile_comp_root ~tenv (c : comp) : Op.t =
  let r =
    compile_quals ~outer:false ~tenv None c.quals (fun sub ->
        translate_bag ~tenv sub)
  in
  match split_head_fields tenv r.genv c.head with
  | None -> Op.Project ([ ("item", compile_sexpr c.head) ], r.plan)
  | Some (fields, []) ->
    Op.Project (List.map (fun (n, e) -> (n, compile_sexpr e)) fields, r.plan)
  | Some (scalars, bags) ->
    let id = fresh_id () in
    let plan1 = Op.AddIndex { input = r.plan; col = id } in
    let g =
      (id, S.Col [ id ])
      :: List.map (fun (n, e) -> (n, compile_sexpr e)) scalars
    in
    let plan2 = compile_bag_fields ~tenv ~genv:r.genv ~g plan1 bags in
    (* drop the index, keep declared field order *)
    let out_fields =
      List.map
        (fun (n, _) -> (n, S.Col [ n ]))
        (head_fields (tenv @ r.genv) c.head)
    in
    Op.Project (out_fields, plan2)

(* Compile the bag-valued attributes of one nesting level, sequentially.
   [g] is the grouping-attribute set for this level (including the unique
   id); each field closes with its Gamma whose keys are [g] (refreshed to
   column references after the first nest). Returns a plan whose columns are
   the [g] names plus one column per bag field. *)
and compile_bag_fields ~tenv ~genv ~g plan bags : Op.t =
  match bags with
  | [] -> plan
  | [ (name, bexpr) ] -> compile_bag_field ~tenv ~genv ~g plan name bexpr
  | (name, bexpr) :: rest ->
    (* Multiple bag-valued attributes at one level: close the first field's
       Gamma with a grouping set extended by the generator variables the
       remaining fields still reference — whole tuple columns group safely
       because the unique id is already among the keys. Later fields then
       compile against the nested result (one row per group), carrying the
       earlier bag columns through subsequent Gammas as additional keys. *)
    let rest_vars =
      let fv =
        List.fold_left
          (fun acc (_, e) -> E.VSet.union acc (E.free_vars e))
          E.VSet.empty rest
      in
      List.filter
        (fun (v, _) -> E.VSet.mem v fv && not (List.mem_assoc v g))
        genv
    in
    let g_ext = g @ List.map (fun (v, _) -> (v, S.Col [ v ])) rest_vars in
    let plan' = compile_bag_field ~tenv ~genv ~g:g_ext plan name bexpr in
    (* after the nest: columns are the g_ext names plus [name]; keep the
       fresh bag column as a key of the following fields' Gammas *)
    let g_next =
      List.map (fun (n, _) -> (n, S.Col [ n ])) g_ext
      @ [ (name, S.Col [ name ]) ]
    in
    let genv_next =
      List.filter (fun (v, _) -> List.mem_assoc v rest_vars) genv
    in
    compile_bag_fields ~tenv ~genv:genv_next ~g:g_next plan' rest

and compile_bag_field ~tenv ~genv ~g plan out (bexpr : E.t) : Op.t =
  let refreshed = List.map (fun (n, _) -> (n, S.Col [ n ])) g in
  match bexpr with
  (* shortcut: copying an existing bag column (or a path into one) *)
  | E.Proj _ when rooted_path bexpr <> None ->
    let v, fields = Option.get (rooted_path bexpr) in
    if List.mem_assoc v genv then
      Op.Project
        (List.map (fun (n, e) -> (n, e)) g @ [ (out, S.Col (v :: fields)) ], plan)
    else unsupported "bag field path on unbound %s" v
  | E.Empty _ ->
    Op.Project (g @ [ (out, S.Const (Nrc.Value.Bag [])) ], plan)
  | E.SumBy { input; keys; values } ->
    translate_agg ~tenv ~g ~start:(Some (plan, genv)) input (fun r hf ->
        let nest1 =
          Op.NestSum
            { input = r.plan;
              keys = g;
              agg_keys = List.map (fun k -> (k, hf k)) keys;
              aggs = List.map (fun v -> (v, hf v)) values;
              presence = conj r.presence_parts }
        in
        let first_key = List.hd keys in
        Op.NestBag
          { input = nest1;
            keys = refreshed;
            agg_keys = [];
            item =
              S.MkTuple
                (List.map (fun k -> (k, S.Col [ k ])) keys
                @ List.map (fun v -> (v, S.Col [ v ])) values);
            presence = S.Not (S.IsNull (S.Col [ first_key ]));
            out })
  | E.GroupBy { input; keys; group_attr } ->
    translate_agg ~tenv ~g ~start:(Some (plan, genv)) input (fun r hf ->
        let rest = rest_fields ~tenv r input keys in
        let nest1 =
          Op.NestBag
            { input = r.plan;
              keys = g;
              agg_keys = List.map (fun k -> (k, hf k)) keys;
              item = S.MkTuple (List.map (fun f -> (f, hf f)) rest);
              presence = conj r.presence_parts;
              out = group_attr }
        in
        let first_key = List.hd keys in
        Op.NestBag
          { input = nest1;
            keys = refreshed;
            agg_keys = [];
            item =
              S.MkTuple
                (List.map (fun k -> (k, S.Col [ k ])) keys
                @ [ (group_attr, S.Col [ group_attr ]) ]);
            presence = S.Not (S.IsNull (S.Col [ first_key ]));
            out })
  | _ -> (
    match comps_of (E.VSet.of_list (List.map fst genv)) bexpr with
    | [] -> Op.Project (g @ [ (out, S.Const (Nrc.Value.Bag [])) ], plan)
    | [ c ] -> compile_level_comp ~tenv ~genv ~g ~refreshed plan out c
    | _ -> unsupported "union inside a nested bag attribute")

(* one comprehension producing the items of a nested bag attribute *)
and compile_level_comp ~tenv ~genv ~g ~refreshed plan out (c : comp) : Op.t =
  let r =
    compile_quals ~outer:true ~tenv (Some (plan, genv)) c.quals (fun sub ->
        translate_bag ~tenv sub)
  in
  let presence = conj r.presence_parts in
  match split_head_fields tenv r.genv c.head with
  | None ->
    Op.NestBag
      { input = r.plan; keys = g; agg_keys = [];
        item = compile_sexpr c.head; presence; out }
  | Some (fields, []) ->
    let item = S.MkTuple (List.map (fun (n, e) -> (n, compile_sexpr e)) fields) in
    Op.NestBag
      { input = r.plan; keys = g; agg_keys = []; item; presence; out }
  | Some (scalars, bags) ->
    (* a deeper nesting level *)
    let id = fresh_id () in
    let pres_col = E.fresh ~hint:"present" () in
    let plan1 = Op.AddIndex { input = r.plan; col = id } in
    let g' =
      g
      @ [ (id, S.Col [ id ]); (pres_col, presence) ]
      @ List.map (fun (n, e) -> (n, compile_sexpr e)) scalars
    in
    let plan2 = compile_bag_fields ~tenv ~genv:r.genv ~g:g' plan1 bags in
    let field_order = head_fields (tenv @ r.genv) c.head in
    Op.NestBag
      { input = plan2;
        keys = refreshed;
        agg_keys = [];
        item =
          S.MkTuple (List.map (fun (n, _) -> (n, S.Col [ n ])) field_order);
        presence = S.Col [ pres_col ];
        out }

(* ------------------------------------------------------------------ *)
(* Entry points *)

(** Translate a bag-typed NRC expression to a plan. [tenv] gives the types of
    named datasets (program inputs and previously assigned variables). *)
let translate ~(tenv : (string * T.t) list) (e : E.t) : Op.t =
  translate_root ~tenv e

(** Translate every assignment of a program; the type environment grows with
    each assignment. Returns the per-assignment plans in order. *)
let translate_program (p : Nrc.Program.t) : (string * Op.t) list =
  let _, rev =
    List.fold_left
      (fun (tenv, acc) { Nrc.Program.target; body } ->
        let plan = translate ~tenv body in
        let ty = infer tenv body in
        ((target, ty) :: tenv, (target, plan) :: acc))
      (p.Nrc.Program.inputs, [])
      p.Nrc.Program.assignments
  in
  List.rev rev
