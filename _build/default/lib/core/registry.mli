(** Registry of materialized dictionary names: maps (dataset, attribute
    path) to the concrete dataset holding that dictionary. By default a
    dictionary lives under its canonical name [<dataset>_D_<path>]; the
    materializer records aliases when an output level reuses an input
    dictionary unchanged (Section 4: "The first two output levels are those
    from the shredded input"). *)

type t

val create : unit -> t

val resolve : t -> string -> string list -> string
(** The dataset name holding the dictionary of [dataset] at [path]. *)

val record : t -> string -> string list -> string -> unit
(** Record that the dictionary of [dataset] at [path] lives in the given
    dataset (an alias, or a freshly materialized dictionary). *)

val is_alias : t -> string -> string list -> bool
