(** The shredded compilation pipeline (Section 4) for whole programs:
    symbolic shredding, materialization with domain elimination, and
    optional unshredding. The result is an ordinary flat NRC program over
    shredded datasets, ready for the same unnesting / execution stages as
    the standard route. *)

type t = {
  source : Nrc.Program.t;
  mat : Nrc.Program.t;
      (** materialized program: inputs are the shredded datasets; one
          assignment per top bag / dictionary / label domain *)
  registry : Registry.t;
  result : string;  (** the source program's result variable *)
  top : string;  (** dataset holding the result's top bag *)
  dicts : (string list * string) list;  (** result dict path -> dataset *)
  output_ty : Nrc.Types.t;  (** original type of the result *)
  unshred_query : Nrc.Expr.t option;  (** [None] when the output is flat *)
}

val shred_program : ?config:Materialize.config -> Nrc.Program.t -> t

val eval_shredded :
  ?config:Materialize.config ->
  Nrc.Program.t ->
  (string * Nrc.Value.t) list ->
  t * Nrc.Eval.env * Nrc.Value.t
(** Single-node reference evaluation of the shredded route: shred the input
    values, run the materialized program with the NRC interpreter, unshred.
    The oracle for the distributed shredded execution. *)
