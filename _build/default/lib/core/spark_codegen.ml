(** Spark code generation (Section 3, "Code Generation"): renders a plan as
    the Scala/Spark-Dataset program the paper's system would emit — one
    [val] binding per operator, Dataset column expressions for the scalar
    layer, [explode]/[explode_outer] for the unnest operators,
    [monotonically_increasing_id] for the unique IDs, [groupBy] with
    [collect_list(struct(...))] or [sum(when(...))] for the Gamma
    operators, and [repartition($"label")] for BagToDict.

    The emitted text cannot be executed in this sealed environment (that is
    the simulator's job — see DESIGN.md); it exists so the compilation
    output is inspectable in the terms the paper uses, and it is covered by
    golden tests on its structure. *)

module E = Nrc.Expr
module Op = Plan.Op
module S = Plan.Sexpr

let fresh_val =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "ds%d" !c

(* Spark column expression for a scalar expression *)
let rec col_expr (e : S.t) : string =
  match e with
  | S.Col path -> Printf.sprintf "$\"%s\"" (String.concat "." path)
  | S.Const v -> const v
  | S.Prim (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (col_expr a) (E.prim_to_string op) (col_expr b)
  | S.Cmp (E.Eq, a, b) ->
    Printf.sprintf "(%s === %s)" (col_expr a) (col_expr b)
  | S.Cmp (E.Ne, a, b) ->
    Printf.sprintf "(%s =!= %s)" (col_expr a) (col_expr b)
  | S.Cmp (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (col_expr a) (E.cmp_to_string op) (col_expr b)
  | S.Logic (E.And, a, b) ->
    Printf.sprintf "(%s && %s)" (col_expr a) (col_expr b)
  | S.Logic (E.Or, a, b) ->
    Printf.sprintf "(%s || %s)" (col_expr a) (col_expr b)
  | S.Not a -> Printf.sprintf "!%s" (col_expr a)
  | S.IsNull a -> Printf.sprintf "%s.isNull" (col_expr a)
  | S.MkLabel { site; args } ->
    Printf.sprintf "struct(lit(%d).as(\"site\")%s)" site
      (String.concat ""
         (List.mapi
            (fun i a -> Printf.sprintf ", %s.as(\"arg%d\")" (col_expr a) i)
            args))
  | S.LabelArg (a, i) -> Printf.sprintf "%s.getField(\"arg%d\")" (col_expr a) i
  | S.IsLabelSite (a, site) ->
    Printf.sprintf "(%s.getField(\"site\") === %d)" (col_expr a) site
  | S.MkTuple fields ->
    Printf.sprintf "struct(%s)"
      (String.concat ", "
         (List.map (fun (n, x) -> Printf.sprintf "%s.as(\"%s\")" (col_expr x) n) fields))

and const (v : Nrc.Value.t) : string =
  match v with
  | Nrc.Value.Int i -> Printf.sprintf "lit(%d)" i
  | Nrc.Value.Real r -> Printf.sprintf "lit(%g)" r
  | Nrc.Value.Str s -> Printf.sprintf "lit(%S)" s
  | Nrc.Value.Bool b -> Printf.sprintf "lit(%b)" b
  | Nrc.Value.Date d -> Printf.sprintf "lit(%d) /* date */" d
  | Nrc.Value.Null -> "lit(null)"
  | Nrc.Value.Bag [] -> "array()"
  | v -> Printf.sprintf "lit(%S)" (Nrc.Value.to_string v)

let named_cols fields =
  String.concat ", "
    (List.map (fun (n, e) -> Printf.sprintf "%s.as(\"%s\")" (col_expr e) n) fields)

(** Emit the Scala for one plan; returns (lines, final val name). *)
let rec emit (buf : Buffer.t) (op : Op.t) : string =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  match op with
  | Op.Nil _ ->
    let v = fresh_val () in
    line "val %s = spark.emptyDataset  // Nil" v;
    v
  | Op.UnitRow ->
    let v = fresh_val () in
    line "val %s = spark.range(1).drop(\"id\")  // one empty row" v;
    v
  | Op.Scan { input; binder } ->
    let v = fresh_val () in
    line "val %s = %s.select(struct($\"*\").as(\"%s\"))" v input binder;
    v
  | Op.Select (p, c) ->
    let c' = emit buf c in
    let v = fresh_val () in
    line "val %s = %s.filter(%s)" v c' (col_expr p);
    v
  | Op.Project (fields, c) ->
    let c' = emit buf c in
    let v = fresh_val () in
    line "val %s = %s.select(%s)" v c' (named_cols fields);
    v
  | Op.Join { left; right; lkey; rkey; kind } ->
    let l = emit buf left in
    let r = emit buf right in
    let v = fresh_val () in
    let cond =
      String.concat " && "
        (List.map2
           (fun a b -> Printf.sprintf "%s === %s" (col_expr a) (col_expr b))
           lkey rkey)
    in
    line "val %s = %s.join(%s, %s, \"%s\")" v l r cond
      (match kind with Op.Inner -> "inner" | Op.LeftOuter -> "left_outer");
    v
  | Op.Product (l0, r0) ->
    let l = emit buf l0 in
    let r = emit buf r0 in
    let v = fresh_val () in
    line "val %s = %s.crossJoin(broadcast(%s))" v l r;
    v
  | Op.Unnest { input; path; binder; outer; drop } ->
    let c = emit buf input in
    let v = fresh_val () in
    let fn = if outer then "explode_outer" else "explode" in
    let dropped =
      if drop then Printf.sprintf ".drop($\"%s\")" (String.concat "." path)
      else ""
    in
    line "val %s = %s.select($\"*\", %s($\"%s\").as(\"%s\"))%s" v c fn
      (String.concat "." path) binder dropped;
    v
  | Op.AddIndex { input; col } ->
    let c = emit buf input in
    let v = fresh_val () in
    line "val %s = %s.withColumn(\"%s\", monotonically_increasing_id())" v c col;
    v
  | Op.NestBag { input; keys; agg_keys; item; presence; out } ->
    let c = emit buf input in
    let v = fresh_val () in
    let gb = named_cols (keys @ agg_keys) in
    line
      "val %s = %s.groupBy(%s).agg(collect_list(when(%s, %s)).as(\"%s\"))  // \
       Gamma-union; NULL casts to empty bag"
      v c gb (col_expr presence) (col_expr item) out;
    v
  | Op.NestSum { input; keys; agg_keys; aggs; presence } ->
    let c = emit buf input in
    let v = fresh_val () in
    let gb = named_cols (keys @ agg_keys) in
    let sums =
      String.concat ", "
        (List.map
           (fun (n, e) ->
             Printf.sprintf "sum(when(%s, %s).otherwise(0)).as(\"%s\")"
               (col_expr presence) (col_expr e) n)
           aggs)
    in
    line "val %s = %s.groupBy(%s).agg(%s)  // Gamma-plus; NULL casts to 0" v c
      gb sums;
    v
  | Op.Dedup c0 ->
    let c = emit buf c0 in
    let v = fresh_val () in
    line "val %s = %s.distinct()" v c;
    v
  | Op.UnionAll (l0, r0) ->
    let l = emit buf l0 in
    let r = emit buf r0 in
    let v = fresh_val () in
    line "val %s = %s.unionByName(%s)" v l r;
    v
  | Op.BagToDict { input; label } ->
    let c = emit buf input in
    let v = fresh_val () in
    line "val %s = %s.repartition(%s)  // BagToDict: label partitioning guarantee"
      v c (col_expr label);
    v

(** Render a whole plan as a Scala snippet assigning the result to [name]. *)
let plan_to_scala ~name (op : Op.t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "// ---- %s ----\n" name);
  let last = emit buf op in
  Buffer.add_string buf (Printf.sprintf "val %s = %s\n" name last);
  Buffer.contents buf

(** Render the compiled assignments of a program (either route). *)
let assignments_to_scala (plans : (string * Op.t) list) : string =
  String.concat "\n" (List.map (fun (n, p) -> plan_to_scala ~name:n p) plans)
