(** The unnesting stage (Section 3): translates NRC expressions into query
    plans, following the variant of Fegaras and Maier's algorithm described
    in the paper — comprehension normal form, join detection from equality
    predicates, outer joins/unnests with unique-ID insertion at each
    nesting level, and closing Gamma operators keyed by the
    grouping-attribute set G.

    At non-root levels, residual predicates fold into the closing nest's
    presence predicate rather than becoming selections: a filtered-out row
    must keep its group alive with an empty bag / zero sum (the
    NULL-casting behaviour of Section 2). *)

exception Unsupported of string
(** Raised on constructs outside the supported fragment (multiple
    bag-valued attributes per level, unions inside nested attributes,
    correlated subquery generators, [get] at bag positions) with a
    descriptive message. *)

val translate : tenv:(string * Nrc.Types.t) list -> Nrc.Expr.t -> Plan.Op.t
(** Translate a bag-typed expression; [tenv] types the named datasets
    (program inputs and previously assigned variables). *)

val translate_program : Nrc.Program.t -> (string * Plan.Op.t) list
(** One plan per assignment; the type environment grows along the way. *)
