lib/core/shred_type.mli: Format Nrc
