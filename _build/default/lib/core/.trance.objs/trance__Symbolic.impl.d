lib/core/symbolic.ml: Fmt List Nrc Option Printf Registry Set Shred_type String
