lib/core/cost.mli: Api Nrc Plan
