lib/core/spark_codegen.ml: Buffer List Nrc Plan Printf String
