lib/core/unnest.ml: Fmt List Nrc Option Plan String
