lib/core/spark_codegen.mli: Plan
