lib/core/symbolic.mli: Nrc Registry Set
