lib/core/cost.ml: Api Float List Nrc Plan Shred_value
