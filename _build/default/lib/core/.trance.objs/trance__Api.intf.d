lib/core/api.mli: Exec Format Materialize Nrc Plan Shred_pipeline
