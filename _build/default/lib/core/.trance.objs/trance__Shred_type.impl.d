lib/core/shred_type.ml: Fmt Hashtbl List Nrc Option String
