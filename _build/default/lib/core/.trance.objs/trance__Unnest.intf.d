lib/core/unnest.mli: Nrc Plan
