lib/core/shred_pipeline.mli: Materialize Nrc Registry
