lib/core/shred_value.ml: Hashtbl List Nrc Shred_type String
