lib/core/materialize.ml: List Nrc Option Registry SSet Shred_type String Symbolic
