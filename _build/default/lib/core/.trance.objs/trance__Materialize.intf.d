lib/core/materialize.mli: Nrc Registry Symbolic
