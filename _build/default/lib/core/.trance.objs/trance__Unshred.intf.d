lib/core/unshred.mli: Nrc Registry
