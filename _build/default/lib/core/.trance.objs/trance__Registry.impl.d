lib/core/registry.ml: Hashtbl Shred_type String
