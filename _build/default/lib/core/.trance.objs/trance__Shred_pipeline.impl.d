lib/core/shred_pipeline.ml: List Materialize Nrc Registry Shred_type Shred_value Symbolic Unshred
