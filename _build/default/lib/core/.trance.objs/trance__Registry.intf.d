lib/core/registry.mli:
