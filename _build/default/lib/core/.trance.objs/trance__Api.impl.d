lib/core/api.ml: Buffer Char Exec Fmt Hashtbl List Materialize Nrc Option Plan Printf Shred_pipeline Shred_type Shred_value String Unix Unnest
