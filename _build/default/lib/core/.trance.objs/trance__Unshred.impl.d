lib/core/unshred.ml: List Nrc Registry Shred_type Symbolic
