lib/core/shred_value.mli: Nrc
