(** Materialization (Section 4, Figure 5): turn the symbolic dictionaries of
    {!Symbolic} into a sequence of label-free assignments computing flat
    datasets — the top bag plus one flat dictionary per output level.

    Dictionaries are emitted directly in their flat form (label column +
    item columns), so each assignment is an ordinary NRC expression that the
    unnesting stage compiles like any other; per-label [match] loops become
    label joins and localized (per-label) aggregation becomes a global
    aggregation with the label added to the key.

    Domain elimination (Section 4) is applied per symbolic dictionary:

    - {b rule 1}: a dictionary whose body only dereferences its label in an
      existing dictionary is computed by a direct scan of that dictionary
      (with the sumBy/dedup extensions of Example 6);
    - {b rule 2}: a dictionary whose label captures a scalar used only as an
      equality filter is computed from the filtered relation itself, turning
      the captured variable from free to bound.

    Output levels that alias an input dictionary (label reuse) are recorded
    in the {!Registry} and cost nothing. *)

module E = Nrc.Expr
module T = Nrc.Types

open Shred_type
open Symbolic

type config = { domain_elimination : bool }

let default = { domain_elimination = true }

type result = {
  assignments : (string * E.t) list; (* in dependency order *)
  top : string;
  dicts : (string list * string) list; (* output dict path -> dataset name *)
}

(* does [e] use variable [y] other than through field projections? *)
let uses_whole y (e : E.t) =
  List.exists
    (fun (v, u) -> v = y && u = Whole)
    (used_paths (SSet.singleton y) e)

let record_fields_of item_ty w =
  match item_ty with
  | T.TTuple fields -> List.map (fun (n, _) -> (n, E.Proj (E.Var w, n))) fields
  | _ ->
    raise
      (Unsupported_shredding
         "shredded dictionaries require tuple-valued inner bags")

(* <label := lbl, f1 := w.f1, ...> *)
let dict_row lbl item_ty w = E.Record (("label", lbl) :: record_fields_of item_ty w)

(* ------------------------------------------------------------------ *)
(* Domain elimination rule 1: body dereferences only its own label *)

type rule1_shape =
  | R1_plain of { y : string; dict : string; rest : E.t }
  | R1_sum of { y : string; dict : string; rest : E.t; keys : string list; values : string list }
  | R1_dedup of { y : string; dict : string; rest : E.t }

let match_rule1 (lam : lam) : rule1_shape option =
  match lam.params with
  | [ (p, T.TLabel) ] -> (
    let lookup_loop = function
      | E.ForUnion (y, E.MatLookup (E.Var d, E.Var p'), rest)
        when p' = p && (not (E.is_free p rest)) && not (uses_whole y rest) ->
        Some (y, d, rest)
      | _ -> None
    in
    match lam.body with
    | E.SumBy { input; keys; values } ->
      Option.map
        (fun (y, dict, rest) -> R1_sum { y; dict; rest; keys; values })
        (lookup_loop input)
    | E.Dedup input ->
      Option.map
        (fun (y, dict, rest) -> R1_dedup { y; dict; rest })
        (lookup_loop input)
    | body ->
      Option.map (fun (y, dict, rest) -> R1_plain { y; dict; rest }) (lookup_loop body)
    )
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Domain elimination rule 2: the label captures scalars used as equality
   filters on a generator *)

type rule2_shape = {
  y : string;
  src : E.t;
  key_attrs : string list; (* y attributes equated with params, param order *)
  rest : E.t;
  keys : string list; (* sumBy keys, [] when no aggregate *)
  values : string list;
  aggregate : bool;
}

let match_rule2 (lam : lam) : rule2_shape option =
  let scalar_params =
    List.for_all (fun (_, t) -> T.is_flat t && t <> T.TLabel) lam.params
  in
  if not scalar_params || lam.params = [] then None
  else begin
    let rec conjuncts = function
      | E.Logic (E.And, a, b) -> conjuncts a @ conjuncts b
      | e -> [ e ]
    in
    let match_loop = function
      | E.ForUnion (y, src, E.If (cond, rest, None))
        when List.for_all (fun (p, _) -> not (E.is_free p src)) lam.params
             && List.for_all (fun (p, _) -> not (E.is_free p rest)) lam.params
      -> (
        (* each param must be equated with exactly one y attribute *)
        let eqs = conjuncts cond in
        let attr_of p =
          List.find_map
            (function
              | E.Cmp (E.Eq, E.Proj (E.Var y', a), E.Var p') when y' = y && p' = p ->
                Some a
              | E.Cmp (E.Eq, E.Var p', E.Proj (E.Var y', a)) when y' = y && p' = p ->
                Some a
              | _ -> None)
            eqs
        in
        match
          List.map (fun (p, _) -> attr_of p) lam.params
        with
        | attrs when List.for_all Option.is_some attrs
                     && List.length eqs = List.length lam.params ->
          Some (y, src, List.map Option.get attrs, rest)
        | _ -> None)
      | _ -> None
    in
    match lam.body with
    | E.SumBy { input; keys; values } ->
      Option.map
        (fun (y, src, key_attrs, rest) ->
          { y; src; key_attrs; rest; keys; values; aggregate = true })
        (match_loop input)
    | body ->
      Option.map
        (fun (y, src, key_attrs, rest) ->
          { y; src; key_attrs; rest; keys = []; values = []; aggregate = false })
        (match_loop body)
  end

(* ------------------------------------------------------------------ *)
(* Materialization proper *)

type state = {
  mutable acc : (string * E.t) list; (* reversed assignments *)
  mutable dict_map : (string list * string) list; (* reversed *)
  registry : Registry.t;
  config : config;
  target : string;
}

let emit st name e = st.acc <- (name, e) :: st.acc

(* dictionary expression for a single lambda over a named label domain *)
let general_lam_expr (lam : lam) (dom : string) (item_ty : T.t) : E.t =
  let l = E.fresh ~hint:"l" () in
  let w = E.fresh ~hint:"w" () in
  let matched body =
    if lam.identity then
      (* the domain labels ARE the captured labels: bind the single
         parameter directly, no site dispatch needed *)
      match lam.params with
      | [ (p, _) ] -> E.subst p (E.Proj (E.Var l, "label")) body
      | _ -> assert false
    else
      E.MatchLabel
        { label = E.Proj (E.Var l, "label"); site = lam.site;
          params = lam.params; body }
  in
  let label_e = E.Proj (E.Var l, "label") in
  match lam.body with
  | E.SumBy { input; keys; values } ->
    let row_fields =
      List.map (fun k -> (k, E.Proj (E.Var w, k))) (keys @ values)
    in
    E.SumBy
      { keys = "label" :: keys;
        values;
        input =
          E.ForUnion
            ( l,
              E.Var dom,
              E.ForUnion
                (w, matched input, E.Singleton (E.Record (("label", label_e) :: row_fields)))
            ) }
  | E.Dedup input ->
    E.Dedup
      (E.ForUnion
         ( l,
           E.Var dom,
           E.ForUnion (w, matched input, E.Singleton (dict_row label_e item_ty w)) ))
  | body ->
    E.ForUnion
      ( l,
        E.Var dom,
        E.ForUnion (w, matched body, E.Singleton (dict_row label_e item_ty w)) )

let rule1_expr (shape : rule1_shape) (item_ty : T.t) : E.t =
  let z = E.fresh ~hint:"z" () in
  let w = E.fresh ~hint:"w" () in
  match shape with
  | R1_plain { y; dict; rest } ->
    E.ForUnion
      ( z,
        E.Var dict,
        E.ForUnion
          ( w,
            E.subst y (E.Var z) rest,
            E.Singleton (dict_row (E.Proj (E.Var z, "label")) item_ty w) ) )
  | R1_dedup { y; dict; rest } ->
    E.Dedup
      (E.ForUnion
         ( z,
           E.Var dict,
           E.ForUnion
             ( w,
               E.subst y (E.Var z) rest,
               E.Singleton (dict_row (E.Proj (E.Var z, "label")) item_ty w) ) ))
  | R1_sum { y; dict; rest; keys; values } ->
    let row_fields =
      List.map (fun k -> (k, E.Proj (E.Var w, k))) (keys @ values)
    in
    E.SumBy
      { keys = "label" :: keys;
        values;
        input =
          E.ForUnion
            ( z,
              E.Var dict,
              E.ForUnion
                ( w,
                  E.subst y (E.Var z) rest,
                  E.Singleton
                    (E.Record (("label", E.Proj (E.Var z, "label")) :: row_fields))
                ) ) }

let rule2_expr ~site (shape : rule2_shape) (item_ty : T.t) : E.t =
  let w = E.fresh ~hint:"w" () in
  let label_e =
    E.NewLabel
      { site;
        args = List.map (fun a -> E.Proj (E.Var shape.y, a)) shape.key_attrs }
  in
  if shape.aggregate then
    let row_fields =
      List.map (fun k -> (k, E.Proj (E.Var w, k))) (shape.keys @ shape.values)
    in
    E.SumBy
      { keys = "label" :: shape.keys;
        values = shape.values;
        input =
          E.ForUnion
            ( shape.y,
              shape.src,
              E.ForUnion
                (w, shape.rest, E.Singleton (E.Record (("label", label_e) :: row_fields)))
            ) }
  else
    E.ForUnion
      ( shape.y,
        shape.src,
        E.ForUnion (w, shape.rest, E.Singleton (dict_row label_e item_ty w)) )

(* collect the entries of a dictionary tree, merging unions *)
let rec entries_of (d : dtree) : (string * entry list) list =
  match d with
  | DEmpty -> []
  | DNode entries -> List.map (fun (a, e) -> (a, [ e ])) entries
  | DRef { dataset; path; elem_ty } ->
    List.map
      (fun (a, inner) ->
        ( a,
          [ EAlias (DRef { dataset; path = path @ [ a ]; elem_ty = inner }) ] ))
      (bag_attrs elem_ty)
  | DUnion (d1, d2) ->
    let e1 = entries_of d1 and e2 = entries_of d2 in
    let attrs =
      List.sort_uniq String.compare (List.map fst e1 @ List.map fst e2)
    in
    List.map
      (fun a ->
        ( a,
          (match List.assoc_opt a e1 with Some l -> l | None -> [])
          @ (match List.assoc_opt a e2 with Some l -> l | None -> []) ))
      attrs

(* register aliases for every dictionary reachable below an input subtree *)
let alias_subtree st path (sub : dtree) =
  match sub with
  | DRef { dataset; path = ipath; elem_ty } ->
    List.iter
      (fun p ->
        let resolved = Registry.resolve st.registry dataset (ipath @ p) in
        Registry.record st.registry st.target (path @ p) resolved;
        st.dict_map <- (path @ p, resolved) :: st.dict_map)
      (dict_paths elem_ty)
  | _ ->
    raise
      (Unsupported_shredding
         "aliased dictionary does not refer to a materialized dataset")

let rec mat_dicts st ~parent path (d : dtree) : unit =
  match entries_of d with
  | [] -> ()
  | entries ->
    List.iter
      (fun (a, es) ->
        let sub_path = path @ [ a ] in
        match es with
        | [ EAlias sub ] ->
          let resolved =
            match sub with
            | DRef { dataset; path = ipath; _ } ->
              Registry.resolve st.registry dataset ipath
            | _ ->
              raise
                (Unsupported_shredding "alias to non-materialized dictionary")
          in
          Registry.record st.registry st.target sub_path resolved;
          st.dict_map <- (sub_path, resolved) :: st.dict_map;
          alias_subtree st sub_path sub
        | es ->
          let lams_entries =
            List.map
              (function
                | ELams { lams; child; item_ty } -> (lams, child, item_ty)
                | EAlias _ ->
                  raise
                    (Unsupported_shredding
                       "cannot union an aliased dictionary with a computed one"))
              es
          in
          let item_ty =
            match lams_entries with
            | (_, _, item_ty) :: _ -> item_ty
            | [] -> assert false
          in
          let lams = List.concat_map (fun (lams, _, _) -> lams) lams_entries in
          (* Two pass-through lambdas in one entry could receive the same
             label value with different bodies — ambiguous provenance. A
             single pass-through among site-dispatched lambdas is fine: a
             foreign-site label simply misses in its source dictionary. *)
          if List.length (List.filter (fun l -> l.identity) lams) > 1 then
            raise
              (Unsupported_shredding
                 "union of dictionaries with pass-through labels is ambiguous");
          let name = dict_name st.target sub_path in
          Registry.record st.registry st.target sub_path name;
          st.dict_map <- (sub_path, name) :: st.dict_map;
          emit_dict st ~parent ~name ~sub_path ~item_ty lams;
          let child =
            List.fold_left
              (fun acc (_, child, _) -> union_dtree acc child)
              DEmpty lams_entries
          in
          mat_dicts st ~parent:name sub_path child)
      entries

and emit_dict st ~parent ~name ~sub_path ~item_ty (lams : lam list) : unit =
  let attr = List.nth sub_path (List.length sub_path - 1) in
  match lams with
  | [] ->
    let elem =
      match item_ty with
      | T.TTuple fields -> T.TTuple (("label", T.TLabel) :: fields)
      | _ ->
        raise
          (Unsupported_shredding
             "shredded dictionaries require tuple-valued inner bags")
    in
    emit st name (E.Empty elem)
  | lams ->
    let eliminated =
      if not st.config.domain_elimination then None
      else
        match lams with
        | [ lam ] -> (
          match match_rule1 lam with
          | Some shape -> Some (rule1_expr shape item_ty)
          | None -> (
            match match_rule2 lam with
            | Some shape -> Some (rule2_expr ~site:lam.site shape item_ty)
            | None -> None))
        | _ -> None
    in
    (match eliminated with
    | Some e -> emit st name e
    | None ->
      (* general path: label domain from the parent, then one per-label loop
         per lambda *)
      let dom = domain_name st.target sub_path in
      let x = E.fresh ~hint:"x" () in
      emit st dom
        (E.Dedup
           (E.ForUnion
              ( x,
                E.Var parent,
                E.Singleton (E.Record [ ("label", E.Proj (E.Var x, attr)) ]) )));
      let exprs = List.map (fun lam -> general_lam_expr lam dom item_ty) lams in
      let union =
        match exprs with
        | [] -> assert false
        | e :: es -> List.fold_left (fun a b -> E.Union (a, b)) e es
      in
      emit st name union)

(* ------------------------------------------------------------------ *)

(** Materialize one shredded assignment. [target] is the assignment variable;
    the flat top bag is emitted as [<target>_F] and each symbolic dictionary
    as [<target>_D_<path>] (or recorded as an alias). *)
let materialize ?(config = default) ~registry ~target ((eF, dt) : E.t * dtree) :
    result =
  let st = { acc = []; dict_map = []; registry; config; target } in
  let top = top_name target in
  emit st top eF;
  (match dt with
  | DRef _ -> alias_subtree st [] dt
  | _ -> mat_dicts st ~parent:top [] dt);
  { assignments = List.rev st.acc; top; dicts = List.rev st.dict_map }
