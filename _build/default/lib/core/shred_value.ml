(** Value shredding and unshredding (Section 4): convert nested values to
    their shredded representation — a flat top bag plus one flat dictionary
    dataset per nesting level — and back. Used to prepare inputs for the
    shredded pipeline and as the semantic reference for query shredding
    tests. *)

module T = Nrc.Types
module V = Nrc.Value

open Shred_type

type shredded = {
  top : V.t; (* flat bag *)
  dicts : (string list * V.t) list; (* path -> flat dict bag (label + fields) *)
}

(** Shred one nested bag value of element type [elem_ty], using the label
    sites registered for [base]. Fresh label ids are drawn per call, so two
    shreddings of the same value produce distinct but isomorphic labels. *)
let shred_bag (base : string) (elem_ty : T.t) (v : V.t) : shredded =
  let counter = ref 0 in
  let dicts : (string, V.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let dict_rows path =
    let key = String.concat "/" path in
    match Hashtbl.find_opt dicts key with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.replace dicts key cell;
      cell
  in
  (* flatten one item at [path]; recursively registers inner bags *)
  let rec flatten_item path (ty : T.t) (item : V.t) : V.t =
    match ty, item with
    | T.TTuple fields, V.Tuple vfields ->
      V.Tuple
        (List.map
           (fun (n, ft) ->
             let fv =
               match List.assoc_opt n vfields with
               | Some x -> x
               | None -> error "shred_bag: missing attribute %s" n
             in
             match ft with
             | T.TBag inner_ty ->
               let sub_path = path @ [ n ] in
               let site = input_site base sub_path in
               incr counter;
               let label = V.Label { site; args = [ V.Int !counter ] } in
               let rows = dict_rows sub_path in
               List.iter
                 (fun inner_item ->
                   let flat = flatten_item sub_path inner_ty inner_item in
                   match flat with
                   | V.Tuple fs -> rows := V.Tuple (("label", label) :: fs) :: !rows
                   | _ ->
                     error
                       "shred_bag: inner bags must contain tuples (path %s)"
                       (String.concat "." sub_path))
                 (V.bag_items fv);
               (n, label)
             | _ -> (n, fv))
           fields)
    | _, _ ->
      error "shred_bag: element type mismatch at %s" (String.concat "." path)
  in
  let top_items =
    List.map (fun item -> flatten_item [] elem_ty item) (V.bag_items v)
  in
  let paths = dict_paths elem_ty in
  {
    top = V.Bag top_items;
    dicts =
      List.map
        (fun p -> (p, V.Bag (List.rev !(dict_rows p))))
        paths;
  }

(** Named datasets of a shredded input, ready for an evaluation environment:
    [("COP_F", ...); ("COP_D_corders", ...); ...]. *)
let to_datasets (base : string) (s : shredded) : (string * V.t) list =
  (top_name base, s.top)
  :: List.map (fun (path, bag) -> (dict_name base path, bag)) s.dicts

(** Shred every nested input of an environment; flat inputs pass through
    under their [_F] name with no dictionaries. *)
let shred_env (types : (string * T.t) list) (values : (string * V.t) list) :
    (string * V.t) list =
  List.concat_map
    (fun (name, v) ->
      match List.assoc_opt name types with
      | Some (T.TBag elem) when not (T.is_flat elem) ->
        to_datasets name (shred_bag name elem v)
      | Some (T.TBag _) -> [ (top_name name, v) ]
      | _ -> [ (name, v) ])
    values

(* ------------------------------------------------------------------ *)
(* Unshredding *)

(** Rebuild a nested bag of element type [elem_ty] from a flat top bag and
    dictionaries indexed by path. Inverse of {!shred_bag} up to label
    identity. *)
let unshred_bag (elem_ty : T.t) (top : V.t)
    (dicts : (string list * V.t) list) : V.t =
  (* index each dictionary by label *)
  let index =
    List.map
      (fun (path, bag) ->
        let tbl : (V.t, V.t list ref) Hashtbl.t = Hashtbl.create 64 in
        List.iter
          (fun row ->
            match row with
            | V.Tuple (("label", l) :: fields) ->
              let cell =
                match Hashtbl.find_opt tbl l with
                | Some c -> c
                | None ->
                  let c = ref [] in
                  Hashtbl.add tbl l c;
                  c
              in
              cell := V.Tuple fields :: !cell
            | _ -> error "unshred_bag: malformed dictionary row")
          (V.bag_items bag);
        (path, tbl))
      dicts
  in
  let lookup path label =
    match List.assoc_opt path index with
    | None -> error "unshred_bag: no dictionary at %s" (String.concat "." path)
    | Some tbl -> (
      match Hashtbl.find_opt tbl label with
      | Some cell -> List.rev !cell
      | None -> [])
  in
  let rec rebuild_item path (ty : T.t) (item : V.t) : V.t =
    match ty, item with
    | T.TTuple fields, V.Tuple vfields ->
      V.Tuple
        (List.map
           (fun (n, ft) ->
             let fv =
               match List.assoc_opt n vfields with
               | Some x -> x
               | None -> error "unshred_bag: missing attribute %s" n
             in
             match ft with
             | T.TBag inner_ty ->
               let sub_path = path @ [ n ] in
               let members = lookup sub_path fv in
               (n, V.Bag (List.map (rebuild_item sub_path inner_ty) members))
             | _ -> (n, fv))
           fields)
    | _, _ ->
      error "unshred_bag: element type mismatch at %s" (String.concat "." path)
  in
  V.Bag (List.map (rebuild_item [] elem_ty) (V.bag_items top))
