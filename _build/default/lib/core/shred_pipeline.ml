(** The shredded compilation pipeline (Section 4): symbolic shredding,
    materialization with domain elimination, and optional unshredding, for
    whole NRC programs. The result is an ordinary flat NRC program over
    shredded datasets — ready for the same unnesting / code generation /
    execution stages as the standard route. *)

module E = Nrc.Expr
module T = Nrc.Types

type t = {
  source : Nrc.Program.t;
  mat : Nrc.Program.t;
      (** materialized program: inputs are the shredded datasets, one
          assignment per top bag / dictionary / label domain *)
  registry : Registry.t;
  result : string; (* the source program's result variable *)
  top : string; (* dataset holding the result's top bag *)
  dicts : (string list * string) list; (* result dict path -> dataset *)
  output_ty : T.t; (* original type of the result *)
  unshred_query : E.t option; (* None when the output is flat *)
}

(** Shred and materialize a whole program. *)
let shred_program ?(config = Materialize.default) (p : Nrc.Program.t) : t =
  let registry = Registry.create () in
  let dtenv0 = p.Nrc.Program.inputs in
  let type_env = Nrc.Program.typecheck p in
  let _, assignments_rev, last =
    List.fold_left
      (fun (dtenv, acc, _last) { Nrc.Program.target; body } ->
        let shredded = Symbolic.shred_expr ~registry ~dtenv body in
        let mat = Materialize.materialize ~config ~registry ~target shredded in
        let ty = Nrc.Typecheck.Env.find target type_env in
        ( (target, ty) :: dtenv,
          List.rev_append mat.Materialize.assignments acc,
          Some (target, mat) ))
      (dtenv0, [], None)
      p.Nrc.Program.assignments
  in
  let result, last_mat =
    match last with
    | Some (t, m) -> (t, m)
    | None -> invalid_arg "shred_program: empty program"
  in
  let output_ty = Nrc.Typecheck.Env.find result type_env in
  let mat_inputs =
    List.concat_map
      (fun (name, ty) ->
        match ty with
        | T.TBag _ -> Shred_type.shredded_inputs name ty
        | _ -> [ (name, ty) ])
      p.Nrc.Program.inputs
  in
  let unshred_query =
    match output_ty with
    | T.TBag elem when not (T.is_flat elem) ->
      Some (Unshred.query ~registry ~dataset:result elem)
    | _ -> None
  in
  {
    source = p;
    mat =
      Nrc.Program.make ~inputs:mat_inputs
        (List.map
           (fun (n, e) -> (n, e))
           (List.rev assignments_rev));
    registry;
    result;
    top = last_mat.Materialize.top;
    dicts = last_mat.Materialize.dicts;
    output_ty;
    unshred_query;
  }

(** Reference evaluation of the shredded route (single-node, NRC
    interpreter): shred the input values, run the materialized program, and
    unshred the result. The oracle for the distributed shredded execution. *)
let eval_shredded ?config (p : Nrc.Program.t)
    (input_values : (string * Nrc.Value.t) list) :
    t * Nrc.Eval.env * Nrc.Value.t =
  let sp = shred_program ?config p in
  let shredded_inputs =
    Shred_value.shred_env p.Nrc.Program.inputs input_values
  in
  let env = Nrc.Program.eval sp.mat shredded_inputs in
  let result_value =
    match sp.unshred_query with
    | Some q -> Nrc.Eval.eval env q
    | None -> (
      match Nrc.Eval.Env.find_opt sp.top env with
      | Some v -> v
      | None -> invalid_arg "eval_shredded: missing top bag")
  in
  (sp, env, result_value)
