(** Unshredding: reconstruct a nested result from its materialized shredded
    form. The reconstruction is itself expressed as an NRC query over the
    top bag and the flat dictionaries (per-label lookups, which the
    unnesting stage turns into label joins and regrouping), so its cost can
    be measured on the same execution substrate as everything else — this is
    the Unshred series of the paper's experiments. *)

module E = Nrc.Expr
module T = Nrc.Types

(** Build the NRC query reconstructing a nested bag of (original) element
    type [elem_ty] from the shredded datasets of [dataset], resolving
    dictionary names through the registry (so aliased levels read the input
    dictionaries directly). *)
let query ~registry ~dataset (elem_ty : T.t) : E.t =
  let rec rebuild_fields path (var : string) (ty : T.t) : E.t =
    match ty with
    | T.TTuple fields ->
      E.Record
        (List.map
           (fun (n, ft) ->
             match ft with
             | T.TBag inner ->
               let sub_path = path @ [ n ] in
               let dict = Registry.resolve registry dataset sub_path in
               let z = E.fresh ~hint:"u" () in
               ( n,
                 E.ForUnion
                   ( z,
                     E.Var dict,
                     E.If
                       ( E.Cmp (E.Eq, E.Proj (E.Var z, "label"), E.Proj (E.Var var, n)),
                         E.Singleton (rebuild_fields sub_path z inner),
                         None ) ) )
             | _ -> (n, E.Proj (E.Var var, n)))
           fields)
    | _ ->
      raise
        (Symbolic.Unsupported_shredding
           "unshredding requires tuple-valued bag elements")
  in
  let x = E.fresh ~hint:"u" () in
  E.ForUnion
    ( x,
      E.Var (Shred_type.top_name dataset),
      E.Singleton (rebuild_fields [] x elem_ty) )
