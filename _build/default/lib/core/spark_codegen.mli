(** Spark code generation (Section 3): render plans as the Scala /
    Spark-Dataset programs the paper's system emits — one [val] per
    operator, [explode]/[explode_outer] for unnests,
    [monotonically_increasing_id] for unique IDs, [groupBy] +
    [collect_list]/[sum(when(...))] for the Gamma operators,
    [repartition($"label")] for BagToDict. Inspectable output only; the
    simulator executes the plans (DESIGN.md substitution table). *)

val col_expr : Plan.Sexpr.t -> string
(** Spark column expression for one scalar expression. *)

val plan_to_scala : name:string -> Plan.Op.t -> string
val assignments_to_scala : (string * Plan.Op.t) list -> string
