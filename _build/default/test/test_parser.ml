(** Tests for the NRC surface-syntax lexer and parser: golden parses,
    precedence, error reporting, and the roundtrip property that parsing a
    textual rendering of the fixture queries evaluates identically. *)

module E = Nrc.Expr
module V = Nrc.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Nrc.Parser.expr_of_string

let eval_str ?(env = Fixtures.inputs_val) src =
  Nrc.Eval.eval (Nrc.Eval.env_of_list env) (parse src)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer () =
  let toks s = List.map fst (Nrc.Lexer.tokenize s) in
  check "keywords vs identifiers" true
    (toks "for fortune in input"
    = Nrc.Lexer.[ FOR; IDENT "fortune"; IN; IDENT "input"; EOF ]);
  check "operators" true
    (toks "== != <= >= := ++ && ||"
    = Nrc.Lexer.[ EQ; NE; LE; GE; ASSIGN; PLUSPLUS; AMPAMP; BARBAR; EOF ]);
  check "numbers" true
    (toks "42 3.25 @100" = Nrc.Lexer.[ INT 42; REAL 3.25; DATE 100; EOF ]);
  check "d-identifiers are plain identifiers" true
    (toks "d100 data" = Nrc.Lexer.[ IDENT "d100"; IDENT "data"; EOF ]);
  check "strings with escapes" true
    (toks {|"a\"b"|} = Nrc.Lexer.[ STRING {|a"b|}; EOF ]);
  check "comments" true (toks "1 -- two\n3" = Nrc.Lexer.[ INT 1; INT 3; EOF ]);
  (match Nrc.Lexer.tokenize "a # b" with
  | _ -> Alcotest.fail "expected Lex_error"
  | exception Nrc.Lexer.Lex_error { pos; _ } -> check_int "error position" 2 pos)

(* ------------------------------------------------------------------ *)
(* Expression parsing *)

let test_precedence () =
  check "mul binds tighter than add" true
    (V.equal (eval_str "1 + 2 * 3") (V.Int 7));
  check "parens override" true (V.equal (eval_str "(1 + 2) * 3") (V.Int 9));
  check "comparison over arithmetic" true
    (V.equal (eval_str "1 + 1 == 2") (V.Bool true));
  check "and over or" true
    (V.equal (eval_str "true || false && false") (V.Bool true));
  check "not" true (V.equal (eval_str "not false") (V.Bool true));
  check "projection binds tightest" true
    (V.equal
       (Nrc.Eval.eval
          (Nrc.Eval.env_of_list
             [ ("x", V.Tuple [ ("a", V.Int 2) ]) ])
          (parse "x.a * 3"))
       (V.Int 6))

let test_collections () =
  check "singleton" true (V.bag_equal (eval_str "sng(1)") (V.Bag [ V.Int 1 ]));
  check "record singleton" true
    (V.bag_equal
       (eval_str "sng(a := 1, b := \"x\")")
       (V.Bag [ V.Tuple [ ("a", V.Int 1); ("b", V.Str "x") ] ]));
  check "union" true
    (V.bag_equal (eval_str "sng(1) ++ sng(2)") (V.Bag [ V.Int 1; V.Int 2 ]));
  check "empty with type" true
    (V.bag_equal (eval_str "empty(tuple(a: int))") (V.Bag []));
  check "get" true (V.equal (eval_str "get(sng(7))") (V.Int 7));
  check "dedup" true
    (V.bag_equal (eval_str "dedup(sng(1) ++ sng(1))") (V.Bag [ V.Int 1 ]));
  check "for/if" true
    (V.bag_equal
       (eval_str "for p in Part union if p.price > 15.0 then sng(p.pid)")
       (V.Bag [ V.Int 2; V.Int 3; V.Int 4 ]));
  check "let" true
    (V.equal (eval_str "let x := 21 in x + x") (V.Int 42));
  check "if-else" true
    (V.equal (eval_str "if 1 == 2 then 10 else 20") (V.Int 20))

let test_aggregates () =
  let rows = "sng(k := 1, v := 10) ++ sng(k := 1, v := 20) ++ sng(k := 2, v := 5)" in
  check "sumBy" true
    (V.bag_equal
       (eval_str (Printf.sprintf "sumBy(k; v)(%s)" rows))
       (V.Bag
          [
            V.Tuple [ ("k", V.Int 1); ("v", V.Int 30) ];
            V.Tuple [ ("k", V.Int 2); ("v", V.Int 5) ];
          ]));
  check_int "groupBy groups" 2
    (List.length (V.bag_items (eval_str (Printf.sprintf "groupBy(k)(%s)" rows))));
  (* custom group attribute *)
  match V.bag_items (eval_str (Printf.sprintf "groupBy(k; members)(%s)" rows)) with
  | g :: _ -> ignore (V.field g "members")
  | [] -> Alcotest.fail "empty groupBy"

(* the paper's Example 1, as text *)
let example1_src =
  {|
  for cop in COP union
    sng( cname := cop.cname,
         corders := for co in cop.corders union
           sng( odate := co.odate,
                oparts := sumBy(pname; total)(
                  for op in co.oparts union
                  for p in Part union
                  if op.pid == p.pid then
                    sng( pname := p.pname, total := op.qty * p.price ))))
  |}

let test_example1_roundtrip () =
  let parsed = parse example1_src in
  (* identical type and semantics as the builder-constructed fixture *)
  let ty_parsed =
    Nrc.Typecheck.check_source
      (Nrc.Typecheck.env_of_list Fixtures.inputs_ty)
      parsed
  in
  let ty_fixture =
    Nrc.Typecheck.check_source
      (Nrc.Typecheck.env_of_list Fixtures.inputs_ty)
      Fixtures.example1
  in
  check "same type as the builder query" true
    (Nrc.Types.equal ty_parsed ty_fixture);
  Fixtures.check_bag_equal "same semantics"
    (Fixtures.eval_ref Fixtures.example1)
    (Fixtures.eval_ref parsed);
  (* and it goes through the whole shredded pipeline *)
  let prog = Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" parsed in
  let _, _, actual =
    Trance.Shred_pipeline.eval_shredded prog Fixtures.inputs_val
  in
  Fixtures.check_bag_equal "parsed query through shredding"
    (Fixtures.eval_ref parsed) actual

let test_programs () =
  let src =
    {|
    Flat <- for cop in COP union
            for co in cop.corders union
            for op in co.oparts union
              sng( pid := op.pid );
    Result <- dedup(Flat);
    |}
  in
  let prog = Nrc.Parser.program_of_string ~inputs:Fixtures.inputs_ty src in
  check_int "two assignments" 2 (List.length prog.Nrc.Program.assignments);
  Alcotest.(check string) "result name" "Result" (Nrc.Program.result_name prog);
  let expected = Fixtures.eval_ref Fixtures.dedup_query in
  Fixtures.check_bag_equal "program result" expected
    (Nrc.Program.eval_result prog Fixtures.inputs_val)

let test_parse_errors () =
  let fails s =
    match parse s with
    | _ -> Alcotest.failf "expected parse error for %S" s
    | exception Nrc.Parser.Parse_error _ -> ()
  in
  fails "for x in union y";
  fails "sng(a := )";
  fails "1 +";
  fails "sumBy(k)(e)" (* missing value list *);
  fails "(a := 1, 2)";
  fails "if x then";
  (* error positions point at the offending token *)
  match parse "1 + + 2" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Nrc.Parser.Parse_error { pos; _ } ->
    check_int "error position" 4 pos

(* property: pretty-printed builder queries of a simple shape re-parse *)
let test_pp_parse_roundtrip_flat () =
  (* the flat corpus queries use only constructs whose printer output is
     re-parseable modulo unicode; check semantics via textual forms *)
  let textual =
    [
      "for p in Part union sng( pid := p.pid, price := p.price )";
      "for p in Part union for q in Part union if p.pid == q.pid then sng( pid := p.pid )";
      "sumBy(pname; price)(for p in Part union sng( pname := p.pname, price := p.price ))";
    ]
  in
  List.iter
    (fun src ->
      let e = parse src in
      let plan_result = Fixtures.eval_plan e in
      Fixtures.check_bag_equal src (Fixtures.eval_ref e) plan_result)
    textual

(* ------------------------------------------------------------------ *)
(* to_source roundtrips *)

let test_to_source_corpus () =
  List.iter
    (fun (name, q) ->
      let src = Nrc.Parser.to_source q in
      let q' = parse src in
      Fixtures.check_bag_equal
        (Printf.sprintf "%s: parse (to_source q) = q" name)
        (Fixtures.eval_ref q) (Fixtures.eval_ref q'))
    Fixtures.corpus

let prop_to_source_roundtrip =
  QCheck.Test.make ~name:"random query: parse (to_source q) = q" ~count:200
    Qgen.arbitrary_case (fun (q, inputs) ->
      let q' = parse (Nrc.Parser.to_source q) in
      V.approx_bag_equal
        (Nrc.Eval.eval (Nrc.Eval.env_of_list inputs) q)
        (Nrc.Eval.eval (Nrc.Eval.env_of_list inputs) q'))

let test_program_to_source () =
  let prog =
    Nrc.Program.make ~inputs:Fixtures.inputs_ty
      [ ("A", Fixtures.dedup_query); ("B", Fixtures.nested_to_flat) ]
  in
  let src = Nrc.Parser.program_to_source prog in
  let prog' = Nrc.Parser.program_of_string ~inputs:Fixtures.inputs_ty src in
  Fixtures.check_bag_equal "program roundtrip"
    (Nrc.Program.eval_result prog Fixtures.inputs_val)
    (Nrc.Program.eval_result prog' Fixtures.inputs_val)

let test_type_to_source () =
  let t = Fixtures.cop_ty in
  let src = Nrc.Parser.type_to_source t in
  (* re-parse through empty() *)
  let e = parse (Printf.sprintf "empty(%s)" (Nrc.Parser.type_to_source (Nrc.Types.element t))) in
  (match e with
  | Nrc.Expr.Empty t' ->
    check "element type roundtrips" true (Nrc.Types.equal t' (Nrc.Types.element t))
  | _ -> Alcotest.fail "expected Empty");
  check "bag type renders" true (String.length src > 0)

let () =
  Alcotest.run "parser"
    [
      ("lexer", [ Alcotest.test_case "tokens" `Quick test_lexer ]);
      ( "expressions",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "collections" `Quick test_collections;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "example1 roundtrip" `Quick
            test_example1_roundtrip;
          Alcotest.test_case "programs" `Quick test_programs;
          Alcotest.test_case "parsed queries compile" `Quick
            test_pp_parse_roundtrip_flat;
        ] );
      ("errors", [ Alcotest.test_case "diagnostics" `Quick test_parse_errors ]);
      ( "to_source",
        [
          Alcotest.test_case "corpus roundtrip" `Quick test_to_source_corpus;
          QCheck_alcotest.to_alcotest prop_to_source_roundtrip;
          Alcotest.test_case "program roundtrip" `Quick test_program_to_source;
          Alcotest.test_case "type roundtrip" `Quick test_type_to_source;
        ] );
    ]
