(** Unit tests for the NRC substrate: values, types, type checker, reference
    interpreter, and normalization. Includes the paper's Example 1 evaluated
    end-to-end as a golden test.

    Query constructions use local opens [B.(...)] of {!Nrc.Builder} because
    the builder intentionally shadows comparison and arithmetic operators. *)

module B = Nrc.Builder
module E = Nrc.Expr
module T = Nrc.Types
module V = Nrc.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let tc_ok name env e expected_ty () =
  let ty = Nrc.Typecheck.check_source (Nrc.Typecheck.env_of_list env) e in
  check name true (T.equal ty expected_ty)

let tc_fail name env e () =
  match Nrc.Typecheck.check_source (Nrc.Typecheck.env_of_list env) e with
  | _ -> Alcotest.failf "%s: expected Type_error" name
  | exception Nrc.Typecheck.Type_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Value tests *)

let test_value_compare () =
  check "int order" true (V.compare (V.Int 1) (V.Int 2) < 0);
  check "tuple order by field" true
    (V.compare (V.Tuple [ ("a", V.Int 1) ]) (V.Tuple [ ("a", V.Int 2) ]) < 0);
  check "bag equal unordered" true
    (V.bag_equal (V.Bag [ V.Int 1; V.Int 2 ]) (V.Bag [ V.Int 2; V.Int 1 ]));
  check "bag multiplicity matters" false
    (V.bag_equal (V.Bag [ V.Int 1; V.Int 1 ]) (V.Bag [ V.Int 1 ]));
  check "label equality by site+args" true
    (V.equal
       (V.Label { site = 3; args = [ V.Int 7 ] })
       (V.Label { site = 3; args = [ V.Int 7 ] }));
  check "label site distinguishes" false
    (V.equal
       (V.Label { site = 3; args = [ V.Int 7 ] })
       (V.Label { site = 4; args = [ V.Int 7 ] }))

let test_value_dedup () =
  let items = [ V.Int 1; V.Int 2; V.Int 1; V.Int 3; V.Int 2 ] in
  check_int "dedup length" 3 (List.length (V.dedup items));
  check "dedup keeps first occurrence order" true
    (V.dedup items = [ V.Int 1; V.Int 2; V.Int 3 ])

let test_value_size () =
  check "string size grows" true
    (V.byte_size (V.Str "hello world") > V.byte_size (V.Str "hi"));
  check "bag size sums" true
    (V.byte_size (V.Bag [ V.Int 1; V.Int 2 ]) > V.byte_size (V.Bag [ V.Int 1 ]));
  check_int "int size" 8 (V.byte_size (V.Int 42))

let test_default_values () =
  check "int default" true (V.equal (V.default_of_type T.int_) (V.Int 0));
  check "tuple default" true
    (V.equal
       (V.default_of_type (T.tuple [ ("a", T.int_); ("b", T.string_) ]))
       (V.Tuple [ ("a", V.Int 0); ("b", V.Str "") ]));
  check "bag default" true (V.equal (V.default_of_type (T.bag T.int_)) (V.Bag []))

(* ------------------------------------------------------------------ *)
(* Types *)

let test_types () =
  check "flatness of scalar" true (T.is_flat T.int_);
  check "flatness of label" true (T.is_flat T.TLabel);
  check "bag not flat" false (T.is_flat (T.bag T.int_));
  check "flat bag" true (T.is_flat_bag (T.bag (T.tuple [ ("a", T.int_) ])));
  check "nested bag not flat bag" false
    (T.is_flat_bag (T.bag (T.tuple [ ("a", T.bag T.int_) ])));
  check_int "depth of COP" 3 (T.depth Fixtures.cop_ty);
  check_int "depth of Part" 1 (T.depth Fixtures.part_ty)

(* ------------------------------------------------------------------ *)
(* Type checker *)

let example1_ty =
  T.bag
    (T.tuple
       [
         ("cname", T.string_);
         ( "corders",
           T.bag
             (T.tuple
                [
                  ("odate", T.date);
                  ( "oparts",
                    T.bag (T.tuple [ ("pname", T.string_); ("total", T.real) ]) );
                ]) );
       ])

let flatten_ty =
  T.bag
    (T.tuple
       [ ("cname", T.string_); ("odate", T.date); ("pid", T.int_); ("qty", T.real) ])

let typecheck_tests =
  [
    Alcotest.test_case "example1 types" `Quick
      (tc_ok "example1" Fixtures.inputs_ty Fixtures.example1 example1_ty);
    Alcotest.test_case "flatten types" `Quick
      (tc_ok "flatten" Fixtures.inputs_ty Fixtures.flatten_query flatten_ty);
    Alcotest.test_case "unbound variable rejected" `Quick
      (tc_fail "unbound" [] (E.Var "nope"));
    Alcotest.test_case "dedup of nested bag rejected" `Quick
      (tc_fail "dedup nested" Fixtures.inputs_ty (E.Dedup (E.Var "COP")));
    Alcotest.test_case "groupBy nested key rejected" `Quick
      (tc_fail "groupBy nested key" Fixtures.inputs_ty
         (B.group_by [ "corders" ] (E.Var "COP")));
    Alcotest.test_case "sumBy non-numeric value rejected" `Quick
      (tc_fail "sumBy non-numeric" Fixtures.inputs_ty
         B.(
           sum_by ~keys:[ "pid" ] ~values:[ "pname" ]
             (for_ "p" (input "Part") (fun p ->
                  sng (record [ ("pid", p #. "pid"); ("pname", p #. "pname") ])))));
    Alcotest.test_case "union type mismatch rejected" `Quick
      (tc_fail "union mismatch" Fixtures.inputs_ty
         (E.Union (E.Var "COP", E.Var "Part")));
    Alcotest.test_case "bags of bags rejected" `Quick
      (tc_fail "bag of bag" Fixtures.inputs_ty
         (E.Singleton (E.Singleton (E.int_ 1))));
    Alcotest.test_case "labels rejected in source" `Quick
      (tc_fail "labels in source" [] (E.NewLabel { site = 0; args = [] }));
    Alcotest.test_case "if branches must agree" `Quick
      (tc_fail "if mismatch" [] (E.If (E.bool_ true, E.int_ 1, Some (E.str "x"))));
  ]

(* ------------------------------------------------------------------ *)
(* Interpreter *)

let eval_in env e = Nrc.Eval.eval (Nrc.Eval.env_of_list env) e

let test_eval_basics () =
  check "arith" true
    (V.equal (eval_in [] B.(int_ 2 + int_ 3 * int_ 4)) (V.Int 14));
  check "real promote" true
    (V.equal (eval_in [] B.(int_ 2 + real 0.5)) (V.Real 2.5));
  check "cmp dates" true (V.equal (eval_in [] B.(date 5 < date 9)) (V.Bool true));
  check "let" true
    (V.equal (eval_in [] B.(let_ "x" (int_ 21) (fun x -> x + x))) (V.Int 42));
  check "if-then empty bag" true
    (V.equal (eval_in [] B.(where (bool_ false) (sng (int_ 1)))) (V.Bag []));
  check "union bags" true
    (V.bag_equal
       (eval_in [] B.(sng (int_ 1) ++ sng (int_ 2)))
       (V.Bag [ V.Int 1; V.Int 2 ]));
  check "div by zero yields 0" true
    (V.equal (eval_in [] B.(int_ 1 / int_ 0)) (V.Int 0))

let test_eval_get () =
  check "get singleton" true
    (V.equal (eval_in [] B.(get (sng (int_ 7)))) (V.Int 7));
  check "get multi falls back to default" true
    (V.equal (eval_in [] B.(get (sng (int_ 7) ++ sng (int_ 8)))) (V.Int 0))

let test_eval_groupby () =
  let rows =
    B.(
      sng (record [ ("k", int_ 1); ("v", int_ 10) ])
      ++ sng (record [ ("k", int_ 1); ("v", int_ 20) ])
      ++ sng (record [ ("k", int_ 2); ("v", int_ 30) ]))
  in
  let grouped = eval_in [] (B.group_by [ "k" ] rows) in
  let expected =
    V.Bag
      [
        V.Tuple
          [
            ("k", V.Int 1);
            ( "group",
              V.Bag [ V.Tuple [ ("v", V.Int 10) ]; V.Tuple [ ("v", V.Int 20) ] ] );
          ];
        V.Tuple [ ("k", V.Int 2); ("group", V.Bag [ V.Tuple [ ("v", V.Int 30) ] ]) ];
      ]
  in
  Fixtures.check_bag_equal "groupBy" expected grouped;
  let summed = eval_in [] (B.sum_by ~keys:[ "k" ] ~values:[ "v" ] rows) in
  Fixtures.check_bag_equal "sumBy"
    (V.Bag
       [
         V.Tuple [ ("k", V.Int 1); ("v", V.Int 30) ];
         V.Tuple [ ("k", V.Int 2); ("v", V.Int 30) ];
       ])
    summed

let test_eval_example1 () =
  let result = Fixtures.eval_ref Fixtures.example1 in
  (* alice's order 100: widget = 2.0*10 + 1.5*10 = 35, gadget = 1.0*20 = 20 *)
  let expect_alice_100 =
    V.Bag
      [
        V.Tuple [ ("pname", V.Str "widget"); ("total", V.Real 35.0) ];
        V.Tuple [ ("pname", V.Str "gadget"); ("total", V.Real 20.0) ];
      ]
  in
  match result with
  | V.Bag custs ->
    check_int "five customers out" 5 (List.length custs);
    let alice =
      List.find
        (fun c ->
          V.equal (V.field c "cname") (V.Str "alice")
          && List.length (V.bag_items (V.field c "corders")) = 2)
        custs
    in
    let o100 =
      List.find
        (fun o -> V.equal (V.field o "odate") (V.Date 100))
        (V.bag_items (V.field alice "corders"))
    in
    Fixtures.check_bag_equal "alice order 100 oparts" expect_alice_100
      (V.field o100 "oparts");
    let bob = List.find (fun c -> V.equal (V.field c "cname") (V.Str "bob")) custs in
    let o102 = List.hd (V.bag_items (V.field bob "corders")) in
    check "bob empty oparts" true (V.equal (V.field o102 "oparts") (V.Bag []));
    let carol =
      List.find (fun c -> V.equal (V.field c "cname") (V.Str "carol")) custs
    in
    check "carol empty corders" true (V.equal (V.field carol "corders") (V.Bag []));
    let dave = List.find (fun c -> V.equal (V.field c "cname") (V.Str "dave")) custs in
    let o103 = List.hd (V.bag_items (V.field dave "corders")) in
    check "dave unmatched part yields empty" true
      (V.equal (V.field o103 "oparts") (V.Bag []))
  | v -> Alcotest.failf "expected bag, got %a" V.pp v

let test_eval_nested_to_flat () =
  let result = Fixtures.eval_ref Fixtures.nested_to_flat in
  (* alice: 35 + 20 + (pid 3 -> widget 4.0*30=120) + second alice (2.5*20=50)
     = 225 under a single cname key *)
  Fixtures.check_bag_equal "nested_to_flat"
    (V.Bag [ V.Tuple [ ("cname", V.Str "alice"); ("total", V.Real 225.0) ] ])
    result

(* ------------------------------------------------------------------ *)
(* Normalization and substitution *)

let test_norm () =
  let e = E.Let ("x", E.int_ 1, E.Var "x") in
  check "let inlined" true (Nrc.Norm.inline_lets e = E.int_ 1);
  let e2 = E.Proj (E.record [ ("a", E.int_ 5); ("b", E.int_ 6) ], "a") in
  check "record beta" true (Nrc.Norm.simplify e2 = E.int_ 5);
  let e3 = E.ForUnion ("x", E.sng (E.int_ 3), E.sng (E.Var "x")) in
  check "singleton generator" true (Nrc.Norm.simplify e3 = E.sng (E.int_ 3));
  (* substitution is capture avoiding *)
  let inner = E.ForUnion ("y", E.Var "R", E.sng (E.Var "x")) in
  let substituted = E.subst "x" (E.Var "y") inner in
  (match substituted with
  | E.ForUnion (y', _, E.Singleton (E.Var v)) ->
    check "no capture" true (v = "y" && y' <> "y")
  | _ -> Alcotest.fail "unexpected shape");
  let fv = E.free_vars Fixtures.example1 in
  check "fv of example1" true (E.VSet.equal fv (E.VSet.of_list [ "COP"; "Part" ]))

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_pp_smoke () =
  let s = E.to_string Fixtures.example1 in
  check "pp mentions sumBy" true (contains_substring s "sumBy");
  check "pp mentions for" true (contains_substring s "for cop in COP");
  let ts = T.to_string Fixtures.cop_ty in
  check "cop type pp mentions Bag" true (contains_substring ts "Bag");
  check_str "scalar type pp" "int" (T.to_string T.int_)

(* ------------------------------------------------------------------ *)
(* Property tests on values *)

let rec gen_value depth =
  QCheck.Gen.(
    if depth = 0 then
      oneof
        [
          map (fun i -> V.Int i) small_int;
          map (fun s -> V.Str s) (string_size (int_bound 6));
          map (fun b -> V.Bool b) bool;
        ]
    else
      oneof
        [
          map (fun i -> V.Int i) small_int;
          map (fun vs -> V.Bag vs) (list_size (int_bound 4) (gen_value (depth - 1)));
          map
            (fun vs ->
              V.Tuple (List.mapi (fun i v -> (Printf.sprintf "f%d" i, v)) vs))
            (list_size (int_bound 3) (gen_value (depth - 1)));
        ])

let arbitrary_value = QCheck.make ~print:V.to_string (gen_value 3)

let prop_compare_total =
  QCheck.Test.make ~name:"Value.compare is antisymmetric" ~count:200
    (QCheck.pair arbitrary_value arbitrary_value) (fun (a, b) ->
      let c1 = V.compare a b and c2 = V.compare b a in
      (c1 = 0) = (c2 = 0) && (c1 > 0) = (c2 < 0))

let prop_canonicalize_idempotent =
  QCheck.Test.make ~name:"canonicalize is idempotent" ~count:200 arbitrary_value
    (fun v -> V.equal (V.canonicalize (V.canonicalize v)) (V.canonicalize v))

let prop_compare_reflexive =
  QCheck.Test.make ~name:"compare v v = 0 and hash is stable" ~count:200
    arbitrary_value (fun v -> V.compare v v = 0 && V.hash v = V.hash v)

let prop_default_inhabits =
  QCheck.Test.make ~name:"default_of_type is not Null" ~count:100
    arbitrary_value (fun v ->
      match V.default_of_type (V.type_of v) with V.Null -> false | _ -> true)

let () =
  Alcotest.run "nrc"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "dedup" `Quick test_value_dedup;
          Alcotest.test_case "byte size" `Quick test_value_size;
          Alcotest.test_case "defaults" `Quick test_default_values;
        ] );
      ("types", [ Alcotest.test_case "predicates" `Quick test_types ]);
      ("typecheck", typecheck_tests);
      ( "eval",
        [
          Alcotest.test_case "basics" `Quick test_eval_basics;
          Alcotest.test_case "get" `Quick test_eval_get;
          Alcotest.test_case "groupBy/sumBy" `Quick test_eval_groupby;
          Alcotest.test_case "example1 (paper)" `Quick test_eval_example1;
          Alcotest.test_case "nested-to-flat" `Quick test_eval_nested_to_flat;
        ] );
      ( "norm",
        [
          Alcotest.test_case "rewrites" `Quick test_norm;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_compare_total;
          QCheck_alcotest.to_alcotest prop_canonicalize_idempotent;
          QCheck_alcotest.to_alcotest prop_compare_reflexive;
          QCheck_alcotest.to_alcotest prop_default_inhabits;
        ] );
    ]
