(** Tests for the shredded pipeline: shredded types (Example 3), value
    shred/unshred roundtrips, symbolic shredding + materialization (Examples
    4-6) validated against the reference interpreter on the whole corpus,
    domain elimination effects, and dictionary aliasing (label reuse). *)

module B = Nrc.Builder
module E = Nrc.Expr
module T = Nrc.Types
module V = Nrc.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Shredded types: Example 3 *)

let test_flat_type () =
  let cop_elem = T.element Fixtures.cop_ty in
  let flat = Trance.Shred_type.flat_of cop_elem in
  check "COP^F replaces corders by a label" true
    (T.equal flat (T.tuple [ ("cname", T.string_); ("corders", T.TLabel) ]));
  let corders_elem = Trance.Shred_type.elem_at cop_elem [ "corders" ] in
  let flat1 = Trance.Shred_type.flat_of corders_elem in
  check "corders^F replaces oparts by a label" true
    (T.equal flat1 (T.tuple [ ("odate", T.date); ("oparts", T.TLabel) ]));
  check "oparts items already flat" true
    (T.equal
       (Trance.Shred_type.flat_of
          (Trance.Shred_type.elem_at cop_elem [ "corders"; "oparts" ]))
       (Trance.Shred_type.elem_at cop_elem [ "corders"; "oparts" ]))

let test_dict_paths () =
  let cop_elem = T.element Fixtures.cop_ty in
  check "two dictionary levels for COP" true
    (Trance.Shred_type.dict_paths cop_elem
    = [ [ "corders" ]; [ "corders"; "oparts" ] ]);
  check_int "no dictionaries for flat Part" 0
    (List.length (Trance.Shred_type.dict_paths (T.element Fixtures.part_ty)))

let test_shredded_inputs () =
  let sigs = Trance.Shred_type.shredded_inputs "COP" Fixtures.cop_ty in
  check_int "three shredded datasets for COP" 3 (List.length sigs);
  check_str "top name" "COP_F" (fst (List.nth sigs 0));
  check_str "level-1 dict" "COP_D_corders" (fst (List.nth sigs 1));
  check_str "level-2 dict" "COP_D_corders_oparts" (fst (List.nth sigs 2));
  (match List.assoc "COP_D_corders" sigs with
  | T.TBag (T.TTuple (("label", T.TLabel) :: rest)) ->
    check "dict columns are flat item fields" true
      (rest = [ ("odate", T.date); ("oparts", T.TLabel) ])
  | _ -> Alcotest.fail "unexpected dict type")

(* ------------------------------------------------------------------ *)
(* Value shredding *)

let test_value_roundtrip () =
  let elem = T.element Fixtures.cop_ty in
  let s = Trance.Shred_value.shred_bag "COP" elem Fixtures.cop_value in
  (* top bag: one flat tuple per customer, labels in corders position *)
  check_int "top cardinality" 5 (List.length (V.bag_items s.Trance.Shred_value.top));
  List.iter
    (fun item ->
      match V.field item "corders" with
      | V.Label _ -> ()
      | v -> Alcotest.failf "expected label, got %a" V.pp v)
    (V.bag_items s.Trance.Shred_value.top);
  (* dictionary sizes: 5 orders total, 5 opart rows total *)
  let d1 = List.assoc [ "corders" ] s.Trance.Shred_value.dicts in
  let d2 = List.assoc [ "corders"; "oparts" ] s.Trance.Shred_value.dicts in
  check_int "corders dict rows" 5 (List.length (V.bag_items d1));
  check_int "oparts dict rows" 6 (List.length (V.bag_items d2));
  (* roundtrip *)
  let back =
    Trance.Shred_value.unshred_bag elem s.Trance.Shred_value.top
      s.Trance.Shred_value.dicts
  in
  Fixtures.check_bag_equal "shred/unshred roundtrip" Fixtures.cop_value back

let gen_nested_value =
  (* random values of the COP element type *)
  QCheck.Gen.(
    let opart = map2 Fixtures.opart (int_bound 10) (map float_of_int (int_bound 20)) in
    let corder =
      map2 Fixtures.corder (int_bound 400) (list_size (int_bound 4) opart)
    in
    let cust =
      map2 Fixtures.customer
        (oneofl [ "a"; "b"; "c" ])
        (list_size (int_bound 3) corder)
    in
    map (fun cs -> V.Bag cs) (list_size (int_bound 6) cust))

let prop_shred_roundtrip =
  QCheck.Test.make ~name:"random COP values: shred/unshred roundtrip"
    ~count:100
    (QCheck.make ~print:V.to_string gen_nested_value)
    (fun v ->
      let elem = T.element Fixtures.cop_ty in
      let s = Trance.Shred_value.shred_bag "COP" elem v in
      let back =
        Trance.Shred_value.unshred_bag elem s.Trance.Shred_value.top
          s.Trance.Shred_value.dicts
      in
      V.bag_equal v back)

(* ------------------------------------------------------------------ *)
(* End-to-end query shredding: the whole corpus must agree with the
   reference interpreter *)

let shredded_agree ?config name q () =
  let prog = Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" q in
  let expected = Fixtures.eval_ref q in
  let _, _, actual =
    Trance.Shred_pipeline.eval_shredded ?config prog Fixtures.inputs_val
  in
  Fixtures.check_bag_equal name expected actual

let corpus_tests =
  List.concat_map
    (fun (name, q) ->
      [
        Alcotest.test_case (name ^ " (shredded)") `Quick (shredded_agree name q);
        Alcotest.test_case (name ^ " (shredded, no domain elim)") `Quick
          (shredded_agree
             ~config:{ Trance.Materialize.domain_elimination = false }
             name q);
      ])
    Fixtures.corpus

(* ------------------------------------------------------------------ *)
(* Structure of the materialized program *)

let shred_of q =
  Trance.Shred_pipeline.shred_program
    (Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" q)

let test_example1_structure () =
  let sp = shred_of Fixtures.example1 in
  (* output: top bag + 2 dictionaries; corders level aliases nothing (new
     labels) but the materialization touches only dictionaries, never the
     full nested value *)
  check_str "top" "Q_F" sp.Trance.Shred_pipeline.top;
  check_int "two output dictionaries" 2
    (List.length sp.Trance.Shred_pipeline.dicts);
  (* with domain elimination, no label-domain assignments remain *)
  let has_domain =
    List.exists
      (fun { Nrc.Program.target; _ } ->
        String.length target >= 5 && String.sub target 0 5 = "Q_Dom")
      sp.Trance.Shred_pipeline.mat.Nrc.Program.assignments
  in
  check "domain eliminated (Example 6)" false has_domain;
  (* the materialized program typechecks as a (label-aware) program *)
  ignore (Nrc.Program.typecheck ~source:false sp.Trance.Shred_pipeline.mat)

let test_example1_no_elim_structure () =
  let sp =
    Trance.Shred_pipeline.shred_program
      ~config:{ Trance.Materialize.domain_elimination = false }
      (Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" Fixtures.example1)
  in
  let has_domain =
    List.exists
      (fun { Nrc.Program.target; _ } ->
        String.length target >= 5 && String.sub target 0 5 = "Q_Dom")
      sp.Trance.Shred_pipeline.mat.Nrc.Program.assignments
  in
  check "label domains present without elimination (Figure 5)" true has_domain

let test_alias_label_reuse () =
  (* select_nested copies cop.corders: both output levels must alias the
     input dictionaries, with no assignments for them *)
  let sp = shred_of Fixtures.select_nested in
  let dicts = sp.Trance.Shred_pipeline.dicts in
  check_str "corders aliases input dict" "COP_D_corders"
    (List.assoc [ "corders" ] dicts);
  check_str "oparts aliases input dict" "COP_D_corders_oparts"
    (List.assoc [ "corders"; "oparts" ] dicts);
  check_int "single materialized assignment (top only)" 1
    (List.length sp.Trance.Shred_pipeline.mat.Nrc.Program.assignments)

let test_flat_output_no_unshred () =
  let sp = shred_of Fixtures.nested_to_flat in
  check "flat output needs no unshredding" true
    (sp.Trance.Shred_pipeline.unshred_query = None)

let test_rule2_fires_for_groupby () =
  (* a root groupBy shreds into a rule-2-shaped dictionary: the label
     captures the grouping key, so materialization needs no label domain *)
  let sp = shred_of Fixtures.group_query in
  let has_domain =
    List.exists
      (fun { Nrc.Program.target; _ } ->
        String.length target >= 5 && String.sub target 0 5 = "Q_Dom")
      sp.Trance.Shred_pipeline.mat.Nrc.Program.assignments
  in
  check "rule 2 eliminated the label domain" false has_domain

let test_localized_aggregation () =
  (* Example 1's sumBy must become a per-label (localized) aggregation: a
     SumBy whose keys start with "label" in some materialized dictionary *)
  let sp = shred_of Fixtures.example1 in
  let rec has_localized (e : E.t) =
    match e with
    | E.SumBy { keys = "label" :: _; _ } -> true
    | _ ->
      let found = ref false in
      ignore
        (E.map_children
           (fun sub ->
             if has_localized sub then found := true;
             sub)
           e);
      !found
  in
  check "localized aggregation present" true
    (List.exists
       (fun { Nrc.Program.body; _ } -> has_localized body)
       sp.Trance.Shred_pipeline.mat.Nrc.Program.assignments)

(* ------------------------------------------------------------------ *)
(* Multi-assignment pipelines through the shredded route *)

let test_pipeline_program () =
  let prog =
    Nrc.Program.make ~inputs:Fixtures.inputs_ty
      [
        ("Step1", Fixtures.example1);
        ( "Step2",
          B.(
            sum_by ~keys:[ "cname" ] ~values:[ "grand" ]
              (for_ "x" (input "Step1") (fun x ->
                   for_ "o" (x #. "corders") (fun o ->
                       for_ "t" (o #. "oparts") (fun t ->
                           sng
                             (record
                                [ ("cname", x #. "cname"); ("grand", t #. "total") ])))))) );
      ]
  in
  let expected =
    Nrc.Eval.Env.find "Step2" (Nrc.Program.eval prog Fixtures.inputs_val)
  in
  let _, _, actual =
    Trance.Shred_pipeline.eval_shredded prog Fixtures.inputs_val
  in
  Fixtures.check_bag_equal "two-step shredded pipeline" expected actual

(* ------------------------------------------------------------------ *)
(* Property: shredded evaluation agrees on random nested inputs *)

let prop_shredded_random_inputs =
  QCheck.Test.make
    ~name:"random COP values: shredded example1 agrees with reference"
    ~count:40
    (QCheck.make ~print:V.to_string gen_nested_value)
    (fun cop ->
      let inputs = [ ("COP", cop); ("Part", Fixtures.part_value) ] in
      let prog =
        Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q"
          Fixtures.example1
      in
      let expected =
        Nrc.Eval.eval (Nrc.Eval.env_of_list inputs) Fixtures.example1
      in
      let _, _, actual = Trance.Shred_pipeline.eval_shredded prog inputs in
      V.approx_bag_equal expected actual)

let () =
  Alcotest.run "shred"
    [
      ( "types",
        [
          Alcotest.test_case "T^F (Example 3)" `Quick test_flat_type;
          Alcotest.test_case "dictionary paths" `Quick test_dict_paths;
          Alcotest.test_case "shredded input signature" `Quick
            test_shredded_inputs;
        ] );
      ( "values",
        [
          Alcotest.test_case "shred/unshred roundtrip" `Quick
            test_value_roundtrip;
          QCheck_alcotest.to_alcotest prop_shred_roundtrip;
        ] );
      ("corpus", corpus_tests);
      ( "structure",
        [
          Alcotest.test_case "example1 materialization" `Quick
            test_example1_structure;
          Alcotest.test_case "label domains without elimination" `Quick
            test_example1_no_elim_structure;
          Alcotest.test_case "label reuse aliases dictionaries" `Quick
            test_alias_label_reuse;
          Alcotest.test_case "flat output skips unshredding" `Quick
            test_flat_output_no_unshred;
          Alcotest.test_case "localized aggregation (Example 6)" `Quick
            test_localized_aggregation;
          Alcotest.test_case "rule 2 (filter labels)" `Quick
            test_rule2_fires_for_groupby;
        ] );
      ( "pipelines",
        [ Alcotest.test_case "two-step program" `Quick test_pipeline_program ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_shredded_random_inputs ]);
    ]
