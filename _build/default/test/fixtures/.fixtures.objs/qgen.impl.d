test/fixtures/qgen.ml: Fmt Nrc Printf QCheck
