test/fixtures/fixtures.ml: Fmt Nrc Plan Trance
