(** Shared test fixtures: the paper's running example (Example 1) — the COP
    nested relation, the flat Part relation — plus a corpus of queries and
    datasets reused by the unnesting, shredding, and execution test suites. *)

module E = Nrc.Expr
module T = Nrc.Types
module V = Nrc.Value
open Nrc.Builder

(* ------------------------------------------------------------------ *)
(* Types *)

let oparts_item_ty = t_tup [ ("pid", t_int); ("qty", t_real) ]

let corders_item_ty =
  t_tup [ ("odate", t_date); ("oparts", t_bag oparts_item_ty) ]

let cop_item_ty =
  t_tup [ ("cname", t_str); ("corders", t_bag corders_item_ty) ]

let cop_ty = t_bag cop_item_ty

let part_item_ty =
  t_tup [ ("pid", t_int); ("pname", t_str); ("price", t_real) ]

let part_ty = t_bag part_item_ty

(* ------------------------------------------------------------------ *)
(* Values *)

let opart pid qty = V.Tuple [ ("pid", V.Int pid); ("qty", V.Real qty) ]

let corder odate oparts =
  V.Tuple [ ("odate", V.Date odate); ("oparts", V.Bag oparts) ]

let customer cname corders =
  V.Tuple [ ("cname", V.Str cname); ("corders", V.Bag corders) ]

let part pid pname price =
  V.Tuple [ ("pid", V.Int pid); ("pname", V.Str pname); ("price", V.Real price) ]

(** The COP instance: exercises every edge case the nest operators must
    handle — a customer with no orders, an order with no parts, a part
    missing from Part, and two customers sharing a name. *)
let cop_value =
  V.Bag
    [
      customer "alice"
        [
          corder 100 [ opart 1 2.0; opart 2 1.0; opart 1 1.5 ];
          corder 101 [ opart 3 4.0 ];
        ];
      customer "bob" [ corder 102 [] ];
      customer "carol" [];
      customer "dave" [ corder 103 [ opart 99 5.0 ] ] (* pid 99 not in Part *);
      customer "alice" [ corder 104 [ opart 2 2.5 ] ] (* duplicate cname *);
    ]

let part_value =
  V.Bag
    [
      part 1 "widget" 10.0;
      part 2 "gadget" 20.0;
      part 3 "widget" 30.0 (* same pname as pid 1: aggregation across pids *);
      part 4 "unused" 99.0;
    ]

let inputs_ty = [ ("COP", cop_ty); ("Part", part_ty) ]
let inputs_val = [ ("COP", cop_value); ("Part", part_value) ]

(* ------------------------------------------------------------------ *)
(* Queries *)

(** Example 1 of the paper: for each customer and order, the total spent per
    part name (nested-to-nested with a localized join + sumBy). *)
let example1 =
  for_ "cop" (input "COP") (fun cop ->
      sng
        (record
           [
             ("cname", cop #. "cname");
             ( "corders",
               for_ "co" (cop #. "corders") (fun co ->
                   sng
                     (record
                        [
                          ("odate", co #. "odate");
                          ( "oparts",
                            sum_by ~keys:[ "pname" ] ~values:[ "total" ]
                              (for_ "op" (co #. "oparts") (fun op ->
                                   for_ "p" (input "Part") (fun p ->
                                       where
                                         (op #. "pid" == p #. "pid")
                                         (sng
                                            (record
                                               [
                                                 ("pname", p #. "pname");
                                                 ( "total",
                                                   op #. "qty" * p #. "price" );
                                               ]))))) );
                        ])) );
           ]))

(** Flat projection of COP: one output row per (cname, odate, pid, qty). *)
let flatten_query =
  for_ "cop" (input "COP") (fun cop ->
      for_ "co" (cop #. "corders") (fun co ->
          for_ "op" (co #. "oparts") (fun op ->
              sng
                (record
                   [
                     ("cname", cop #. "cname");
                     ("odate", co #. "odate");
                     ("pid", op #. "pid");
                     ("qty", op #. "qty");
                   ]))))

(** Nested-to-flat: total spent per customer name (navigates all levels,
    aggregates at top). *)
let nested_to_flat =
  sum_by ~keys:[ "cname" ] ~values:[ "total" ]
    (for_ "cop" (input "COP") (fun cop ->
         for_ "co" (cop #. "corders") (fun co ->
             for_ "op" (co #. "oparts") (fun op ->
                 for_ "p" (input "Part") (fun p ->
                     where
                       (op #. "pid" == p #. "pid")
                       (sng
                          (record
                             [
                               ("cname", cop #. "cname");
                               ("total", op #. "qty" * p #. "price");
                             ])))))))

(** Flat-to-nested: group Part rows under each distinct price band using a
    join-free nested comprehension over two flat inputs. *)
let flat_to_nested =
  for_ "p" (input "Part") (fun p ->
      sng
        (record
           [
             ("pname", p #. "pname");
             ( "parts",
               for_ "q" (input "Part") (fun q ->
                   where
                     (p #. "pname" == q #. "pname")
                     (sng (record [ ("pid", q #. "pid"); ("price", q #. "price") ]))) );
           ]))

(** Selection + projection over nested input without restructuring. *)
let select_nested =
  for_ "cop" (input "COP") (fun cop ->
      where
        (cop #. "cname" <> str "carol")
        (sng (record [ ("cname", cop #. "cname"); ("corders", cop #. "corders") ])))

(** groupBy at the top level over a flattened nested input. *)
let group_query =
  group_by [ "cname" ]
    (for_ "cop" (input "COP") (fun cop ->
         for_ "co" (cop #. "corders") (fun co ->
             sng (record [ ("cname", cop #. "cname"); ("odate", co #. "odate") ]))))

(** dedup over a flat projection. *)
let dedup_query =
  dedup
    (for_ "cop" (input "COP") (fun cop ->
         for_ "co" (cop #. "corders") (fun co ->
             for_ "op" (co #. "oparts") (fun op ->
                 sng (record [ ("pid", op #. "pid") ])))))

(** Three levels of output nesting from nested input (identity-like with
    renaming): stresses deep G-set maintenance. *)
let deep_nested =
  for_ "cop" (input "COP") (fun cop ->
      sng
        (record
           [
             ("name", cop #. "cname");
             ( "orders",
               for_ "co" (cop #. "corders") (fun co ->
                   sng
                     (record
                        [
                          ("day", co #. "odate");
                          ( "items",
                            for_ "op" (co #. "oparts") (fun op ->
                                where
                                  (op #. "qty" > real 1.0)
                                  (sng
                                     (record
                                        [
                                          ("pid", op #. "pid");
                                          ("qty", op #. "qty");
                                        ]))) );
                        ])) );
           ]))

(** Two bag-valued attributes at the same output level (exercises the
    extended grouping-set machinery of the unnester). *)
let two_bags =
  for_ "cop" (input "COP") (fun cop ->
      sng
        (record
           [
             ("cname", cop #. "cname");
             ( "dates",
               for_ "co" (cop #. "corders") (fun co ->
                   sng (record [ ("d", co #. "odate") ])) );
             ( "bought",
               for_ "co2" (cop #. "corders") (fun co2 ->
                   for_ "op" (co2 #. "oparts") (fun op ->
                       where
                         (op #. "qty" > real 1.0)
                         (sng (record [ ("pid", op #. "pid") ])))) );
           ]))

(** Union of two comprehensions at the top level. *)
let union_query =
  Nrc.Expr.Union
    ( for_ "p" (input "Part") (fun p ->
          where (p #. "price" > real 15.0)
            (sng (record [ ("pid", p #. "pid") ]))),
      for_ "cop" (input "COP") (fun cop ->
          for_ "co" (cop #. "corders") (fun co ->
              for_ "op" (co #. "oparts") (fun op ->
                  sng (record [ ("pid", op #. "pid") ])))) )

(** groupBy inside a nested attribute: orders grouped per part id within
    each customer. *)
let group_in_nested =
  for_ "cop" (input "COP") (fun cop ->
      sng
        (record
           [
             ("cname", cop #. "cname");
             ( "by_part",
               group_by [ "pid" ]
                 (for_ "co" (cop #. "corders") (fun co ->
                      for_ "op" (co #. "oparts") (fun op ->
                          sng
                            (record
                               [ ("pid", op #. "pid"); ("qty", op #. "qty") ]))))
             );
           ]))

(** Union of two nested-producing branches at the root (exercises
    DictTreeUnion merging in the shredded route: the output dictionary has
    one lambda per branch site). *)
let union_nested =
  (for_ "cop" (input "COP") (fun cop ->
       where
         (cop #. "cname" <> str "dave")
         (sng
            (record
               [
                 ("who", cop #. "cname");
                 ( "days",
                   for_ "co" (cop #. "corders") (fun co ->
                       sng (record [ ("d", co #. "odate") ])) );
               ]))))
  ++ for_ "p" (input "Part") (fun p ->
         where
           (p #. "price" > real 50.0)
           (sng
              (record
                 [
                   ("who", p #. "pname");
                   ("days", empty (t_tup [ ("d", t_date) ]));
                 ])))

(** All (name, query) pairs whose plan translation must agree with the NRC
    interpreter on the fixture data. *)
let corpus : (string * E.t) list =
  [
    ("example1", example1);
    ("flatten", flatten_query);
    ("nested_to_flat", nested_to_flat);
    ("flat_to_nested", flat_to_nested);
    ("select_nested", select_nested);
    ("group_query", group_query);
    ("dedup_query", dedup_query);
    ("deep_nested", deep_nested);
    ("two_bags", two_bags);
    ("group_in_nested", group_in_nested);
    ("union_nested", union_nested);
    ("union_query", union_query);
  ]

(* ------------------------------------------------------------------ *)
(* Helpers *)

let check_bag_equal what expected actual =
  if not (V.approx_bag_equal expected actual) then
    failwith
      (Fmt.str "%s: bags differ@.expected: %a@.actual:   %a" what V.pp
         (V.canonicalize expected) V.pp (V.canonicalize actual))

(** Evaluate a query with the reference NRC interpreter on the fixture. *)
let eval_ref ?(extra = []) q =
  Nrc.Eval.eval (Nrc.Eval.env_of_list (inputs_val @ extra)) q

(** Translate with the unnester and evaluate with the local plan
    interpreter. *)
let eval_plan ?(extra_ty = []) ?(extra = []) ?config q =
  let plan = Trance.Unnest.translate ~tenv:(inputs_ty @ extra_ty) q in
  let plan =
    match config with
    | None -> plan
    | Some c -> Plan.Optimize.optimize ~config:c plan
  in
  let env = Plan.Local_eval.env_of_list (inputs_val @ extra) in
  Plan.Local_eval.eval_to_bag env plan
