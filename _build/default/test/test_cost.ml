(** Tests for the cost estimator: statistics collection, cardinality
    propagation sanity, monotonicity in input size, and — the point of the
    exercise — agreement of the standard-vs-shredded recommendation with
    the simulator's measured ranking on the TPC-H benchmark cells. *)

module V = Nrc.Value
module Op = Plan.Op
module S = Plan.Sexpr

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Statistics *)

let test_stats_of_bag () =
  let t = Trance.Cost.stats_of_bag Fixtures.cop_value in
  check "rows" true (t.Trance.Cost.rows = 5.);
  check "row bytes positive" true (t.Trance.Cost.row_bytes > 0.);
  (* fanouts: 5 orders over 5 customers = 1.0; 6 parts over 5 orders = 1.2 *)
  check "corders fanout" true
    (List.assoc [ "corders" ] t.Trance.Cost.fanouts = 1.0);
  check "oparts fanout" true
    (List.assoc [ "corders"; "oparts" ] t.Trance.Cost.fanouts = 1.2);
  let empty = Trance.Cost.stats_of_bag (V.Bag []) in
  check "empty bag" true (empty.Trance.Cost.rows = 0.)

let test_estimate_scan_select () =
  let stats = Trance.Cost.stats_of_inputs Fixtures.inputs_val in
  let scan = Op.Scan { input = "Part"; binder = "p" } in
  let e = Trance.Cost.estimate stats scan in
  check "scan rows" true (e.Trance.Cost.out_rows = 4.);
  let sel =
    Op.Select (S.Cmp (Nrc.Expr.Eq, S.path "p" [ "pid" ], S.Const (V.Int 1)), scan)
  in
  let e2 = Trance.Cost.estimate stats sel in
  check "selection reduces rows" true
    (e2.Trance.Cost.out_rows < e.Trance.Cost.out_rows);
  check "selection adds cpu" true (e2.Trance.Cost.cpu > e.Trance.Cost.cpu)

let test_estimate_monotone_in_size () =
  (* same query, bigger data -> bigger estimate *)
  let q = Fixtures.nested_to_flat in
  let plan = Trance.Unnest.translate ~tenv:Fixtures.inputs_ty q in
  let cost inputs =
    let e = Trance.Cost.estimate (Trance.Cost.stats_of_inputs inputs) plan in
    e.Trance.Cost.cpu +. e.Trance.Cost.net
  in
  let small = cost Fixtures.inputs_val in
  let db =
    Tpch.Generator.generate
      { Tpch.Generator.default_scale with customers = 50; parts = 80 }
  in
  ignore db;
  (* triple the COP input *)
  let big_cop =
    V.Bag
      (List.concat
         [ V.bag_items Fixtures.cop_value;
           V.bag_items Fixtures.cop_value;
           V.bag_items Fixtures.cop_value ])
  in
  let big = cost [ ("COP", big_cop); ("Part", Fixtures.part_value) ] in
  check "monotone in input size" true (big > small)

let test_fanout_drives_unnest () =
  let stats = Trance.Cost.stats_of_inputs Fixtures.inputs_val in
  let scan = Op.Scan { input = "COP"; binder = "cop" } in
  let unnest =
    Op.Unnest
      { input = scan; path = [ "cop"; "corders" ]; binder = "co";
        outer = false; drop = false }
  in
  let e = Trance.Cost.estimate stats unnest in
  (* 5 customers x fanout 1.0 *)
  check "unnest rows use measured fanout" true (e.Trance.Cost.out_rows = 5.)

(* ------------------------------------------------------------------ *)
(* Recommendation vs. measurement *)

let measure strategy prog inputs =
  let config =
    { Trance.Api.default_config with
      cluster = { Exec.Config.unbounded with partitions = 40; workers = 10;
                  broadcast_limit = 2048 };
      collect = false;
      optimizer =
        { Plan.Optimize.default with unique_keys = [ ("Part", [ "pkey" ]) ] } }
  in
  let r = Trance.Api.run ~config ~strategy prog inputs in
  Exec.Stats.sim_seconds r.Trance.Api.stats

let test_recommendation_matches_simulator () =
  let db =
    Tpch.Generator.generate
      { Tpch.Generator.default_scale with customers = 120; parts = 200 }
  in
  let agree = ref 0 and total = ref 0 in
  List.iter
    (fun (family, level) ->
      let prog = Tpch.Queries.program ~family ~level () in
      let inputs = Tpch.Queries.input_values ~family ~level db in
      let rec_ = Trance.Cost.recommend prog inputs in
      let t_std = measure Trance.Api.Standard prog inputs in
      let t_shred =
        measure (Trance.Api.Shredded { unshred = false }) prog inputs
      in
      let measured_pick = if t_shred <= t_std then `Shredded else `Standard in
      incr total;
      if measured_pick = rec_.Trance.Cost.pick then incr agree)
    [
      (Tpch.Queries.Nested_to_nested, 1);
      (Tpch.Queries.Nested_to_nested, 2);
      (Tpch.Queries.Nested_to_flat, 1);
      (Tpch.Queries.Nested_to_flat, 2);
      (Tpch.Queries.Flat_to_nested, 1);
      (Tpch.Queries.Flat_to_nested, 2);
    ];
  (* the estimator must rank correctly on a clear majority of the cells *)
  check "recommendation agrees on most cells" true (!agree * 3 >= !total * 2)

let test_run_auto () =
  let prog =
    Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" Fixtures.example1
  in
  let rec_, run =
    Trance.Cost.run_auto
      ~config:{ Trance.Api.default_config with cluster = Exec.Config.unbounded }
      prog Fixtures.inputs_val
  in
  check "auto run succeeds" true (run.Trance.Api.failure = None);
  check "auto result correct" true
    (V.approx_bag_equal
       (Option.get run.Trance.Api.value)
       (Fixtures.eval_ref Fixtures.example1));
  check "strategy follows recommendation" true
    (match rec_.Trance.Cost.pick with
    | `Shredded -> run.Trance.Api.strategy = "Shred+Unshred"
    | `Standard -> run.Trance.Api.strategy = "Standard")

let test_recommend_shape () =
  let prog =
    Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" Fixtures.example1
  in
  let r = Trance.Cost.recommend ~unshred:true prog Fixtures.inputs_val in
  check "costs are positive" true
    (r.Trance.Cost.standard_cost > 0. && r.Trance.Cost.shredded_cost > 0.)

let () =
  Alcotest.run "cost"
    [
      ( "statistics",
        [
          Alcotest.test_case "stats_of_bag" `Quick test_stats_of_bag;
          Alcotest.test_case "scan/select" `Quick test_estimate_scan_select;
          Alcotest.test_case "monotone in size" `Quick
            test_estimate_monotone_in_size;
          Alcotest.test_case "fanout drives unnest" `Quick
            test_fanout_drives_unnest;
        ] );
      ( "recommendation",
        [
          Alcotest.test_case "matches simulator ranking" `Slow
            test_recommendation_matches_simulator;
          Alcotest.test_case "shape" `Quick test_recommend_shape;
          Alcotest.test_case "cost-based execution" `Quick test_run_auto;
        ] );
    ]
