test/test_biomed.ml: Alcotest Biomed Exec Fixtures Lazy List Nrc Option Trance
