test/test_biomed.mli:
