test/test_cost.ml: Alcotest Exec Fixtures List Nrc Option Plan Tpch Trance
