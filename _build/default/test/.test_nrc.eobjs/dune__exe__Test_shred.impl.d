test/test_shred.ml: Alcotest Fixtures List Nrc QCheck QCheck_alcotest String Trance
