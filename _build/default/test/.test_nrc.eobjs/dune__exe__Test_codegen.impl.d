test/test_codegen.ml: Alcotest Fixtures Hashtbl List Nrc Plan Printf String Trance
