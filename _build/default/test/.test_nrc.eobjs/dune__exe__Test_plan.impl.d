test/test_plan.ml: Alcotest List Nrc Plan
