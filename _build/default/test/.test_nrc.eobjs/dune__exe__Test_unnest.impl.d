test/test_unnest.ml: Alcotest Fixtures Hashtbl List Nrc Plan Printf QCheck QCheck_alcotest Stdlib Trance
