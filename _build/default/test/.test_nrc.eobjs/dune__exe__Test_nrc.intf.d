test/test_nrc.mli:
