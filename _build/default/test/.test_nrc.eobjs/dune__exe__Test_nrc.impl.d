test/test_nrc.ml: Alcotest Fixtures List Nrc Printf QCheck QCheck_alcotest String
