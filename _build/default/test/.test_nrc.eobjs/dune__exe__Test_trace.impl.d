test/test_trace.ml: Alcotest Exec Fixtures Float List Nrc Plan Printf String Trance
