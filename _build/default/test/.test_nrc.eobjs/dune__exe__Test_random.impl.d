test/test_random.ml: Alcotest Exec List Nrc Plan QCheck QCheck_alcotest Qgen Trance
