test/test_parser.ml: Alcotest Fixtures List Nrc Printf QCheck QCheck_alcotest Qgen String Trance
