test/test_exec.ml: Alcotest Array Exec Fixtures Hashtbl List Nrc Option Plan Printf QCheck QCheck_alcotest String Trance
