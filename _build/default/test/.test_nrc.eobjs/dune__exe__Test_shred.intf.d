test/test_shred.mli:
