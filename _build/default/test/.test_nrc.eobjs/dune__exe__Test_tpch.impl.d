test/test_tpch.ml: Alcotest Exec Fixtures Hashtbl List Nrc Option Printf Tpch Trance
