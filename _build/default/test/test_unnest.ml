(** Tests for the unnesting stage: every query in the fixture corpus must
    produce a plan whose local evaluation agrees with the NRC reference
    interpreter, with and without the plan optimizer; plus structural checks
    mirroring Figure 3 and equivalence checks for each optimizer rewrite. *)

module V = Nrc.Value
module Op = Plan.Op
module S = Plan.Sexpr
open Nrc.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let agree ?config name q () =
  let expected = Fixtures.eval_ref q in
  let actual = Fixtures.eval_plan ?config q in
  Fixtures.check_bag_equal name expected actual

let corpus_tests =
  List.concat_map
    (fun (name, q) ->
      [
        Alcotest.test_case (name ^ " (raw plan)") `Quick (agree name q);
        Alcotest.test_case (name ^ " (optimized)") `Quick
          (agree
             ~config:
               { Plan.Optimize.default with
                 unique_keys = [ ("Part", [ "pid" ]) ] }
             name q);
        Alcotest.test_case (name ^ " (no optimizations)") `Quick
          (agree ~config:Plan.Optimize.none name q);
      ])
    Fixtures.corpus

(* ------------------------------------------------------------------ *)
(* Structural checks on the example1 plan (cf. Figure 3) *)

let example1_plan () =
  Trance.Unnest.translate ~tenv:Fixtures.inputs_ty Fixtures.example1

let test_plan_shape () =
  let plan = example1_plan () in
  let count p = Op.count p plan in
  (* two outer unnests: corders, oparts *)
  check_int "outer unnests" 2
    (count (function Op.Unnest { outer = true; _ } -> true | _ -> false));
  (* one outer join against Part *)
  check_int "outer joins" 1
    (count (function Op.Join { kind = Op.LeftOuter; _ } -> true | _ -> false));
  (* one Gamma-plus for the sumBy, two Gamma-union for the two levels *)
  check_int "gamma plus" 1
    (count (function Op.NestSum _ -> true | _ -> false));
  check_int "gamma union" 2
    (count (function Op.NestBag _ -> true | _ -> false));
  (* scans of both inputs *)
  check_int "scans" 2 (count (function Op.Scan _ -> true | _ -> false))

let test_flat_query_plan_shape () =
  (* purely flat query: no Gammas, no outer operators, a plain join *)
  let q =
    for_ "p" (input "Part") (fun p ->
        for_ "q" (input "Part") (fun q ->
            where
              (p #. "pid" == q #. "pid")
              (sng (record [ ("pid", p #. "pid") ]))))
  in
  let plan = Trance.Unnest.translate ~tenv:Fixtures.inputs_ty q in
  check_int "no gammas" 0
    (Op.count (function Op.NestBag _ | Op.NestSum _ -> true | _ -> false) plan);
  check_int "inner join" 1
    (Op.count (function Op.Join { kind = Op.Inner; _ } -> true | _ -> false) plan);
  check_int "no outer" 0
    (Op.count
       (function
         | Op.Join { kind = Op.LeftOuter; _ } | Op.Unnest { outer = true; _ } ->
           true
         | _ -> false)
       plan)

let test_join_detection () =
  (* nested loop with equality condition becomes a hash join, not a product *)
  let plan = example1_plan () in
  check_int "no cartesian products" 0
    (Op.count (function Op.Product _ -> true | _ -> false) plan)

(* ------------------------------------------------------------------ *)
(* Optimizer rewrites *)

let test_prune_columns () =
  let q = Fixtures.nested_to_flat in
  let raw = Trance.Unnest.translate ~tenv:Fixtures.inputs_ty q in
  let pruned = Plan.Optimize.prune_columns raw in
  (* the Part scan must be narrowed: price/pname/pid used, nothing else...
     here all three are used, so instead check on a query using only pid *)
  let q2 =
    for_ "p" (input "Part") (fun p ->
        for_ "q" (input "Part") (fun q ->
            where (p #. "pid" == q #. "pid") (sng (record [ ("pid", p #. "pid") ]))))
  in
  let raw2 = Trance.Unnest.translate ~tenv:Fixtures.inputs_ty q2 in
  let pruned2 = Plan.Optimize.prune_columns raw2 in
  let narrowing =
    Op.count
      (function
        | Op.Project ([ (_, S.MkTuple fields) ], Op.Scan _) ->
          List.length fields = 1
        | _ -> false)
      pruned2
  in
  check_int "both Part scans narrowed to pid" 2 narrowing;
  (* semantics preserved *)
  Fixtures.check_bag_equal "prune preserves semantics (nested_to_flat)"
    (Plan.Local_eval.eval_to_bag
       (Plan.Local_eval.env_of_list Fixtures.inputs_val)
       raw)
    (Plan.Local_eval.eval_to_bag
       (Plan.Local_eval.env_of_list Fixtures.inputs_val)
       pruned)

let test_push_agg () =
  let config =
    { Plan.Optimize.default with unique_keys = [ ("Part", [ "pid" ]) ] }
  in
  let raw = Trance.Unnest.translate ~tenv:Fixtures.inputs_ty Fixtures.example1 in
  let opt = Plan.Optimize.optimize ~config raw in
  (* the rewrite introduces a second Gamma-plus (the partial sum) *)
  check_int "partial aggregate introduced" 2
    (Op.count (function Op.NestSum _ -> true | _ -> false) opt);
  Fixtures.check_bag_equal "push_agg preserves semantics"
    (Fixtures.eval_ref Fixtures.example1)
    (Fixtures.eval_plan ~config Fixtures.example1)

let test_push_select () =
  let q =
    for_ "cop" (input "COP") (fun cop ->
        for_ "p" (input "Part") (fun p ->
            where
              (cop #. "cname" == str "alice")
              (where
                 (p #. "price" > real 15.0)
                 (sng (record [ ("cname", cop #. "cname"); ("pid", p #. "pid") ])))))
  in
  let raw = Trance.Unnest.translate ~tenv:Fixtures.inputs_ty q in
  let opt = Plan.Optimize.push_select raw in
  (* after pushdown, some select sits directly on a scan *)
  let on_scan =
    Op.count
      (function Op.Select (_, Op.Scan _) -> true | _ -> false)
      opt
  in
  check "select pushed to scan" true (Stdlib.( >= ) on_scan 1);
  Fixtures.check_bag_equal "push_select preserves semantics"
    (Fixtures.eval_ref q)
    (Fixtures.eval_plan ~config:Plan.Optimize.default q)

(* ------------------------------------------------------------------ *)
(* Edge cases *)

let test_empty_inputs () =
  let empty_inputs =
    [ ("COP", V.Bag []); ("Part", V.Bag []) ]
  in
  List.iter
    (fun (name, q) ->
      let expected = Nrc.Eval.eval (Nrc.Eval.env_of_list empty_inputs) q in
      let plan = Trance.Unnest.translate ~tenv:Fixtures.inputs_ty q in
      let actual =
        Plan.Local_eval.eval_to_bag
          (Plan.Local_eval.env_of_list empty_inputs)
          plan
      in
      Fixtures.check_bag_equal (name ^ " on empty inputs") expected actual)
    Fixtures.corpus

let test_program_translation () =
  (* two assignments: materialize a nested result, then query it *)
  let prog =
    Nrc.Program.make ~inputs:Fixtures.inputs_ty
      [
        ("Nested", Fixtures.example1);
        ( "Flat",
          sum_by ~keys:[ "cname" ] ~values:[ "n" ]
            (for_ "x" (input "Nested") (fun x ->
                 for_ "o" (x #. "corders") (fun _ ->
                     sng (record [ ("cname", x #. "cname"); ("n", int_ 1) ])))) );
      ]
  in
  let plans = Trance.Unnest.translate_program prog in
  check_int "two plans" 2 (List.length plans);
  (* run both through the local evaluator, threading results *)
  let env = Plan.Local_eval.env_of_list Fixtures.inputs_val in
  let final =
    List.fold_left
      (fun acc (name, plan) ->
        let bag = Plan.Local_eval.eval_to_bag env plan in
        Hashtbl.replace env name (V.bag_items bag);
        (name, bag) :: acc)
      [] plans
  in
  let actual = List.assoc "Flat" final in
  let expected =
    Nrc.Eval.Env.find "Flat" (Nrc.Program.eval prog Fixtures.inputs_val)
  in
  Fixtures.check_bag_equal "program result" expected actual

let test_unsupported_is_clean () =
  (* constructs outside the supported fragment raise Unsupported, not a
     generic failure: here a union inside a nested bag attribute *)
  let q =
    for_ "p" (input "Part") (fun p ->
        sng
          (record
             [
               ( "a",
                 for_ "x" (input "COP") (fun x -> sng (x #. "cname"))
                 ++ for_ "y" (input "COP") (fun y -> sng (y #. "cname")) );
               ("pid", p #. "pid");
             ]))
  in
  match Trance.Unnest.translate ~tenv:Fixtures.inputs_ty q with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Trance.Unnest.Unsupported _ -> ()

(* ------------------------------------------------------------------ *)
(* Property tests: random flat data through a fixed set of query shapes *)

let arbitrary_parts =
  QCheck.make
    ~print:(fun parts ->
      V.to_string (V.Bag parts))
    QCheck.Gen.(
      list_size (int_bound 30)
        (map3
           (fun pid pname price ->
             Fixtures.part (pid mod 8) (Printf.sprintf "n%d" (pname mod 4))
               (float_of_int (price mod 50)))
           nat nat nat))

let prop_join_agg_agree =
  QCheck.Test.make ~name:"random parts: join+sumBy plan agrees with NRC"
    ~count:60 arbitrary_parts (fun parts ->
      let q =
        sum_by ~keys:[ "pname" ] ~values:[ "total" ]
          (for_ "p" (input "Part") (fun p ->
               for_ "q" (input "Part") (fun q ->
                   where
                     (p #. "pid" == q #. "pid")
                     (sng
                        (record
                           [ ("pname", p #. "pname"); ("total", q #. "price") ])))))
      in
      let data = [ ("Part", V.Bag parts); ("COP", V.Bag []) ] in
      let expected = Nrc.Eval.eval (Nrc.Eval.env_of_list data) q in
      let plan = Trance.Unnest.translate ~tenv:Fixtures.inputs_ty q in
      let actual =
        Plan.Local_eval.eval_to_bag (Plan.Local_eval.env_of_list data) plan
      in
      V.approx_bag_equal expected actual)

let prop_nested_reconstruction =
  QCheck.Test.make
    ~name:"random parts: flat-to-nested plan agrees with NRC" ~count:60
    arbitrary_parts (fun parts ->
      let data = [ ("Part", V.Bag parts); ("COP", V.Bag []) ] in
      let expected =
        Nrc.Eval.eval (Nrc.Eval.env_of_list data) Fixtures.flat_to_nested
      in
      let plan =
        Trance.Unnest.translate ~tenv:Fixtures.inputs_ty Fixtures.flat_to_nested
      in
      let actual =
        Plan.Local_eval.eval_to_bag (Plan.Local_eval.env_of_list data) plan
      in
      V.approx_bag_equal expected actual)

let () =
  Alcotest.run "unnest"
    [
      ("corpus", corpus_tests);
      ( "plan shape",
        [
          Alcotest.test_case "example1 matches Figure 3" `Quick test_plan_shape;
          Alcotest.test_case "flat query stays flat" `Quick
            test_flat_query_plan_shape;
          Alcotest.test_case "joins detected" `Quick test_join_detection;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "column pruning" `Quick test_prune_columns;
          Alcotest.test_case "aggregation pushdown" `Quick test_push_agg;
          Alcotest.test_case "selection pushdown" `Quick test_push_select;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
          Alcotest.test_case "programs" `Quick test_program_translation;
          Alcotest.test_case "unsupported raises cleanly" `Quick
            test_unsupported_is_clean;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_join_agg_agree;
          QCheck_alcotest.to_alcotest prop_nested_reconstruction;
        ] );
    ]
