(** Cross-strategy property tests on randomly generated queries and data
    (see {!Qgen}): the reference interpreter, the local plan interpreter,
    the distributed executor (standard, cogroup off, skew-aware), and the
    shredded pipeline (with and without domain elimination) must all agree
    on every generated case. This is the broadest validation layer of the
    repository. *)

module V = Nrc.Value

let cluster = { Exec.Config.unbounded with partitions = 6; workers = 3 }
let api_config = { Trance.Api.default_config with cluster }

let reference q inputs = Nrc.Eval.eval (Nrc.Eval.env_of_list inputs) q

let prop_plan_agrees =
  QCheck.Test.make ~name:"random query: plan = reference" ~count:250
    Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let plan = Trance.Unnest.translate ~tenv:Qgen.inputs_ty q in
      let actual =
        Plan.Local_eval.eval_to_bag (Plan.Local_eval.env_of_list inputs) plan
      in
      V.approx_bag_equal expected actual)

let prop_optimized_plan_agrees =
  QCheck.Test.make ~name:"random query: optimized plan = reference" ~count:250
    Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let config =
        { Plan.Optimize.default with unique_keys = [ ("S", [ "a" ]) ] }
        (* note: S.a is NOT unique in the generated data; the hint must not
           fire incorrectly because the optimizer only uses it for scans
           joined on exactly the declared key... it is, so use R instead *)
      in
      ignore config;
      let plan =
        Plan.Optimize.optimize ~config:Plan.Optimize.default
          (Trance.Unnest.translate ~tenv:Qgen.inputs_ty q)
      in
      let actual =
        Plan.Local_eval.eval_to_bag (Plan.Local_eval.env_of_list inputs) plan
      in
      V.approx_bag_equal expected actual)

let run_strategy ?(config = api_config) strategy q inputs =
  let prog = Nrc.Program.of_expr ~inputs:Qgen.inputs_ty ~name:"Q" q in
  Trance.Api.run ~config ~strategy prog inputs

let prop_executor_agrees =
  QCheck.Test.make ~name:"random query: distributed standard = reference"
    ~count:150 Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let r = run_strategy Trance.Api.Standard q inputs in
      match r.Trance.Api.value with
      | Some v -> V.approx_bag_equal expected v
      | None -> false)

let prop_executor_no_cogroup_agrees =
  QCheck.Test.make ~name:"random query: cogroup off = reference" ~count:100
    Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let config = { api_config with cogroup = false } in
      let r = run_strategy ~config Trance.Api.Standard q inputs in
      match r.Trance.Api.value with
      | Some v -> V.approx_bag_equal expected v
      | None -> false)

let prop_skew_aware_agrees =
  QCheck.Test.make ~name:"random query: skew-aware = reference" ~count:100
    Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let config =
        { api_config with
          skew_aware = true;
          cluster = { cluster with broadcast_limit = 64 } }
      in
      let r = run_strategy ~config Trance.Api.Standard q inputs in
      match r.Trance.Api.value with
      | Some v -> V.approx_bag_equal expected v
      | None -> false)

let prop_shredded_agrees =
  QCheck.Test.make ~name:"random query: shredded pipeline = reference"
    ~count:150 Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let r = run_strategy (Trance.Api.Shredded { unshred = true }) q inputs in
      match r.Trance.Api.value with
      | Some v -> V.approx_bag_equal expected v
      | None -> false)

let prop_shredded_no_domelim_agrees =
  QCheck.Test.make
    ~name:"random query: shredded without domain elimination = reference"
    ~count:100 Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let prog = Nrc.Program.of_expr ~inputs:Qgen.inputs_ty ~name:"Q" q in
      let _, _, actual =
        Trance.Shred_pipeline.eval_shredded
          ~config:{ Trance.Materialize.domain_elimination = false }
          prog inputs
      in
      V.approx_bag_equal expected actual)

let prop_shuffle_conservation =
  QCheck.Test.make
    ~name:"random query: executor metrics are sane (bytes, rows >= 0)"
    ~count:100 Qgen.arbitrary_case (fun (q, inputs) ->
      let r = run_strategy Trance.Api.Standard q inputs in
      let s = r.Trance.Api.stats in
      Exec.Stats.shuffled_bytes s >= 0
      && Exec.Stats.peak_worker_bytes s >= 0
      && Exec.Stats.sim_seconds s >= 0.
      && Exec.Stats.rows_processed s >= 0)

let () =
  Alcotest.run "random"
    [
      ( "cross-strategy",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_plan_agrees;
            prop_optimized_plan_agrees;
            prop_executor_agrees;
            prop_executor_no_cogroup_agrees;
            prop_skew_aware_agrees;
            prop_shredded_agrees;
            prop_shredded_no_domelim_agrees;
            prop_shuffle_conservation;
          ] );
    ]
