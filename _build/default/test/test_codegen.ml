(** Tests for the Spark code generator: structural golden checks on the
    emitted Scala for the paper's running example and the whole corpus
    (every operator the plan contains must surface as its Spark idiom), and
    well-formedness invariants (balanced parens, every val used defined). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let count_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if m = 0 then 0 else go 0 0

let gen q =
  let plan =
    Plan.Optimize.optimize (Trance.Unnest.translate ~tenv:Fixtures.inputs_ty q)
  in
  Trance.Spark_codegen.plan_to_scala ~name:"Q" plan

let test_example1_scala () =
  let scala = gen Fixtures.example1 in
  (* the Figure 3 plan in Spark terms *)
  check "outer unnests are explode_outer" true
    (count_substring scala "explode_outer" = 2);
  check "left outer join" true (contains scala "\"left_outer\"");
  check "unique ids" true (contains scala "monotonically_increasing_id()");
  check "Gamma-plus is sum(when(...))" true (contains scala "sum(when(");
  check "Gamma-union is collect_list" true (contains scala "collect_list(");
  check "scans of both inputs" true
    (contains scala "COP.select" && contains scala "Part.select");
  check "final assignment" true (contains scala "val Q = ")

let test_flat_join_scala () =
  let scala =
    gen
      Nrc.Builder.(
        for_ "p" (input "Part") (fun p ->
            for_ "q" (input "Part") (fun q ->
                where (p #. "pid" == q #. "pid")
                  (sng (record [ ("pid", p #. "pid") ])))))
  in
  check "inner join" true (contains scala "\"inner\"");
  check "equality condition uses ===" true (contains scala "===");
  check "no outer machinery" false
    (contains scala "explode_outer" || contains scala "left_outer")

let test_shredded_program_scala () =
  let prog =
    Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" Fixtures.example1
  in
  let sc = Trance.Api.compile_shredded prog in
  let scala = Trance.Spark_codegen.assignments_to_scala sc.Trance.Api.plans in
  check "top bag emitted" true (contains scala "---- Q_F ----");
  check "dictionaries emitted" true (contains scala "---- Q_D_corders ----");
  check "label partitioning via repartition" true (contains scala "repartition(");
  check "localized aggregation groups by label" true
    (contains scala "$\"label\"")

let balanced s =
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '(' then incr depth
      else if c = ')' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    s;
  !ok && !depth = 0

let test_corpus_wellformed () =
  List.iter
    (fun (name, q) ->
      let scala = gen q in
      check (name ^ " parens balanced") true (balanced scala);
      (* every referenced dsN is defined before use *)
      let lines = String.split_on_char '\n' scala in
      let defined = Hashtbl.create 16 in
      List.iter
        (fun line ->
          (* uses *)
          Hashtbl.iter
            (fun _ _ -> ())
            defined;
          (if String.length line > 4 && String.sub line 0 4 = "val " then
             match String.index_opt line '=' with
             | Some eq ->
               let lhs = String.trim (String.sub line 4 (eq - 4)) in
               (* all dsN mentioned on the rhs must already be defined *)
               let rhs = String.sub line eq (String.length line - eq) in
               let rec scan i =
                 if i + 2 < String.length rhs then
                   if rhs.[i] = 'd' && rhs.[i + 1] = 's' then begin
                     let j = ref (i + 2) in
                     while
                       !j < String.length rhs
                       && rhs.[!j] >= '0'
                       && rhs.[!j] <= '9'
                     do
                       incr j
                     done;
                     if !j > i + 2 then begin
                       let v = String.sub rhs i (!j - i) in
                       check
                         (Printf.sprintf "%s: %s defined before use" name v)
                         true (Hashtbl.mem defined v)
                     end;
                     scan !j
                   end
                   else scan (i + 1)
               in
               scan 0;
               Hashtbl.replace defined lhs ()
             | None -> ()))
        lines;
      check_int (name ^ " one result binding") 1 (count_substring scala "val Q = "))
    Fixtures.corpus

let () =
  Alcotest.run "codegen"
    [
      ( "spark",
        [
          Alcotest.test_case "example1 structure" `Quick test_example1_scala;
          Alcotest.test_case "flat join" `Quick test_flat_join_scala;
          Alcotest.test_case "shredded program" `Quick
            test_shredded_program_scala;
          Alcotest.test_case "corpus well-formed" `Quick test_corpus_wellformed;
        ] );
    ]
