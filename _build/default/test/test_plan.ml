(** Direct unit tests of the plan layer: scalar expressions (null
    semantics, label operations), each operator of the plan language
    (outer-join padding, outer-unnest, drop-unnest, presence and
    placeholder semantics of the nest operators, dedup, union alignment),
    and schema inference. These pin the operator semantics that both the
    local interpreter and the distributed executor implement. *)

module V = Nrc.Value
module S = Plan.Sexpr
module Op = Plan.Op
module Row = Plan.Row

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let eval_op ?(env = []) op =
  Plan.Local_eval.eval (Plan.Local_eval.env_of_list env) op

let tup fields = V.Tuple fields

(* ------------------------------------------------------------------ *)
(* Scalar expressions *)

let test_sexpr_nulls () =
  let row = [ ("x", V.Null); ("y", V.Int 3) ] in
  check "proj through null" true (V.is_null (S.eval row (S.path "x" [ "a" ])));
  check "prim with null" true
    (V.is_null (S.eval row (S.Prim (Nrc.Expr.Add, S.col "x", S.col "y"))));
  check "cmp with null" true
    (V.is_null (S.eval row (S.Cmp (Nrc.Expr.Eq, S.col "x", S.col "y"))));
  check "pred: null is false" false
    (S.eval_pred row (S.Cmp (Nrc.Expr.Eq, S.col "x", S.col "y")));
  check "isnull" true
    (V.equal (S.eval row (S.IsNull (S.col "x"))) (V.Bool true));
  check "not null" true
    (V.is_null (S.eval row (S.Not (S.IsNull (S.col "y")) |> fun e -> S.Logic (Nrc.Expr.And, e, S.col "x"))))

let test_sexpr_labels () =
  let row = [ ("k", V.Int 7); ("s", V.Str "x") ] in
  let lbl = S.MkLabel { site = 3; args = [ S.col "k"; S.col "s" ] } in
  let v = S.eval row lbl in
  (match v with
  | V.Label { site = 3; args = [ V.Int 7; V.Str "x" ] } -> ()
  | _ -> Alcotest.failf "bad label %a" V.pp v);
  let row2 = [ ("l", v) ] in
  check "label arg" true (V.equal (S.eval row2 (S.LabelArg (S.col "l", 0))) (V.Int 7));
  check "label arg out of range is null" true
    (V.is_null (S.eval row2 (S.LabelArg (S.col "l", 5))));
  check "site check" true
    (V.equal (S.eval row2 (S.IsLabelSite (S.col "l", 3))) (V.Bool true));
  check "site mismatch" true
    (V.equal (S.eval row2 (S.IsLabelSite (S.col "l", 4))) (V.Bool false));
  check "cols_used" true
    (List.sort compare (S.cols_used lbl) = [ "k"; "s" ])

(* ------------------------------------------------------------------ *)
(* Operators *)

let rbag name rows = (name, V.Bag rows)

let test_outer_join () =
  let left = [ tup [ ("k", V.Int 1) ]; tup [ ("k", V.Int 2) ] ] in
  let right = [ tup [ ("k", V.Int 1); ("w", V.Int 10) ] ] in
  let plan =
    Op.Join
      { left = Op.Scan { input = "L"; binder = "l" };
        right = Op.Scan { input = "R"; binder = "r" };
        lkey = [ S.path "l" [ "k" ] ];
        rkey = [ S.path "r" [ "k" ] ];
        kind = Op.LeftOuter }
  in
  let rows = eval_op ~env:[ rbag "L" left; rbag "R" right ] plan in
  check_int "two rows" 2 (List.length rows);
  let unmatched = List.find (fun r -> V.is_null (Row.get r "r")) rows in
  check "left side kept" true
    (V.equal (Row.get unmatched "l") (tup [ ("k", V.Int 2) ]));
  (* null keys never match *)
  let rows2 =
    eval_op
      ~env:[ rbag "L" [ V.Null ]; rbag "R" right ]
      (Op.Join
         { left = Op.Scan { input = "L"; binder = "l" };
           right = Op.Scan { input = "R"; binder = "r" };
           lkey = [ S.path "l" [ "k" ] ];
           rkey = [ S.path "r" [ "k" ] ];
           kind = Op.LeftOuter })
  in
  check "null key padded, not joined" true
    (List.for_all (fun r -> V.is_null (Row.get r "r")) rows2)

let test_unnest_variants () =
  let data =
    [ tup [ ("a", V.Int 1); ("items", V.Bag [ V.Int 10; V.Int 20 ]) ];
      tup [ ("a", V.Int 2); ("items", V.Bag []) ] ]
  in
  let scan = Op.Scan { input = "N"; binder = "n" } in
  let inner =
    Op.Unnest { input = scan; path = [ "n"; "items" ]; binder = "i"; outer = false; drop = false }
  in
  let outer =
    Op.Unnest { input = scan; path = [ "n"; "items" ]; binder = "i"; outer = true; drop = false }
  in
  let dropping =
    Op.Unnest { input = scan; path = [ "n"; "items" ]; binder = "i"; outer = true; drop = true }
  in
  check_int "inner drops empty" 2 (List.length (eval_op ~env:[ rbag "N" data ] inner));
  let orows = eval_op ~env:[ rbag "N" data ] outer in
  check_int "outer keeps empty" 3 (List.length orows);
  check_int "one null binder" 1
    (List.length (List.filter (fun r -> V.is_null (Row.get r "i")) orows));
  (* drop removes the consumed attribute from the source column *)
  let drows = eval_op ~env:[ rbag "N" data ] dropping in
  List.iter
    (fun r ->
      match Row.get r "n" with
      | V.Tuple fields -> check "items dropped" false (List.mem_assoc "items" fields)
      | _ -> Alcotest.fail "not a tuple")
    drows

let test_nest_bag_presence () =
  let rows =
    [ tup [ ("g", V.Int 1); ("x", V.Int 10) ];
      tup [ ("g", V.Int 1); ("x", V.Null) ];
      tup [ ("g", V.Int 2); ("x", V.Null) ] ]
  in
  let plan =
    Op.NestBag
      { input = Op.Scan { input = "T"; binder = "t" };
        keys = [ ("g", S.path "t" [ "g" ]) ];
        agg_keys = [];
        item = S.path "t" [ "x" ];
        presence = S.Not (S.IsNull (S.path "t" [ "x" ]));
        out = "xs" }
  in
  let out = eval_op ~env:[ rbag "T" rows ] plan in
  check_int "both groups appear" 2 (List.length out);
  let g2 = List.find (fun r -> V.equal (Row.get r "g") (V.Int 2)) out in
  check "absent rows give empty bag" true (V.equal (Row.get g2 "xs") (V.Bag []));
  let g1 = List.find (fun r -> V.equal (Row.get r "g") (V.Int 1)) out in
  check "present rows contribute" true
    (V.bag_equal (Row.get g1 "xs") (V.Bag [ V.Int 10 ]))

let test_nest_sum_placeholders () =
  (* keys + agg_keys: a G-group with no present rows emits one placeholder
     row with Null agg keys and zero sums *)
  let rows =
    [ tup [ ("g", V.Int 1); ("k", V.Str "a"); ("v", V.Int 5) ];
      tup [ ("g", V.Int 1); ("k", V.Str "a"); ("v", V.Int 7) ];
      tup [ ("g", V.Int 2); ("k", V.Null); ("v", V.Null) ] ]
  in
  let plan presence =
    Op.NestSum
      { input = Op.Scan { input = "T"; binder = "t" };
        keys = [ ("g", S.path "t" [ "g" ]) ];
        agg_keys = [ ("k", S.path "t" [ "k" ]) ];
        aggs = [ ("total", S.path "t" [ "v" ]) ];
        presence }
  in
  let out =
    eval_op ~env:[ rbag "T" rows ]
      (plan (S.Not (S.IsNull (S.path "t" [ "k" ]))))
  in
  check_int "two output rows" 2 (List.length out);
  let g1 = List.find (fun r -> V.equal (Row.get r "g") (V.Int 1)) out in
  check "sum over present" true (V.equal (Row.get g1 "total") (V.Int 12));
  let g2 = List.find (fun r -> V.equal (Row.get r "g") (V.Int 2)) out in
  check "placeholder agg key is null" true (V.is_null (Row.get g2 "k"));
  check "placeholder sum is zero" true (V.equal (Row.get g2 "total") (V.Int 0));
  (* with keys = [] there are no placeholders *)
  let global =
    Op.NestSum
      { input = Op.Scan { input = "T"; binder = "t" };
        keys = [];
        agg_keys = [ ("k", S.path "t" [ "k" ]) ];
        aggs = [ ("total", S.path "t" [ "v" ]) ];
        presence = S.Not (S.IsNull (S.path "t" [ "k" ])) }
  in
  check_int "global agg skips absent group" 1
    (List.length (eval_op ~env:[ rbag "T" rows ] global))

let test_union_alignment () =
  let plan =
    Op.UnionAll
      ( Op.Project
          ([ ("a", S.Const (V.Int 1)); ("b", S.Const (V.Int 2)) ], Op.UnitRow),
        Op.Project
          ([ ("b", S.Const (V.Int 9)); ("a", S.Const (V.Int 8)) ], Op.UnitRow) )
  in
  let rows = eval_op plan in
  check_int "two rows" 2 (List.length rows);
  List.iter
    (fun r -> check "columns ordered as the left side" true (Row.columns r = [ "a"; "b" ]))
    rows

let test_dedup_rows () =
  let rows = [ tup [ ("a", V.Int 1) ]; tup [ ("a", V.Int 1) ]; tup [ ("a", V.Int 2) ] ] in
  let plan = Op.Dedup (Op.Scan { input = "T"; binder = "t" }) in
  check_int "dedup" 2 (List.length (eval_op ~env:[ rbag "T" rows ] plan))

let test_schema_inference () =
  let plan =
    Op.NestSum
      { input =
          Op.AddIndex
            { input = Op.Scan { input = "R"; binder = "r" }; col = "id%0" };
        keys = [ ("g", S.col "r") ];
        agg_keys = [ ("k", S.col "id%0") ];
        aggs = [ ("t", S.col "r") ];
        presence = S.Const (V.Bool true) }
  in
  check "columns" true (Op.columns plan = [ "g"; "k"; "t" ]);
  check "inputs" true (Op.inputs plan = [ "R" ]);
  check_int "operator count" 3 (Op.count (fun _ -> true) plan)

(* ------------------------------------------------------------------ *)
(* Optimizer unit cases *)

let test_select_fusion () =
  let p = S.Cmp (Nrc.Expr.Eq, S.col "a", S.Const (V.Int 1)) in
  let q = S.Cmp (Nrc.Expr.Eq, S.col "b", S.Const (V.Int 2)) in
  let plan = Op.Select (p, Op.Select (q, Op.Scan { input = "R"; binder = "a" })) in
  let opt = Plan.Optimize.push_select plan in
  check_int "selects fused" 1
    (Op.count (function Op.Select _ -> true | _ -> false) opt)

let test_prune_keeps_whole_uses () =
  (* a column used whole must not be narrowed *)
  let plan =
    Op.Project ([ ("out", S.col "r") ], Op.Scan { input = "R"; binder = "r" })
  in
  let opt = Plan.Optimize.prune_columns plan in
  check_int "no narrowing projection inserted" 0
    (Op.count
       (function Op.Project (_, Op.Scan _) -> true | _ -> false)
       (match opt with Op.Project (_, inner) -> inner | p -> p))

let () =
  Alcotest.run "plan"
    [
      ( "sexpr",
        [
          Alcotest.test_case "null semantics" `Quick test_sexpr_nulls;
          Alcotest.test_case "labels" `Quick test_sexpr_labels;
        ] );
      ( "operators",
        [
          Alcotest.test_case "outer join" `Quick test_outer_join;
          Alcotest.test_case "unnest variants" `Quick test_unnest_variants;
          Alcotest.test_case "nest bag presence" `Quick test_nest_bag_presence;
          Alcotest.test_case "nest sum placeholders" `Quick
            test_nest_sum_placeholders;
          Alcotest.test_case "union alignment" `Quick test_union_alignment;
          Alcotest.test_case "dedup" `Quick test_dedup_rows;
          Alcotest.test_case "schema inference" `Quick test_schema_inference;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "select fusion" `Quick test_select_fusion;
          Alcotest.test_case "prune respects whole uses" `Quick
            test_prune_keeps_whole_uses;
        ] );
    ]
