(** Integration tests for the TPC-H benchmark suite: every (family, level,
    variant) cell must typecheck and produce identical results under the
    reference interpreter, the Standard route, and the Shredded route on a
    small dataset — including skewed data. *)

module V = Nrc.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_scale =
  {
    Tpch.Generator.default_scale with
    customers = 12;
    orders_per_customer = 3;
    lineitems_per_order = 3;
    parts = 16;
    comment_width = 10;
  }

let db = Tpch.Generator.generate small_scale
let skewed_db = Tpch.Generator.generate { small_scale with skew = 3 }

let cluster = { Exec.Config.unbounded with partitions = 5; workers = 3 }
let api_config = { Trance.Api.default_config with cluster }

let families =
  [
    Tpch.Queries.Flat_to_nested;
    Tpch.Queries.Nested_to_nested;
    Tpch.Queries.Nested_to_flat;
  ]

let cell_test ~wide ~family ~level ~db () =
  let prog = Tpch.Queries.program ~wide ~family ~level () in
  let inputs = Tpch.Queries.input_values ~wide ~family ~level db in
  (* typechecks as source NRC *)
  ignore (Nrc.Program.typecheck prog);
  let expected = Nrc.Program.eval_result prog inputs in
  let std =
    Trance.Api.run ~config:api_config ~strategy:Trance.Api.Standard prog inputs
  in
  (match std.Trance.Api.failure with
  | Some f ->
    Alcotest.failf "standard failed: %s" (Trance.Api.failure_message f)
  | None -> ());
  Fixtures.check_bag_equal "standard" expected (Option.get std.Trance.Api.value);
  let shred =
    Trance.Api.run ~config:api_config
      ~strategy:(Trance.Api.Shredded { unshred = true })
      prog inputs
  in
  (match shred.Trance.Api.failure with
  | Some f ->
    Alcotest.failf "shredded failed: %s" (Trance.Api.failure_message f)
  | None -> ());
  Fixtures.check_bag_equal "shredded" expected
    (Option.get shred.Trance.Api.value)

let cell_cases ~db ~tag =
  List.concat_map
    (fun family ->
      List.concat_map
        (fun level ->
          List.map
            (fun wide ->
              Alcotest.test_case
                (Printf.sprintf "%s L%d %s%s"
                   (Tpch.Queries.family_name family)
                   level
                   (if wide then "wide" else "narrow")
                   tag)
                `Quick
                (cell_test ~wide ~family ~level ~db))
            [ false; true ])
        [ 0; 1; 2; 3; 4 ])
    families

(* ------------------------------------------------------------------ *)
(* Generator sanity *)

let test_generator_shapes () =
  check_int "regions" 5 (List.length (V.bag_items db.Tpch.Generator.region));
  check_int "nations" 25 (List.length (V.bag_items db.Tpch.Generator.nation));
  check_int "customers" 12
    (List.length (V.bag_items db.Tpch.Generator.customer));
  check_int "orders" 36 (List.length (V.bag_items db.Tpch.Generator.orders));
  check_int "lineitems" 108
    (List.length (V.bag_items db.Tpch.Generator.lineitem))

let count_per_key field bag =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun row ->
      let k = V.field row field in
      Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    (V.bag_items bag);
  Hashtbl.fold (fun _ c acc -> max c acc) tbl 0

let test_skew_effect () =
  let big = { small_scale with customers = 100; skew = 0 } in
  let big_skew = { big with skew = 4 } in
  let d0 = Tpch.Generator.generate big in
  let d4 = Tpch.Generator.generate big_skew in
  let m0 = count_per_key "ckey" d0.Tpch.Generator.orders in
  let m4 = count_per_key "ckey" d4.Tpch.Generator.orders in
  check "skew concentrates orders on few customers" true (m4 > 3 * m0);
  let p0 = count_per_key "pkey" d0.Tpch.Generator.lineitem in
  let p4 = count_per_key "pkey" d4.Tpch.Generator.lineitem in
  check "skew concentrates lineitems on few parts" true (p4 > 3 * p0)

let test_nested_input_matches_query () =
  (* the generator's directly-built nested input equals the evaluated
     flat-to-nested query result *)
  List.iter
    (fun level ->
      List.iter
        (fun wide ->
          let q = Tpch.Queries.flat_to_nested ~wide ~level () in
          let expected =
            Nrc.Eval.eval
              (Nrc.Eval.env_of_list (Tpch.Generator.flat_inputs db))
              q
          in
          let built = Tpch.Generator.nested_input ~wide ~level db in
          Fixtures.check_bag_equal
            (Printf.sprintf "nested input L%d wide=%b" level wide)
            expected built)
        [ false; true ])
    [ 0; 1; 2; 3 ]

let test_zipf_determinism () =
  let a = Tpch.Generator.generate small_scale in
  let b = Tpch.Generator.generate small_scale in
  check "generator is deterministic" true
    (V.bag_equal a.Tpch.Generator.lineitem b.Tpch.Generator.lineitem)

let () =
  Alcotest.run "tpch"
    [
      ( "generator",
        [
          Alcotest.test_case "cardinalities" `Quick test_generator_shapes;
          Alcotest.test_case "skew shapes" `Quick test_skew_effect;
          Alcotest.test_case "nested input = flat-to-nested query" `Quick
            test_nested_input_matches_query;
          Alcotest.test_case "determinism" `Quick test_zipf_determinism;
        ] );
      ("cells (uniform)", cell_cases ~db ~tag:"");
      ("cells (skewed)", cell_cases ~db:skewed_db ~tag:" skew=3");
    ]
