(** Cross-strategy property tests on randomly generated queries and data
    (see {!Qgen}): the reference interpreter, the local plan interpreter,
    the distributed executor (standard, cogroup off, skew-aware), and the
    shredded pipeline (with and without domain elimination) must all agree
    on every generated case. This is the broadest validation layer of the
    repository. *)

module V = Nrc.Value
module E = Nrc.Expr

(* per-property case count; QCHECK_COUNT scales the whole suite up for the
   nightly campaign (the seed comes from QCHECK_SEED via qcheck-alcotest) *)
let count default =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let cluster = { Exec.Config.unbounded with partitions = 6; workers = 3 }
let api_config = { Trance.Api.default_config with cluster }

let reference q inputs = Nrc.Eval.eval (Nrc.Eval.env_of_list inputs) q

let prop_plan_agrees =
  QCheck.Test.make ~name:"random query: plan = reference" ~count:250
    Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let plan = Trance.Unnest.translate ~tenv:Qgen.inputs_ty q in
      let actual =
        Plan.Local_eval.eval_to_bag (Plan.Local_eval.env_of_list inputs) plan
      in
      V.approx_bag_equal expected actual)

let prop_optimized_plan_agrees =
  QCheck.Test.make ~name:"random query: optimized plan = reference"
    ~count:(count 250) Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let plan =
        Plan.Optimize.optimize ~config:Plan.Optimize.default
          (Trance.Unnest.translate ~tenv:Qgen.inputs_ty q)
      in
      let actual =
        Plan.Local_eval.eval_to_bag (Plan.Local_eval.env_of_list inputs) plan
      in
      V.approx_bag_equal expected actual)

let prop_unique_hint_agrees =
  QCheck.Test.make
    ~name:"random query: optimized plan with unique-key hint = reference"
    ~count:(count 250) Qgen.arbitrary_case (fun (q, inputs) ->
      (* deduplicate S on [a] so it is genuinely unique, then optimize with
         the matching hint: the aggregation-pushdown path (licensed by the
         declared key) must stay semantics-preserving *)
      let inputs = Qgen.dedup_s inputs in
      let expected = reference q inputs in
      let config =
        { Plan.Optimize.default with unique_keys = [ ("S", [ "a" ]) ] }
      in
      let plan =
        Plan.Optimize.optimize ~config
          (Trance.Unnest.translate ~tenv:Qgen.inputs_ty q)
      in
      let actual =
        Plan.Local_eval.eval_to_bag (Plan.Local_eval.env_of_list inputs) plan
      in
      V.approx_bag_equal expected actual)

(* the hint is not dead weight: on a SumBy over a join against S's declared
   key, the hinted optimizer must produce a structurally different
   (pushed-down) plan than the unhinted one *)
let test_hint_fires () =
  let q =
    E.ForUnion
      ( "n",
        E.Var "N",
        E.Singleton
          (E.Record
             [
               ("k", E.Proj (E.Var "n", "k"));
               ( "items",
                 E.SumBy
                   { keys = [ "a" ];
                     values = [ "t" ];
                     input =
                       E.ForUnion
                         ( "it",
                           E.Proj (E.Var "n", "items"),
                           E.ForUnion
                             ( "y",
                               E.Var "S",
                               E.If
                                 ( E.Cmp
                                     ( E.Eq,
                                       E.Proj (E.Var "it", "a"),
                                       E.Proj (E.Var "y", "a") ),
                                   E.Singleton
                                     (E.Record
                                        [
                                          ("a", E.Proj (E.Var "it", "a"));
                                          ( "t",
                                            E.Prim
                                              ( E.Mul,
                                                E.Proj (E.Var "it", "q"),
                                                E.Proj (E.Var "y", "w") ) );
                                        ]),
                                   None ) ) ) } );
             ]) )
  in
  let base = Trance.Unnest.translate ~tenv:Qgen.inputs_ty q in
  let hinted =
    Plan.Optimize.optimize
      ~config:{ Plan.Optimize.default with unique_keys = [ ("S", [ "a" ]) ] }
      base
  in
  let unhinted = Plan.Optimize.optimize ~config:Plan.Optimize.default base in
  Alcotest.(check bool)
    "unique-key hint rewrites the plan (aggregation pushdown fired)" true
    (hinted <> unhinted)

let run_strategy ?(config = api_config) strategy q inputs =
  let prog = Nrc.Program.of_expr ~inputs:Qgen.inputs_ty ~name:"Q" q in
  Trance.Api.run ~config ~strategy prog inputs

let prop_executor_agrees =
  QCheck.Test.make ~name:"random query: distributed standard = reference"
    ~count:(count 150) Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let r = run_strategy Trance.Api.Standard q inputs in
      match r.Trance.Api.value with
      | Some v -> V.approx_bag_equal expected v
      | None -> false)

let prop_executor_no_cogroup_agrees =
  QCheck.Test.make ~name:"random query: cogroup off = reference"
    ~count:(count 100) Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let config = { api_config with cogroup = false } in
      let r = run_strategy ~config Trance.Api.Standard q inputs in
      match r.Trance.Api.value with
      | Some v -> V.approx_bag_equal expected v
      | None -> false)

let prop_skew_aware_agrees =
  QCheck.Test.make ~name:"random query: skew-aware = reference"
    ~count:(count 100) Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let config =
        { api_config with
          skew_aware = true;
          cluster = { cluster with broadcast_limit = 64 } }
      in
      let r = run_strategy ~config Trance.Api.Standard q inputs in
      match r.Trance.Api.value with
      | Some v -> V.approx_bag_equal expected v
      | None -> false)

let prop_shredded_agrees =
  QCheck.Test.make ~name:"random query: shredded pipeline = reference"
    ~count:(count 150) Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let r = run_strategy (Trance.Api.Shredded { unshred = true }) q inputs in
      match r.Trance.Api.value with
      | Some v -> V.approx_bag_equal expected v
      | None -> false)

let prop_shredded_no_domelim_agrees =
  QCheck.Test.make
    ~name:"random query: shredded without domain elimination = reference"
    ~count:(count 100) Qgen.arbitrary_case (fun (q, inputs) ->
      let expected = reference q inputs in
      let prog = Nrc.Program.of_expr ~inputs:Qgen.inputs_ty ~name:"Q" q in
      let _, _, actual =
        Trance.Shred_pipeline.eval_shredded
          ~config:{ Trance.Materialize.domain_elimination = false }
          prog inputs
      in
      V.approx_bag_equal expected actual)

let prop_shuffle_conservation =
  QCheck.Test.make
    ~name:"random query: executor metrics are sane (bytes, rows >= 0)"
    ~count:(count 100) Qgen.arbitrary_case (fun (q, inputs) ->
      let r = run_strategy Trance.Api.Standard q inputs in
      let s = r.Trance.Api.stats in
      Exec.Stats.shuffled_bytes s >= 0
      && Exec.Stats.peak_worker_bytes s >= 0
      && Exec.Stats.sim_seconds s >= 0.
      && Exec.Stats.rows_processed s >= 0)

let () =
  Alcotest.run "random"
    [
      ( "cross-strategy",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_plan_agrees;
            prop_optimized_plan_agrees;
            prop_unique_hint_agrees;
            prop_executor_agrees;
            prop_executor_no_cogroup_agrees;
            prop_skew_aware_agrees;
            prop_shredded_agrees;
            prop_shredded_no_domelim_agrees;
            prop_shuffle_conservation;
          ] );
      ( "optimizer hints",
        [ Alcotest.test_case "unique-key hint fires" `Quick test_hint_fires ] );
    ]
