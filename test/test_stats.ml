(** Algebraic properties of the {!Exec.Stats.snapshot} slice arithmetic.

    {!Trance.Api} computes per-step slices with [snapshot] + [diff] and
    promises that slices [merge] back to the run totals; the fault layer
    leans on the same algebra for its recovery counters. These properties
    pin the laws down: [merge] is a commutative monoid with [zero] (peaks
    by [max], everything else additive), [diff] inverts [merge] on the
    additive counters, and the recorder entry points land in the snapshot
    they claim to. [sim_seconds] is generated as whole floats so equality
    is exact. *)

module S = Exec.Stats

let count default =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let gen_snapshot : S.snapshot QCheck.Gen.t =
  let open QCheck.Gen in
  let small = int_bound 10_000 in
  let* shuffled_bytes = small in
  let* broadcast_bytes = small in
  let* peak_worker_bytes = small in
  let* rows_processed = small in
  let* stages = int_bound 50 in
  let* sim_seconds = map float_of_int (int_bound 1_000) in
  let* task_retries = int_bound 20 in
  let* retried_tasks = int_bound 20 in
  let* speculative_tasks = int_bound 5 in
  let* recomputed_bytes = small in
  let* spilled_bytes = small in
  let* spill_partitions = int_bound 50 in
  let* spill_rounds = int_bound 20 in
  let* checkpoints_written = int_bound 20 in
  let* checkpoint_bytes = small in
  let* lineage_truncated = small in
  let* recovery_seconds = map float_of_int (int_bound 100) in
  let* wall_seconds = map float_of_int (int_bound 100) in
  return
    {
      S.shuffled_bytes;
      broadcast_bytes;
      peak_worker_bytes;
      rows_processed;
      stages;
      sim_seconds;
      task_retries;
      retried_tasks;
      speculative_tasks;
      recomputed_bytes;
      spilled_bytes;
      spill_partitions;
      spill_rounds;
      checkpoints_written;
      checkpoint_bytes;
      lineage_truncated;
      recovery_seconds;
      wall_seconds;
    }

let arbitrary_snapshot =
  QCheck.make ~print:(Fmt.str "%a" S.pp_snapshot) gen_snapshot

let pair = QCheck.pair arbitrary_snapshot arbitrary_snapshot
let triple = QCheck.triple arbitrary_snapshot arbitrary_snapshot arbitrary_snapshot

let prop_merge_zero =
  QCheck.Test.make ~name:"merge: zero is the identity" ~count:(count 200)
    arbitrary_snapshot (fun a ->
      S.merge a S.zero = a && S.merge S.zero a = a)

let prop_merge_comm =
  QCheck.Test.make ~name:"merge: commutative" ~count:(count 200) pair
    (fun (a, b) -> S.merge a b = S.merge b a)

let prop_merge_assoc =
  QCheck.Test.make ~name:"merge: associative" ~count:(count 200) triple
    (fun (a, b, c) -> S.merge (S.merge a b) c = S.merge a (S.merge b c))

let prop_diff_zero =
  QCheck.Test.make ~name:"diff: subtracting zero is the identity"
    ~count:(count 200) arbitrary_snapshot (fun a -> S.diff a S.zero = a)

let prop_diff_self =
  QCheck.Test.make
    ~name:"diff: a - a is zero except the high-water peak" ~count:(count 200)
    arbitrary_snapshot (fun a ->
      S.diff a a = { S.zero with S.peak_worker_bytes = a.S.peak_worker_bytes })

(* the law the per-step reports rely on: a later snapshot minus an earlier
   one recovers exactly the counters charged in between (the peak stays a
   run-wide high-water mark) *)
let prop_diff_inverts_merge =
  QCheck.Test.make ~name:"diff: (a merge b) - b recovers a's additive part"
    ~count:(count 200) pair (fun (a, b) ->
      let after = S.merge a b in
      S.diff after b
      = { a with
          S.peak_worker_bytes =
            max a.S.peak_worker_bytes b.S.peak_worker_bytes })

let prop_merge_monotone =
  QCheck.Test.make ~name:"merge: never loses counters" ~count:(count 200)
    pair (fun (a, b) ->
      let m = S.merge a b in
      m.S.shuffled_bytes = a.S.shuffled_bytes + b.S.shuffled_bytes
      && m.S.task_retries = a.S.task_retries + b.S.task_retries
      && m.S.retried_tasks = a.S.retried_tasks + b.S.retried_tasks
      && m.S.speculative_tasks = a.S.speculative_tasks + b.S.speculative_tasks
      && m.S.recomputed_bytes = a.S.recomputed_bytes + b.S.recomputed_bytes
      && m.S.spilled_bytes = a.S.spilled_bytes + b.S.spilled_bytes
      && m.S.spill_partitions = a.S.spill_partitions + b.S.spill_partitions
      && m.S.spill_rounds = a.S.spill_rounds + b.S.spill_rounds
      && m.S.peak_worker_bytes
         = max a.S.peak_worker_bytes b.S.peak_worker_bytes)

(* the recorder entry points land where they claim to *)
let test_recorders () =
  let t = S.create () in
  S.add_task_retries t 3;
  S.add_retried_tasks t 2;
  S.add_speculative t 1;
  S.add_recomputed t 4096;
  S.add_spilled t 2048;
  S.add_spill_partitions t 6;
  S.add_spill_rounds t 2;
  S.observe_worker t 512;
  S.observe_worker t 256;
  let s = S.snapshot t in
  Alcotest.(check int) "task_retries" 3 s.S.task_retries;
  Alcotest.(check int) "retried_tasks" 2 s.S.retried_tasks;
  Alcotest.(check int) "speculative_tasks" 1 s.S.speculative_tasks;
  Alcotest.(check int) "recomputed_bytes" 4096 s.S.recomputed_bytes;
  Alcotest.(check int) "spilled_bytes" 2048 s.S.spilled_bytes;
  Alcotest.(check int) "spill_partitions" 6 s.S.spill_partitions;
  Alcotest.(check int) "spill_rounds" 2 s.S.spill_rounds;
  Alcotest.(check int) "peak is a high-water mark" 512 s.S.peak_worker_bytes;
  Alcotest.(check int) "accessors agree with the snapshot"
    s.S.task_retries (S.task_retries t);
  Alcotest.(check bool) "fresh counters are zero except nothing" true
    (S.snapshot (S.create ()) = S.zero)

let () =
  Alcotest.run "stats"
    [
      ( "snapshot algebra",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_merge_zero;
            prop_merge_comm;
            prop_merge_assoc;
            prop_diff_zero;
            prop_diff_self;
            prop_diff_inverts_merge;
            prop_merge_monotone;
          ] );
      ( "recorders",
        [ Alcotest.test_case "add_* and observe_worker" `Quick test_recorders ]
      );
    ]
