(** Tests for the execution-tracing subsystem: span-tree invariants
    (children aggregate into their parent, broadcast joins move no shuffle
    bytes of their own, guarantee-skipped joins emit no shuffle span at
    all), agreement between aggregated span metrics and the flat
    {!Exec.Stats} totals, per-step report slices merging back to the run
    totals, and JSON export sanity. *)

module B = Nrc.Builder
module V = Nrc.Value
module S = Plan.Sexpr
module Op = Plan.Op
module Trace = Exec.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cluster = { Exec.Config.unbounded with partitions = 7; workers = 3 }
let api_config = { Trance.Api.default_config with cluster; trace = true }

let run_traced ?(config = api_config) strategy q =
  let prog = Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" q in
  Trance.Api.run ~config ~strategy prog Fixtures.inputs_val

let close a b =
  Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

(* ------------------------------------------------------------------ *)
(* Aggregated span metrics = flat Stats totals *)

let check_totals what (r : Trance.Api.run) =
  check (what ^ ": spans recorded") true (r.Trance.Api.trace <> []);
  let t = Trace.agg r.Trance.Api.trace in
  let s = r.Trance.Api.stats in
  check_int (what ^ ": shuffled bytes") (Exec.Stats.shuffled_bytes s)
    t.Trace.shuffled_bytes;
  check_int (what ^ ": broadcast bytes") (Exec.Stats.broadcast_bytes s)
    t.Trace.broadcast_bytes;
  check_int (what ^ ": peak worker bytes") (Exec.Stats.peak_worker_bytes s)
    t.Trace.peak_worker_bytes;
  check_int (what ^ ": stages") (Exec.Stats.stages s) t.Trace.stages;
  check_int (what ^ ": rows") (Exec.Stats.rows_processed s) t.Trace.rows_out;
  check_int (what ^ ": spilled bytes") (Exec.Stats.spilled_bytes s)
    t.Trace.spilled_bytes;
  check_int (what ^ ": spill partitions") (Exec.Stats.spill_partitions s)
    t.Trace.spill_partitions;
  check_int (what ^ ": spill rounds") (Exec.Stats.spill_rounds s)
    t.Trace.spill_rounds;
  check (what ^ ": sim seconds") true
    (close (Exec.Stats.sim_seconds s) t.Trace.sim_seconds)

(* Children's inclusive totals never exceed the parent's, at every level. *)
let rec check_span_sums what (sp : Trace.span) =
  let t = Trace.total sp in
  let kids = Trace.agg sp.Trace.children in
  check (what ^ ": child shuffle <= parent") true
    (kids.Trace.shuffled_bytes <= t.Trace.shuffled_bytes);
  check (what ^ ": child broadcast <= parent") true
    (kids.Trace.broadcast_bytes <= t.Trace.broadcast_bytes);
  check (what ^ ": child peak <= parent") true
    (kids.Trace.peak_worker_bytes <= t.Trace.peak_worker_bytes);
  check (what ^ ": child sim <= parent") true
    (kids.Trace.sim_seconds <= t.Trace.sim_seconds +. 1e-9);
  List.iter (check_span_sums what) sp.Trace.children

(* Joins that chose broadcast move no shuffle bytes of their own and never
   open a direct shuffle span. *)
let check_broadcast_joins what (r : Trance.Api.run) =
  let bjoins =
    Trace.find_all
      (fun sp -> sp.Trace.strategy = Some Trace.Broadcast)
      r.Trance.Api.trace
  in
  List.iter
    (fun (sp : Trace.span) ->
      check_int (what ^ ": broadcast join own shuffle") 0
        sp.Trace.metrics.Trace.shuffled_bytes;
      check (what ^ ": broadcast join has no shuffle child") true
        (List.for_all
           (fun (c : Trace.span) -> c.Trace.op <> "Shuffle")
           sp.Trace.children))
    bjoins

let strategies =
  [
    Trance.Api.Standard;
    Trance.Api.Shredded { unshred = true };
    Trance.Api.SparkSQL_proxy;
  ]

let invariant_tests =
  List.concat_map
    (fun (name, q) ->
      List.map
        (fun strategy ->
          let sname = Trance.Api.strategy_name strategy in
          let what = Printf.sprintf "%s [%s]" name sname in
          Alcotest.test_case what `Quick (fun () ->
              let r = run_traced strategy q in
              check (what ^ ": no failure") true (r.Trance.Api.failure = None);
              check_totals what r;
              List.iter (check_span_sums what) r.Trance.Api.trace;
              check_broadcast_joins what r))
        strategies)
    Fixtures.corpus

(* ------------------------------------------------------------------ *)
(* Strategy recording on hand-built join plans *)

let keyed_bag n =
  V.Bag
    (List.init n (fun i -> V.Tuple [ ("k", V.Int (i mod 5)); ("v", V.Int i) ]))

let join_plan =
  Op.Join
    {
      left = Op.Scan { input = "L"; binder = "x" };
      right = Op.Scan { input = "R"; binder = "y" };
      lkey = [ S.Col [ "x"; "k" ] ];
      rkey = [ S.Col [ "y"; "k" ] ];
      kind = Op.Inner;
    }

let exec_traced ~config env plan =
  let stats = Exec.Stats.create () in
  let ctx = Trace.create () in
  let ds = Exec.Executor.run_plan ~trace:ctx ~config ~stats env plan in
  ignore ds;
  (stats, Trace.roots ctx)

let test_guarantee_skipped () =
  (* both sides pre-partitioned on the join key and broadcast disabled: the
     join must record Guarantee_skipped and no bytes may move *)
  let mk v = Exec.Dataset.of_bag_by ~partitions:7 ~key:[ [ "k" ] ] v in
  let env =
    Exec.Executor.env_of_list
      [ ("L", mk (keyed_bag 40)); ("R", mk (keyed_bag 25)) ]
  in
  let config = { cluster with Exec.Config.broadcast_limit = 0 } in
  let stats, roots = exec_traced ~config env join_plan in
  let joins =
    Trace.find_all
      (fun sp -> sp.Trace.strategy = Some Trace.Guarantee_skipped)
      roots
  in
  check_int "one guarantee-skipped join" 1 (List.length joins);
  let j = List.hd joins in
  check "no shuffle span under the join" true
    (Trace.find_all (fun sp -> sp.Trace.op = "Shuffle") [ j ] = []);
  check_int "no shuffled bytes in the subtree" 0
    (Trace.total j).Trace.shuffled_bytes;
  check_int "flat stats agree" 0 (Exec.Stats.shuffled_bytes stats)

let test_shuffle_strategy () =
  (* unpartitioned inputs with broadcast disabled: the join must shuffle,
     recording Shuffle child spans that carry all the moved bytes *)
  let mk v = Exec.Dataset.of_bag ~partitions:7 v in
  let env =
    Exec.Executor.env_of_list
      [ ("L", mk (keyed_bag 40)); ("R", mk (keyed_bag 25)) ]
  in
  let config = { cluster with Exec.Config.broadcast_limit = 0 } in
  let stats, roots = exec_traced ~config env join_plan in
  let joins =
    Trace.find_all (fun sp -> sp.Trace.strategy = Some Trace.Shuffle) roots
  in
  check_int "one shuffle join" 1 (List.length joins);
  let j = List.hd joins in
  let shuffles = Trace.find_all (fun sp -> sp.Trace.op = "Shuffle") [ j ] in
  check "shuffle spans present" true (shuffles <> []);
  check_int "join's own shuffled bytes are zero (children carry them)" 0
    j.Trace.metrics.Trace.shuffled_bytes;
  check_int "shuffle spans carry the full total"
    (Exec.Stats.shuffled_bytes stats)
    (Trace.agg shuffles).Trace.shuffled_bytes

let test_broadcast_strategy () =
  (* a small right side under a generous broadcast limit: Broadcast, with
     zero shuffled bytes anywhere under the join *)
  let env =
    Exec.Executor.env_of_list
      [
        ("L", Exec.Dataset.of_bag ~partitions:7 (keyed_bag 200));
        ("R", Exec.Dataset.of_bag ~partitions:7 (keyed_bag 10));
      ]
  in
  let stats, roots = exec_traced ~config:cluster env join_plan in
  let joins =
    Trace.find_all (fun sp -> sp.Trace.strategy = Some Trace.Broadcast) roots
  in
  check_int "one broadcast join" 1 (List.length joins);
  let j = List.hd joins in
  check "broadcast bytes recorded" true
    ((Trace.total j).Trace.broadcast_bytes > 0);
  check_int "flat stats agree" (Exec.Stats.broadcast_bytes stats)
    (Trace.total j).Trace.broadcast_bytes;
  check "no hash-shuffle span under a broadcast join" true
    (Trace.find_all (fun sp -> sp.Trace.op = "Shuffle") [ j ] = [])

let test_skew_split_recorded () =
  (* one key owning 70% of a large input, skew-aware mode on: some join must
     record the Skew_split strategy with a positive heavy-key count *)
  let rows =
    List.init 1000 (fun i ->
        V.Tuple
          [ ("k", V.Int (if i mod 10 < 7 then 999 else i)); ("v", V.Int i) ])
  in
  let small =
    List.init 50 (fun i ->
        V.Tuple [ ("k", V.Int (if i = 0 then 999 else i)); ("w", V.Int i) ])
  in
  let tenv =
    [
      ("R", Nrc.Types.(bag (tuple [ ("k", int_); ("v", int_) ])));
      ("Sm", Nrc.Types.(bag (tuple [ ("k", int_); ("w", int_) ])));
    ]
  in
  let q =
    B.(
      for_ "x" (input "R") (fun x ->
          for_ "y" (input "Sm") (fun y ->
              where (x #. "k" == y #. "k")
                (sng (record [ ("v", x #. "v"); ("w", y #. "w") ])))))
  in
  let config =
    {
      api_config with
      skew_aware = true;
      cluster = { cluster with broadcast_limit = 1 };
    }
  in
  let r =
    Trance.Api.run ~config ~strategy:Trance.Api.Standard
      (Nrc.Program.of_expr ~inputs:tenv ~name:"Q" q)
      [ ("R", V.Bag rows); ("Sm", V.Bag small) ]
  in
  check "no failure" true (r.Trance.Api.failure = None);
  let splits =
    Trace.find_all
      (fun sp ->
        match sp.Trace.strategy with
        | Some (Trace.Skew_split { heavy_keys }) -> heavy_keys > 0
        | _ -> false)
      r.Trance.Api.trace
  in
  check "skew-split join recorded" true (splits <> [])

(* ------------------------------------------------------------------ *)
(* Step reports *)

let test_step_reports_merge () =
  let r = run_traced (Trance.Api.Shredded { unshred = true }) Fixtures.example1 in
  check "no failure" true (r.Trance.Api.failure = None);
  check "at least two steps (query + Unshred)" true
    (List.length r.Trance.Api.steps >= 2);
  check "every step carries its span tree" true
    (List.for_all
       (fun (s : Trance.Api.step_report) -> s.Trance.Api.trace <> None)
       r.Trance.Api.steps);
  let merged =
    List.fold_left
      (fun acc (s : Trance.Api.step_report) ->
        Exec.Stats.merge acc s.Trance.Api.stats)
      Exec.Stats.zero r.Trance.Api.steps
  in
  let s = Exec.Stats.snapshot r.Trance.Api.stats in
  check_int "merged shuffle = total" s.Exec.Stats.shuffled_bytes
    merged.Exec.Stats.shuffled_bytes;
  check_int "merged broadcast = total" s.Exec.Stats.broadcast_bytes
    merged.Exec.Stats.broadcast_bytes;
  check_int "merged stages = total" s.Exec.Stats.stages
    merged.Exec.Stats.stages;
  check_int "merged peak = total" s.Exec.Stats.peak_worker_bytes
    merged.Exec.Stats.peak_worker_bytes;
  check "merged sim = total" true
    (close s.Exec.Stats.sim_seconds merged.Exec.Stats.sim_seconds);
  check "step_seconds compat helper matches" true
    (List.for_all2
       (fun (name, t) (s : Trance.Api.step_report) ->
         name = s.Trance.Api.step && t = s.Trance.Api.sim_seconds)
       (Trance.Api.step_seconds r)
       r.Trance.Api.steps)

let test_trace_survives_oom () =
  (* the FAIL case (spilling off, no fallback) still reports the partial
     step slices and spans *)
  let config =
    { api_config with
      cluster =
        { cluster with worker_mem = 512; spill = Exec.Config.Off };
      route_fallback = false }
  in
  let r = run_traced ~config Trance.Api.Standard Fixtures.example1 in
  check "failure reported" true (r.Trance.Api.failure <> None);
  (match r.Trance.Api.failure with
  | Some (Trance.Api.Out_of_memory { worker_bytes; budget; _ }) ->
    check "overflow exceeds budget" true (worker_bytes > budget);
    check_int "budget is the configured one" 512 budget
  | _ -> Alcotest.fail "expected Out_of_memory");
  check "spans survive the failure" true (r.Trance.Api.trace <> [])

let test_spill_traced () =
  (* the same budget with spilling on completes; the span tree mirrors the
     spill counters exactly and the observed peak respects the budget *)
  let clean = run_traced Trance.Api.Standard Fixtures.example1 in
  let peak = Exec.Stats.peak_worker_bytes clean.Trance.Api.stats in
  let budget = max 1 (peak / 4) in
  let config =
    { api_config with
      cluster =
        { cluster with worker_mem = budget; spill = Exec.Config.On };
      route_fallback = false }
  in
  let r = run_traced ~config Trance.Api.Standard Fixtures.example1 in
  check "no failure with spilling on" true (r.Trance.Api.failure = None);
  check "outcome is Degraded" true
    (Trance.Api.outcome r = Trance.Api.Degraded);
  check "spill accounted" true
    (Exec.Stats.spilled_bytes r.Trance.Api.stats > 0);
  check "post-spill peak within budget" true
    (Exec.Stats.peak_worker_bytes r.Trance.Api.stats <= budget);
  check_totals "spill trace" r;
  check "spilling costs simulated disk time" true
    (Exec.Stats.sim_seconds r.Trance.Api.stats
    > Exec.Stats.sim_seconds clean.Trance.Api.stats)

(* ------------------------------------------------------------------ *)
(* Stats snapshot/diff/merge *)

let test_snapshot_diff () =
  let s = Exec.Stats.create () in
  Exec.Stats.add_shuffled s 100;
  Exec.Stats.observe_worker s 400;
  let before = Exec.Stats.snapshot s in
  Exec.Stats.add_shuffled s 20;
  Exec.Stats.add_broadcast s 7;
  Exec.Stats.add_stage s;
  Exec.Stats.add_rows s 5;
  Exec.Stats.add_sim_seconds s 0.25;
  Exec.Stats.observe_worker s 300;
  let slice = Exec.Stats.diff (Exec.Stats.snapshot s) before in
  check_int "diff shuffled" 20 slice.Exec.Stats.shuffled_bytes;
  check_int "diff broadcast" 7 slice.Exec.Stats.broadcast_bytes;
  check_int "diff stages" 1 slice.Exec.Stats.stages;
  check_int "diff rows" 5 slice.Exec.Stats.rows_processed;
  check "diff sim" true (slice.Exec.Stats.sim_seconds = 0.25);
  (* the peak is a run-wide high-water mark: the slice keeps after's *)
  check_int "diff peak" 400 slice.Exec.Stats.peak_worker_bytes;
  let m = Exec.Stats.merge before slice in
  check_int "merge shuffled" 120 m.Exec.Stats.shuffled_bytes;
  check_int "merge peak (max)" 400 m.Exec.Stats.peak_worker_bytes

(* ------------------------------------------------------------------ *)
(* JSON export *)

let balanced str =
  let depth = ref 0 and ok = ref true and in_str = ref false in
  let prev = ref ' ' in
  String.iter
    (fun c ->
      (if !in_str then (if c = '"' && !prev <> '\\' then in_str := false)
       else
         match c with
         | '"' -> in_str := true
         | '{' | '[' -> incr depth
         | '}' | ']' ->
           decr depth;
           if !depth < 0 then ok := false
         | _ -> ());
      (* a backslash escaping a backslash must not escape the next char *)
      prev := (if !prev = '\\' && c = '\\' then ' ' else c))
    str;
  !ok && !depth = 0 && not !in_str

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_json_export () =
  let r = run_traced (Trance.Api.Shredded { unshred = true }) Fixtures.example1 in
  let j = Trance.Api.run_json r in
  check "run json is brace-balanced" true (balanced j);
  List.iter
    (fun key ->
      check ("run json has " ^ key) true (contains j ("\"" ^ key ^ "\":")))
    [ "strategy"; "wall_seconds"; "failure"; "degradation"; "totals";
      "steps"; "trace"; "spilled_bytes"; "spill_partitions"; "spill_rounds" ];
  match r.Trance.Api.trace with
  | [] -> Alcotest.fail "no spans"
  | sp :: _ ->
    let sj = Trace.to_json sp in
    check "span json is brace-balanced" true (balanced sj);
    List.iter
      (fun key ->
        check ("span json has " ^ key) true (contains sj ("\"" ^ key ^ "\":")))
      [ "id"; "op"; "stage"; "strategy"; "metrics"; "total"; "children" ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace"
    [
      ("span invariants (corpus)", invariant_tests);
      ( "join strategies",
        [
          Alcotest.test_case "guarantee-skipped: no shuffle span" `Quick
            test_guarantee_skipped;
          Alcotest.test_case "shuffle: child spans carry the bytes" `Quick
            test_shuffle_strategy;
          Alcotest.test_case "broadcast: zero shuffled bytes" `Quick
            test_broadcast_strategy;
          Alcotest.test_case "skew-split recorded" `Quick
            test_skew_split_recorded;
        ] );
      ( "step reports",
        [
          Alcotest.test_case "slices merge to totals" `Quick
            test_step_reports_merge;
          Alcotest.test_case "trace survives OOM" `Quick
            test_trace_survives_oom;
          Alcotest.test_case "spilled run traced within budget" `Quick
            test_spill_traced;
        ] );
      ( "stats snapshots",
        [ Alcotest.test_case "snapshot/diff/merge" `Quick test_snapshot_diff ] );
      ( "json",
        [ Alcotest.test_case "export sanity" `Quick test_json_export ] );
    ]
