(** The domain pool and its determinism contract.

    Two layers. First, properties of {!Exec.Pool} itself: [map] agrees
    with [Array.mapi] at every domain count, per-task deltas are folded
    strictly in task-index order (checked with a non-commutative monoid),
    an associative merge reproduces the sequential left fold, and the
    lowest-index exception is the one that propagates — with the pool
    still usable afterwards. Second, the differential campaign behind the
    [--domains] knob: for every corpus query, strategy and scenario
    (clean, fault storm, tight-memory spilling, checkpointed storm), a
    4-domain run must be bit-identical to the sequential run — same
    value, same failure, same counters, same span tree — once the only
    legitimately non-deterministic quantity, wall-clock time, is stripped
    ({!Exec.Stats.strip_wall}, {!Exec.Trace.without_wall}). *)

module V = Nrc.Value
module F = Exec.Faults
module Pool = Exec.Pool
module Trace = Exec.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let count default =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

(* ------------------------------------------------------------------ *)
(* Pool properties *)

let arbitrary_pool_case =
  QCheck.make
    ~print:(fun (l, d) -> Printf.sprintf "domains=%d n=%d" d (List.length l))
    QCheck.Gen.(pair (list_size (int_bound 50) small_int) (int_range 1 6))

let prop_map_matches_sequential =
  QCheck.Test.make ~name:"map: agrees with Array.mapi at any domain count"
    ~count:(count 200) arbitrary_pool_case (fun (l, domains) ->
      let arr = Array.of_list l in
      let f i x = (i * 1031) lxor (x * 7) in
      Pool.with_pool ~domains (fun pool -> Pool.map pool f arr)
      = Array.mapi f arr)

(* the delta monoid need not be commutative: list append keeps the
   task-index order visible, so the folded delta spells out 0..n-1 *)
let prop_delta_fold_order =
  QCheck.Test.make
    ~name:"map_parts: deltas fold in task-index order (non-commutative)"
    ~count:(count 200) arbitrary_pool_case (fun (l, domains) ->
      let arr = Array.of_list l in
      let out, order =
        Pool.with_pool ~domains (fun pool ->
            Pool.map_parts pool ~zero:[] ~merge:( @ )
              (fun i x -> (x + 1, [ i ]))
              arr)
      in
      out = Array.map (fun x -> x + 1) arr
      && order = List.init (Array.length arr) Fun.id)

(* with an associative (but still non-commutative) merge, any grouping
   the pool picks reproduces the sequential left fold exactly *)
let prop_delta_merge_associative =
  QCheck.Test.make
    ~name:"map_parts: associative merge reproduces the sequential fold"
    ~count:(count 200) arbitrary_pool_case (fun (l, domains) ->
      let arr = Array.of_list l in
      let _, d =
        Pool.with_pool ~domains (fun pool ->
            Pool.map_parts pool ~zero:"" ~merge:( ^ )
              (fun i x -> ((), Printf.sprintf "<%d:%d>" i x))
              arr)
      in
      d
      = String.concat ""
          (List.mapi (fun i x -> Printf.sprintf "<%d:%d>" i x) l))

(* sequential semantics: the first (lowest-index) raising task is the one
   the caller observes, whatever order the domains actually ran in — and
   the pool survives to run the next job *)
let test_exception_lowest_index () =
  Pool.with_pool ~domains:4 (fun pool ->
      let arr = Array.init 20 Fun.id in
      (match
         Pool.map pool
           (fun i x -> if i mod 3 = 1 then failwith (string_of_int i) else x)
           arr
       with
      | _ -> Alcotest.fail "expected the task exception to propagate"
      | exception Failure m -> check_int "lowest raising index" 1 (int_of_string m));
      check "pool reusable after an exception" true
        (Pool.map pool (fun i x -> i + x) arr = Array.mapi (fun i x -> i + x) arr))

let test_create_shutdown () =
  let p = Pool.create ~domains:3 in
  check_int "size" 3 (Pool.size p);
  check "runs a job" true
    (Pool.map p (fun i x -> i * x) (Array.init 10 Fun.id)
    = Array.init 10 (fun i -> i * i));
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *)

let test_empty_and_singleton () =
  Pool.with_pool ~domains:4 (fun pool ->
      let out, d =
        Pool.map_parts pool ~zero:"z" ~merge:( ^ )
          (fun i x -> (x, string_of_int i))
          [||]
      in
      check "empty input, empty output" true (out = [||]);
      check "empty input keeps zero" true (d = "z");
      check "singleton" true (Pool.map pool (fun i x -> i + x) [| 9 |] = [| 9 |]))

(* ------------------------------------------------------------------ *)
(* The differential campaign: corpus x strategy x scenario, domains 1 = 4 *)

let cluster = { Exec.Config.unbounded with partitions = 7; workers = 3 }
let api_config = { Trance.Api.default_config with cluster; trace = true }

let with_domains (config : Trance.Api.config) domains =
  { config with
    Trance.Api.cluster =
      { config.Trance.Api.cluster with Exec.Config.domains } }

let run_q ~config strategy q =
  let prog = Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" q in
  Trance.Api.run ~config ~strategy prog Fixtures.inputs_val

let strategies =
  [
    ("Standard", Trance.Api.Standard, api_config);
    ("Shred+Unshred", Trance.Api.Shredded { unshred = true }, api_config);
    ( "Standard+skew",
      Trance.Api.Standard,
      { api_config with
        Trance.Api.skew_aware = true;
        cluster = { cluster with broadcast_limit = 64 } } );
  ]

let storm =
  [
    { (F.default_spec F.Worker_crash) with F.stage = 1 };
    { (F.default_spec F.Task_failure) with F.stage = 2; fails = 2 };
    { (F.default_spec F.Fetch_failure) with F.stage = 3; fails = 2 };
  ]

(* each scenario maps the strategy's base config to the config under
   test; the memory ladder calibrates against the clean sequential peak *)
let scenarios =
  [
    ("clean", fun config _strategy _q -> config);
    ( "fault storm",
      fun config _strategy _q -> { config with Trance.Api.faults = storm } );
    ( "memory ladder",
      fun config strategy q ->
        let clean = run_q ~config:(with_domains config 1) strategy q in
        let peak = Exec.Stats.peak_worker_bytes clean.Trance.Api.stats in
        { config with
          Trance.Api.route_fallback = false;
          cluster =
            { config.Trance.Api.cluster with
              worker_mem = max 1 (peak / 4);
              spill = Exec.Config.On } } );
    ( "checkpoint storm",
      fun config _strategy _q ->
        { config with
          Trance.Api.faults = F.storm ~first_stage:1 ~span:4 3;
          cluster =
            { config.Trance.Api.cluster with
              Exec.Config.checkpoint = Exec.Config.Every 2 } } );
  ]

let stripped_spans (r : Trance.Api.run) =
  Trace.spans_json (List.map Trace.without_wall r.Trance.Api.trace)

let assert_bit_identical what (r1 : Trance.Api.run) (rn : Trance.Api.run) =
  check (what ^ ": same value") true (r1.Trance.Api.value = rn.Trance.Api.value);
  check (what ^ ": same failure") true
    (r1.Trance.Api.failure = rn.Trance.Api.failure);
  check (what ^ ": same counters once wall is stripped") true
    (Exec.Stats.strip_wall (Exec.Stats.snapshot r1.Trance.Api.stats)
    = Exec.Stats.strip_wall (Exec.Stats.snapshot rn.Trance.Api.stats));
  check (what ^ ": same span tree once wall is stripped") true
    (stripped_spans r1 = stripped_spans rn);
  check (what ^ ": same per-step sim seconds") true
    (Trance.Api.step_seconds r1 = Trance.Api.step_seconds rn)

let campaign_tests =
  List.concat_map
    (fun (name, q) ->
      List.concat_map
        (fun (sname, strategy, config) ->
          List.map
            (fun (scname, tweak) ->
              let what = Printf.sprintf "%s [%s] %s" name sname scname in
              Alcotest.test_case what `Quick (fun () ->
                  let config = tweak config strategy q in
                  let r1 = run_q ~config:(with_domains config 1) strategy q in
                  let r4 = run_q ~config:(with_domains config 4) strategy q in
                  assert_bit_identical what r1 r4))
            scenarios)
        strategies)
    Fixtures.corpus

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "pool"
    [
      ( "pool properties",
        [
          Alcotest.test_case "lowest-index exception propagates" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "create / run / shutdown (idempotent)" `Quick
            test_create_shutdown;
          Alcotest.test_case "empty and singleton inputs" `Quick
            test_empty_and_singleton;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_map_matches_sequential;
              prop_delta_fold_order;
              prop_delta_merge_associative;
            ] );
      ("sequential = parallel campaign", campaign_tests);
    ]
