(** Checkpointed recovery under fault storms, and per-run deadlines.

    The differential campaign: for every corpus query, strategy, storm
    size and checkpoint policy, the run must either recover to the
    bit-identical reference answer or fail typed — never a wrong answer —
    and the same seed must replay to the same span tree and counters.
    Checkpoints must *pay*: under a storm of two or more crashes, a run
    that checkpoints every other stage replays strictly fewer bytes than
    the same run without checkpoints, because recovery restarts from the
    last materialization instead of from the sources. Deadline-bound runs
    must never hang or silently overrun: they finish in budget or surface
    the typed [Deadline_missed] naming the deadline.

    Failing campaign runs dump their [run_json] (which embeds the
    effective config) to [$TRANCE_FAILED_RUN_DIR] so the CI artifact
    upload can collect them. *)

module V = Nrc.Value
module F = Exec.Faults
module Trace = Exec.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cluster = { Exec.Config.unbounded with partitions = 7; workers = 3 }
let api_config = { Trance.Api.default_config with cluster; trace = true }

(* dump a failing run's json for the nightly campaign's artifact upload *)
let dump_failed what (r : Trance.Api.run) =
  match Sys.getenv_opt "TRANCE_FAILED_RUN_DIR" with
  | None | Some "" -> ()
  | Some dir ->
    (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
     with Sys_error _ -> ());
    let slug =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
          | _ -> '_')
        what
    in
    let path = Filename.concat dir (slug ^ ".json") in
    let oc = open_out path in
    output_string oc (Trance.Api.run_json r);
    close_out oc

let fail_with_dump what r msg =
  dump_failed what r;
  Alcotest.fail (what ^ ": " ^ msg)

let with_checkpoint ?(config = api_config) policy =
  { config with
    Trance.Api.cluster =
      { config.Trance.Api.cluster with Exec.Config.checkpoint = policy } }

let run ~config ~faults strategy q =
  let prog = Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" q in
  Trance.Api.run
    ~config:{ config with Trance.Api.faults }
    ~strategy prog Fixtures.inputs_val

(* wall-clock time is the one legitimately non-deterministic quantity a
   run reports; strip it before any replay comparison *)
let det_spans (r : Trance.Api.run) =
  Trace.spans_json (List.map Trace.without_wall r.Trance.Api.trace)

let det_stats (r : Trance.Api.run) =
  Exec.Stats.strip_wall (Exec.Stats.snapshot r.Trance.Api.stats)

(* ------------------------------------------------------------------ *)
(* Differential campaign: corpus x strategy x storm x policy *)

let strategies =
  [
    ("Standard", Trance.Api.Standard);
    ("Shred+Unshred", Trance.Api.Shredded { unshred = true });
  ]

let policies =
  [ Exec.Config.No_checkpoints; Exec.Config.Every 2; Exec.Config.Auto ]

let storms =
  [
    ("clean", []);
    ("storm1", F.storm ~first_stage:2 ~span:4 1);
    ("storm2", F.storm ~first_stage:2 ~span:4 2);
    ("storm3", F.storm ~first_stage:2 ~span:6 3);
    ( "crash-during-recovery",
      (* two crashes at the same stage: the second fires at the next
         eligible stage, while the first one's recovery is in the books *)
      [
        { (F.default_spec F.Worker_crash) with F.stage = 2 };
        { (F.default_spec F.Worker_crash) with F.stage = 2 };
      ] );
    ( "mixed",
      [
        { (F.default_spec F.Worker_crash) with F.stage = 2 };
        { (F.default_spec F.Task_failure) with F.stage = 3; fails = 2 };
        { (F.default_spec F.Fetch_failure) with F.stage = 4; fails = 2 };
      ] );
  ]

let check_counter_totals what (r : Trance.Api.run) =
  let t = Trace.agg r.Trance.Api.trace in
  let s = r.Trance.Api.stats in
  check_int (what ^ ": span checkpoints_written")
    (Exec.Stats.checkpoints_written s)
    t.Trace.checkpoints_written;
  check_int (what ^ ": span checkpoint_bytes")
    (Exec.Stats.checkpoint_bytes s)
    t.Trace.checkpoint_bytes;
  check_int (what ^ ": span lineage_truncated")
    (Exec.Stats.lineage_truncated s)
    t.Trace.lineage_truncated;
  check (what ^ ": span recovery_seconds") true
    (abs_float
       (Exec.Stats.recovery_seconds s -. t.Trace.recovery_seconds)
    < 1e-9);
  check_int (what ^ ": span recomputed") (Exec.Stats.recomputed_bytes s)
    t.Trace.recomputed_bytes

let campaign_tests =
  List.concat_map
    (fun (name, q) ->
      List.concat_map
        (fun (sname, strategy) ->
          List.concat_map
            (fun (storm_name, sch) ->
              List.map
                (fun policy ->
                  let what =
                    Printf.sprintf "%s [%s] %s %s" name sname storm_name
                      (Exec.Config.checkpoint_name policy)
                  in
                  Alcotest.test_case what `Quick (fun () ->
                      let reference = Fixtures.eval_ref q in
                      let config = with_checkpoint policy in
                      let r = run ~config ~faults:sch strategy q in
                      (match r.Trance.Api.failure with
                      | None -> (
                        match r.Trance.Api.value with
                        | Some v ->
                          if not (V.approx_bag_equal reference v) then
                            fail_with_dump what r
                              "recovered to a wrong answer"
                        | None ->
                          fail_with_dump what r "no value, no failure")
                      | Some
                          ( Trance.Api.Task_failed _
                          | Trance.Api.Out_of_memory _
                          | Trance.Api.Deadline_missed _ ) ->
                        () (* typed: acceptable, never a wrong answer *)
                      | Some (Trance.Api.Error m) ->
                        fail_with_dump what r ("untyped failure " ^ m));
                      check_counter_totals what r;
                      (* checkpoints only where the policy allows them *)
                      (match policy with
                      | Exec.Config.No_checkpoints ->
                        check_int (what ^ ": no checkpoints when off") 0
                          (Exec.Stats.checkpoints_written r.Trance.Api.stats)
                      | _ -> ());
                      check (what ^ ": checkpoint bytes iff checkpoints")
                        true
                        (Exec.Stats.checkpoints_written r.Trance.Api.stats
                         > 0
                        = (Exec.Stats.checkpoint_bytes r.Trance.Api.stats
                          > 0));
                      (* same seed => identical replay *)
                      let r2 = run ~config ~faults:sch strategy q in
                      if
                        det_spans r <> det_spans r2
                        || det_stats r <> det_stats r2
                      then fail_with_dump what r "non-deterministic replay"))
                policies)
            storms)
        strategies)
    Fixtures.corpus

(* ------------------------------------------------------------------ *)
(* Checkpoints must pay: under a >=2-crash storm, every=2 replays
   strictly fewer bytes than no checkpoints — the tentpole inequality *)

let storm_pay_tests =
  List.concat_map
    (fun (name, q) ->
      List.concat_map
        (fun (sname, strategy) ->
          List.map
            (fun n ->
              let what =
                Printf.sprintf "%s [%s] %d-crash storm" name sname n
              in
              Alcotest.test_case what `Quick (fun () ->
                  (* late stages, so there is lineage worth truncating *)
                  let sch = F.storm ~first_stage:3 ~span:4 n in
                  let bare =
                    run
                      ~config:(with_checkpoint Exec.Config.No_checkpoints)
                      ~faults:sch strategy q
                  in
                  let ck =
                    run
                      ~config:(with_checkpoint (Exec.Config.Every 2))
                      ~faults:sch strategy q
                  in
                  check (what ^ ": both recover") true
                    (bare.Trance.Api.failure = None
                    && ck.Trance.Api.failure = None);
                  check (what ^ ": checkpoints were written") true
                    (Exec.Stats.checkpoints_written ck.Trance.Api.stats > 0);
                  check (what ^ ": lineage was truncated") true
                    (Exec.Stats.lineage_truncated ck.Trance.Api.stats > 0);
                  let rb = Exec.Stats.recomputed_bytes bare.Trance.Api.stats
                  and rc = Exec.Stats.recomputed_bytes ck.Trance.Api.stats in
                  if not (rc < rb) then
                    fail_with_dump what ck
                      (Printf.sprintf
                         "checkpointing did not pay: %dB recomputed with \
                          checkpoints vs %dB without"
                         rc rb);
                  (* both answers are still the reference answer *)
                  let reference = Fixtures.eval_ref q in
                  List.iter
                    (fun (r : Trance.Api.run) ->
                      check (what ^ ": reference answer") true
                        (V.approx_bag_equal reference
                           (Option.get r.Trance.Api.value)))
                    [ bare; ck ]))
            [ 2; 3; 4 ])
        strategies)
    [ List.nth Fixtures.corpus 0 ]

(* ------------------------------------------------------------------ *)
(* Deadlines: typed, never silent *)

let with_deadline d =
  { api_config with
    Trance.Api.cluster =
      { cluster with Exec.Config.deadline = Some d } }

(* an impossible deadline surfaces as Deadline_missed naming the deadline
   and the simulated time that overran it — and the message says so *)
let test_deadline_missed_typed () =
  let sch = [ { (F.default_spec F.Worker_crash) with F.stage = 1 } ] in
  let r =
    run ~config:(with_deadline 1e-9) ~faults:sch Trance.Api.Standard
      Fixtures.example1
  in
  (match r.Trance.Api.failure with
  | Some (Trance.Api.Deadline_missed { deadline; sim_seconds; stage }) ->
    check "deadline echoed" true (deadline = 1e-9);
    check "overrun recorded" true (sim_seconds > deadline);
    check "stage named" true (String.length stage > 0);
    let msg = Trance.Api.failure_message (Option.get r.Trance.Api.failure) in
    check "message names the deadline" true
      (let sub = "deadline" in
       let rec find i =
         i + String.length sub <= String.length msg
         && (String.sub msg i (String.length sub) = sub || find (i + 1))
       in
       find 0)
  | other ->
    Alcotest.failf "expected Deadline_missed, got %s"
      (match other with
      | None -> "success"
      | Some f -> Trance.Api.failure_message f));
  check "outcome is Failed" true (Trance.Api.outcome r = Trance.Api.Failed);
  (* the typed outcome also lands in run_json, schema-stable *)
  let j = Trance.Api.run_json r in
  check "run_json carries the deadline failure" true
    (let sub = "deadline" in
     let rec find i =
       i + String.length sub <= String.length j
       && (String.sub j i (String.length sub) = sub || find (i + 1))
     in
     find 0)

(* a generous deadline never changes the run *)
let test_deadline_generous_noop () =
  let sch = [ { (F.default_spec F.Worker_crash) with F.stage = 1 } ] in
  let a = run ~config:api_config ~faults:sch Trance.Api.Standard Fixtures.example1 in
  let b =
    run ~config:(with_deadline 1e9) ~faults:sch Trance.Api.Standard
      Fixtures.example1
  in
  check "no failure" true (b.Trance.Api.failure = None);
  check "identical span tree" true (det_spans a = det_spans b);
  check "identical counters" true (det_stats a = det_stats b)

(* deadline runs are bounded by construction: even an impossible deadline
   under a heavy storm returns (typed) rather than recomputing forever *)
let test_deadline_bounded_under_storm () =
  let sch = F.storm ~first_stage:1 ~span:8 6 in
  let r =
    run ~config:(with_deadline 1e-9) ~faults:sch Trance.Api.Standard
      Fixtures.example1
  in
  match r.Trance.Api.failure with
  | Some (Trance.Api.Deadline_missed _) ->
    check "outcome Failed" true (Trance.Api.outcome r = Trance.Api.Failed)
  | Some _ | None -> Alcotest.fail "expected Deadline_missed under the storm"

(* ------------------------------------------------------------------ *)
(* run_json embeds the effective config *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec find i = i + nl <= hl && (String.sub hay i nl = needle || find (i + 1)) in
  find 0

let test_run_json_embeds_config () =
  let config =
    { (with_checkpoint (Exec.Config.Every 2)) with
      Trance.Api.cluster =
        { cluster with
          Exec.Config.checkpoint = Exec.Config.Every 2;
          deadline = Some 123.5 } }
  in
  let r = run ~config ~faults:[] Trance.Api.Standard Fixtures.example1 in
  let j = Trance.Api.run_json r in
  List.iter
    (fun needle ->
      check (Printf.sprintf "run_json has %s" needle) true (contains j needle))
    [
      "\"config\":{";
      Printf.sprintf "\"workers\":%d" cluster.Exec.Config.workers;
      Printf.sprintf "\"partitions\":%d" cluster.Exec.Config.partitions;
      Printf.sprintf "\"seed\":%d" cluster.Exec.Config.seed;
      "\"checkpoint\":\"every=2\"";
      "\"deadline\":123.5";
      "\"checkpoints_written\"";
      "\"checkpoint_bytes\"";
      "\"lineage_truncated\"";
      "\"recovery_seconds\"";
    ];
  (* unbounded memory is encoded as -1, not as max_int noise *)
  check "unbounded worker_mem encodes as -1" true
    (contains j "\"worker_mem\":-1");
  (* the faults schedule itself is embedded, round-trippable *)
  let sch = [ { (F.default_spec F.Worker_crash) with F.stage = 2 } ] in
  let r2 = run ~config ~faults:sch Trance.Api.Standard Fixtures.example1 in
  check "faults schedule embedded" true
    (contains (Trance.Api.run_json r2)
       (Printf.sprintf "\"faults\":%S" (F.schedule_to_string sch)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "checkpoint"
    [
      ("differential campaign", campaign_tests);
      ("checkpoints pay", storm_pay_tests);
      ( "deadlines",
        [
          Alcotest.test_case "impossible deadline fails typed" `Quick
            test_deadline_missed_typed;
          Alcotest.test_case "generous deadline is a no-op" `Quick
            test_deadline_generous_noop;
          Alcotest.test_case "bounded even under a heavy storm" `Quick
            test_deadline_bounded_under_storm;
        ] );
      ( "run_json",
        [
          Alcotest.test_case "embeds the effective config" `Quick
            test_run_json_embeds_config;
        ] );
    ]
