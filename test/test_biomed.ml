(** Integration tests for the biomedical E2E pipeline: typechecking, shape
    checks on the generator, per-step and end-to-end agreement of all
    strategies with the reference interpreter, and the structural property
    the paper highlights — the shredded route never flattens Occurrences. *)

module V = Nrc.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny =
  {
    Biomed.Generator.small_scale with
    samples = 5;
    mutations_per_sample = 6;
    candidates_per_mutation = 3;
    genes = 40;
    edges_per_gene = 4;
  }

let db = Biomed.Generator.generate tiny
let inputs = Biomed.Generator.inputs db

let cluster = { Exec.Config.unbounded with partitions = 5; workers = 3 }
let api_config = { Trance.Api.default_config with cluster }

let test_generator () =
  check_int "samples" 5
    (List.length (V.bag_items db.Biomed.Generator.occurrences));
  check_int "genes in network" 40
    (List.length (V.bag_items db.Biomed.Generator.network));
  check_int "copy number rows" (5 * 40)
    (List.length (V.bag_items db.Biomed.Generator.copynumber));
  check_int "impact table" 4
    (List.length (V.bag_items db.Biomed.Generator.soimpact))

let test_typecheck () =
  let env = Nrc.Program.typecheck Biomed.Pipeline.program in
  (* Step1 output is one-level nested per sample *)
  match Nrc.Typecheck.Env.find "Step1" env with
  | Nrc.Types.TBag (Nrc.Types.TTuple [ ("sid", _); ("genes", Nrc.Types.TBag _) ])
    ->
    ()
  | t -> Alcotest.failf "unexpected Step1 type %a" Nrc.Types.pp t

let reference = lazy (Nrc.Program.eval Biomed.Pipeline.program inputs)

let agree_strategy strategy () =
  let expected = Nrc.Eval.Env.find "Step5" (Lazy.force reference) in
  let r =
    Trance.Api.run ~config:api_config ~strategy Biomed.Pipeline.program inputs
  in
  (match r.Trance.Api.failure with
  | Some f -> Alcotest.failf "failed: %s" (Trance.Api.failure_message f)
  | None -> ());
  Fixtures.check_bag_equal "E2E result" expected (Option.get r.Trance.Api.value)

let test_per_step_prefixes () =
  (* each prefix program agrees under the shredded route *)
  List.iter
    (fun (name, prog) ->
      let expected = Nrc.Program.eval_result prog inputs in
      let r =
        Trance.Api.run ~config:api_config
          ~strategy:(Trance.Api.Shredded { unshred = true })
          prog inputs
      in
      (match r.Trance.Api.failure with
      | Some f -> Alcotest.failf "%s failed: %s" name (Trance.Api.failure_message f)
      | None -> ());
      Fixtures.check_bag_equal name expected (Option.get r.Trance.Api.value))
    Biomed.Pipeline.prefix_programs

let test_shredded_structure () =
  (* the shredded compilation of Step1 must perform localized aggregation:
     some materialized assignment aggregates with "label" in its keys, and
     no materialized assignment rebuilds the nested Occurrences value *)
  let sp = Trance.Shred_pipeline.shred_program Biomed.Pipeline.program in
  let rec has_label_sum (e : Nrc.Expr.t) =
    match e with
    | Nrc.Expr.SumBy { keys = "label" :: _; _ } -> true
    | _ ->
      let found = ref false in
      ignore
        (Nrc.Expr.map_children
           (fun sub ->
             if has_label_sum sub then found := true;
             sub)
           e);
      !found
  in
  check "localized aggregation somewhere in E2E" true
    (List.exists
       (fun { Nrc.Program.body; _ } -> has_label_sum body)
       sp.Trance.Shred_pipeline.mat.Nrc.Program.assignments)

let test_step2_explosion_shape () =
  (* the flattened route needs more per-worker memory than the shredded one
     on the full pipeline: the Step2 join fanout over nested values is the
     effect the paper measures as 16 billion tuples / 2.1 TB shuffled *)
  let db = Biomed.Generator.generate Biomed.Generator.small_scale in
  let inputs = Biomed.Generator.inputs db in
  let no_broadcast =
    { api_config with cluster = { cluster with broadcast_limit = 0 } }
  in
  let std =
    Trance.Api.run ~config:no_broadcast ~strategy:Trance.Api.Standard
      Biomed.Pipeline.program inputs
  in
  let shred =
    Trance.Api.run ~config:no_broadcast
      ~strategy:(Trance.Api.Shredded { unshred = false })
      Biomed.Pipeline.program inputs
  in
  check "both succeed (unbounded memory)" true
    (std.Trance.Api.failure = None && shred.Trance.Api.failure = None);
  check "standard needs more worker memory on the E2E pipeline" true
    (Exec.Stats.peak_worker_bytes shred.Trance.Api.stats
    < Exec.Stats.peak_worker_bytes std.Trance.Api.stats)

let () =
  Alcotest.run "biomed"
    [
      ( "generator",
        [ Alcotest.test_case "shapes" `Quick test_generator ] );
      ( "pipeline",
        [
          Alcotest.test_case "typechecks" `Quick test_typecheck;
          Alcotest.test_case "standard agrees" `Quick
            (agree_strategy Trance.Api.Standard);
          Alcotest.test_case "shredded agrees" `Quick
            (agree_strategy (Trance.Api.Shredded { unshred = false }));
          Alcotest.test_case "sparksql proxy agrees" `Quick
            (agree_strategy Trance.Api.SparkSQL_proxy);
          Alcotest.test_case "per-step prefixes (shredded)" `Quick
            test_per_step_prefixes;
        ] );
      ( "structure",
        [
          Alcotest.test_case "localized aggregation" `Quick
            test_shredded_structure;
          Alcotest.test_case "Step2 explosion shape" `Quick
            test_step2_explosion_shape;
        ] );
    ]
