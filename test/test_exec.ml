(** Tests for the cluster simulator and the end-to-end strategies: every
    corpus query must produce the same bag under Standard, Shredded (with
    and without unshredding), SparkSQL-proxy, and skew-aware variants as the
    NRC reference interpreter; plus unit tests for datasets, shuffling
    guarantees, heavy-key detection, broadcast decisions, cogroup fusion,
    and memory-budget failures. *)

module B = Nrc.Builder
module V = Nrc.Value
module S = Plan.Sexpr
module Op = Plan.Op

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cluster = { Exec.Config.unbounded with partitions = 7; workers = 3 }

let api_config =
  { Trance.Api.default_config with cluster }

(* ------------------------------------------------------------------ *)
(* Dataset invariants *)

let test_dataset_roundtrip () =
  let bag = V.Bag (List.init 23 (fun i -> V.Int i)) in
  let ds = Exec.Dataset.of_bag ~partitions:7 bag in
  check_int "partition count" 7 (Exec.Dataset.partition_count ds);
  check_int "row count" 23 (Exec.Dataset.total_rows ds);
  check "roundtrip preserves the bag" true
    (V.bag_equal bag (Exec.Dataset.to_bag ds))

let test_dataset_key_guarantee () =
  let bag =
    V.Bag
      (List.init 40 (fun i ->
           V.Tuple [ ("k", V.Int (i mod 5)); ("v", V.Int i) ]))
  in
  let ds = Exec.Dataset.of_bag_by ~partitions:7 ~key:[ [ "k" ] ] bag in
  check "bag preserved" true (V.bag_equal bag (Exec.Dataset.to_bag ds));
  (* all values of one key live in one partition *)
  let locations = Hashtbl.create 8 in
  Array.iteri
    (fun p part ->
      Array.iter
        (fun v ->
          let k = V.field v "k" in
          match Hashtbl.find_opt locations k with
          | None -> Hashtbl.add locations k p
          | Some p' -> check "key guarantee" true (p = p'))
        part)
    ds.Exec.Dataset.parts;
  check_int "five distinct keys" 5 (Hashtbl.length locations)

(* ------------------------------------------------------------------ *)
(* Executor vs local plan interpreter on the corpus *)

let exec_plan_agree name q () =
  let plan = Trance.Unnest.translate ~tenv:Fixtures.inputs_ty q in
  let expected =
    Plan.Local_eval.eval_to_bag
      (Plan.Local_eval.env_of_list Fixtures.inputs_val)
      plan
  in
  let stats = Exec.Stats.create () in
  let env =
    Exec.Executor.env_of_list
      (List.map
         (fun (n, v) -> (n, Exec.Dataset.of_bag ~partitions:7 v))
         Fixtures.inputs_val)
  in
  let ds = Exec.Executor.run_plan ~config:cluster ~stats env plan in
  Fixtures.check_bag_equal name expected (Exec.Dataset.to_bag ds)

let executor_corpus =
  List.map
    (fun (name, q) ->
      Alcotest.test_case (name ^ " (executor = local)") `Quick
        (exec_plan_agree name q))
    Fixtures.corpus

(* ------------------------------------------------------------------ *)
(* End-to-end strategies via the API *)

let strategies =
  [
    Trance.Api.Standard;
    Trance.Api.Shredded { unshred = true };
    Trance.Api.SparkSQL_proxy;
  ]

let run_strategy ?(config = api_config) strategy q =
  let prog = Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" q in
  Trance.Api.run ~config ~strategy prog Fixtures.inputs_val

let strategy_tests =
  List.concat_map
    (fun (name, q) ->
      List.concat_map
        (fun strategy ->
          let sname = Trance.Api.strategy_name strategy in
          [
            Alcotest.test_case
              (Printf.sprintf "%s [%s]" name sname)
              `Quick
              (fun () ->
                let r = run_strategy strategy q in
                (match r.Trance.Api.failure with
                | Some f ->
                  Alcotest.failf "%s failed: %s" sname
                    (Trance.Api.failure_message f)
                | None -> ());
                Fixtures.check_bag_equal
                  (Printf.sprintf "%s/%s" name sname)
                  (Fixtures.eval_ref q)
                  (Option.get r.Trance.Api.value));
            Alcotest.test_case
              (Printf.sprintf "%s [%s, skew-aware]" name sname)
              `Quick
              (fun () ->
                let config = { api_config with skew_aware = true } in
                let r = run_strategy ~config strategy q in
                (match r.Trance.Api.failure with
                | Some f ->
                  Alcotest.failf "%s failed: %s" sname
                    (Trance.Api.failure_message f)
                | None -> ());
                Fixtures.check_bag_equal
                  (Printf.sprintf "%s/%s skew" name sname)
                  (Fixtures.eval_ref q)
                  (Option.get r.Trance.Api.value));
          ])
        strategies)
    Fixtures.corpus

(* ------------------------------------------------------------------ *)
(* Heavy-key detection *)

let test_heavy_keys () =
  (* 70% of rows share one key; sampling must flag it and only it *)
  let rows = List.init 1000 (fun i ->
      V.Tuple [ ("k", V.Int (if i mod 10 < 7 then 999 else i)); ("v", V.Int i) ])
  in
  let prog =
    B.(
      for_ "x" (input "R") (fun x ->
          for_ "y" (input "Bigger") (fun y ->
              where (x #. "k" == y #. "k")
                (sng (record [ ("k", x #. "k"); ("v2", y #. "v") ])))))
  in
  let tenv =
    [
      ("R", Nrc.Types.(bag (tuple [ ("k", int_); ("v", int_) ])));
      ("Bigger", Nrc.Types.(bag (tuple [ ("k", int_); ("v", int_) ])));
    ]
  in
  let bigger = List.init 2000 (fun i ->
      V.Tuple [ ("k", V.Int (if i < 100 then 999 else i)); ("v", V.Int i) ])
  in
  let inputs = [ ("R", V.Bag rows); ("Bigger", V.Bag bigger) ] in
  let expected = Nrc.Eval.eval (Nrc.Eval.env_of_list inputs) prog in
  (* run skew-aware with a tiny broadcast limit so only the heavy path uses
     broadcast *)
  let config =
    {
      api_config with
      skew_aware = true;
      cluster = { cluster with broadcast_limit = 1 };
    }
  in
  let p = Nrc.Program.of_expr ~inputs:tenv ~name:"Q" prog in
  let r = Trance.Api.run ~config ~strategy:Trance.Api.Standard p inputs in
  check "no failure" true (r.Trance.Api.failure = None);
  Fixtures.check_bag_equal "skew join result" expected
    (Option.get r.Trance.Api.value);
  check "heavy path broadcasts something" true
    (Exec.Stats.broadcast_bytes r.Trance.Api.stats > 0)

let test_skew_join_less_imbalance () =
  (* with a heavy key, the skew-aware join must shuffle less than the
     skew-unaware one (heavy rows stay in place) *)
  let n = 4000 in
  let rows = List.init n (fun i ->
      V.Tuple [ ("k", V.Int (if i mod 10 < 8 then 1 else i)); ("v", V.Str (String.make 20 'x')) ])
  in
  let small = List.init 50 (fun i -> V.Tuple [ ("k", V.Int (if i = 0 then 1 else i)); ("w", V.Int i) ]) in
  let tenv =
    [
      ("R", Nrc.Types.(bag (tuple [ ("k", int_); ("v", string_) ])));
      ("Sm", Nrc.Types.(bag (tuple [ ("k", int_); ("w", int_) ])));
    ]
  in
  let inputs = [ ("R", V.Bag rows); ("Sm", V.Bag small) ] in
  let q =
    B.(
      for_ "x" (input "R") (fun x ->
          for_ "y" (input "Sm") (fun y ->
              where (x #. "k" == y #. "k")
                (sng (record [ ("v", x #. "v"); ("w", y #. "w") ])))))
  in
  let p = Nrc.Program.of_expr ~inputs:tenv ~name:"Q" q in
  let no_broadcast = { cluster with broadcast_limit = 1 } in
  let run skew =
    Trance.Api.run
      ~config:{ api_config with skew_aware = skew; cluster = no_broadcast }
      ~strategy:Trance.Api.Standard p inputs
  in
  let plain = run false and skewed = run true in
  check "same result" true
    (V.approx_bag_equal
       (Option.get plain.Trance.Api.value)
       (Option.get skewed.Trance.Api.value));
  check "skew-aware shuffles less" true
    (Exec.Stats.shuffled_bytes skewed.Trance.Api.stats
    < Exec.Stats.shuffled_bytes plain.Trance.Api.stats)

(* ------------------------------------------------------------------ *)
(* Partition and sampling invariants (property tests) *)

let arbitrary_keyed_bag =
  QCheck.make
    ~print:(fun rows -> V.to_string (V.Bag rows))
    QCheck.Gen.(
      list_size (int_bound 200)
        (map2
           (fun k v -> V.Tuple [ ("k", V.Int (k mod 9)); ("v", V.Int v) ])
           nat nat))

let prop_partition_preserves_bag =
  QCheck.Test.make ~name:"hash partitioning preserves the bag" ~count:100
    arbitrary_keyed_bag (fun rows ->
      let bag = V.Bag rows in
      let ds = Exec.Dataset.of_bag_by ~partitions:7 ~key:[ [ "k" ] ] bag in
      V.bag_equal bag (Exec.Dataset.to_bag ds)
      && Exec.Dataset.total_rows ds = List.length rows)

let prop_key_guarantee =
  QCheck.Test.make ~name:"key guarantee: one partition per key" ~count:100
    arbitrary_keyed_bag (fun rows ->
      let ds =
        Exec.Dataset.of_bag_by ~partitions:7 ~key:[ [ "k" ] ] (V.Bag rows)
      in
      let loc = Hashtbl.create 16 in
      let ok = ref true in
      Array.iteri
        (fun p part ->
          Array.iter
            (fun v ->
              let k = V.field v "k" in
              match Hashtbl.find_opt loc k with
              | None -> Hashtbl.add loc k p
              | Some p' -> if p <> p' then ok := false)
            part)
        ds.Exec.Dataset.parts;
      !ok)

let test_heavy_key_detection_bounds () =
  (* a dataset where 80% of rows share one key: that key (and only keys at
     comparable frequency) must be flagged heavy; uniform data yields none *)
  let skewed =
    List.init 2000 (fun i ->
        [ ("t", V.Tuple [ ("k", V.Int (if i mod 5 < 4 then 42 else i)) ]) ])
  in
  let uniform =
    List.init 2000 (fun i -> [ ("t", V.Tuple [ ("k", V.Int i) ]) ])
  in
  (* exercise detection through the public API: a skew-aware join on the
     heavy key must broadcast (heavy path), on uniform data it must not *)
  let tenv =
    [ ("R", Nrc.Types.(bag (tuple [ ("k", int_) ])));
      ("S2", Nrc.Types.(bag (tuple [ ("k", int_); ("w", int_) ]))) ]
  in
  let q =
    B.(
      for_ "x" (input "R") (fun x ->
          for_ "y" (input "S2") (fun y ->
              where (x #. "k" == y #. "k")
                (sng (record [ ("k", x #. "k"); ("w", y #. "w") ])))))
  in
  let s2 = List.init 50 (fun i -> V.Tuple [ ("k", V.Int (if i = 0 then 42 else i)); ("w", V.Int i) ]) in
  let mk rows = [ ("R", V.Bag (List.map (fun r -> List.assoc "t" r) rows)); ("S2", V.Bag s2) ] in
  let config =
    { api_config with
      skew_aware = true;
      cluster = { cluster with broadcast_limit = 0 } }
  in
  let run rows =
    Trance.Api.run ~config ~strategy:Trance.Api.Standard
      (Nrc.Program.of_expr ~inputs:tenv ~name:"Q" q)
      (mk rows)
  in
  let r_skew = run skewed and r_uni = run uniform in
  check "heavy key triggers broadcast path" true
    (Exec.Stats.broadcast_bytes r_skew.Trance.Api.stats > 0);
  check "uniform data uses no heavy path" true
    (Exec.Stats.broadcast_bytes r_uni.Trance.Api.stats = 0)

(* ------------------------------------------------------------------ *)
(* Memory budget: FAIL reproduction *)

let test_oom_failure () =
  (* tiny worker budget, spilling off, no fallback: the standard route on
     nested data must fail, and the API must report it as a failure, not
     raise *)
  let tiny =
    { api_config with
      cluster =
        { cluster with worker_mem = 512; spill = Exec.Config.Off };
      route_fallback = false }
  in
  let r =
    Trance.Api.run ~config:tiny ~strategy:Trance.Api.Standard
      (Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q"
         Fixtures.example1)
      Fixtures.inputs_val
  in
  check "failure reported" true (r.Trance.Api.failure <> None);
  check "no value on failure" true (r.Trance.Api.value = None)

(* ------------------------------------------------------------------ *)
(* Broadcast vs shuffle decisions *)

let test_broadcast_decision () =
  let q = Fixtures.nested_to_flat in
  let prog = Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" q in
  (* large broadcast limit: Part is broadcast, no shuffle for the join *)
  let r_b =
    Trance.Api.run
      ~config:{ api_config with cluster = { cluster with broadcast_limit = max_int } }
      ~strategy:Trance.Api.Standard prog Fixtures.inputs_val
  in
  let r_s =
    Trance.Api.run
      ~config:{ api_config with cluster = { cluster with broadcast_limit = 0 } }
      ~strategy:Trance.Api.Standard prog Fixtures.inputs_val
  in
  check "results agree" true
    (V.approx_bag_equal (Option.get r_b.Trance.Api.value) (Option.get r_s.Trance.Api.value));
  check "broadcast mode broadcasts" true
    (Exec.Stats.broadcast_bytes r_b.Trance.Api.stats > 0);
  check "shuffle mode shuffles more" true
    (Exec.Stats.shuffled_bytes r_s.Trance.Api.stats
    > Exec.Stats.shuffled_bytes r_b.Trance.Api.stats)

(* ------------------------------------------------------------------ *)
(* Shredded route shuffles less than standard on nested-to-nested *)

let test_shred_shuffles_less () =
  let no_broadcast =
    { api_config with cluster = { cluster with broadcast_limit = 0 } }
  in
  let prog =
    Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" Fixtures.example1
  in
  let std =
    Trance.Api.run ~config:no_broadcast ~strategy:Trance.Api.Standard prog
      Fixtures.inputs_val
  in
  let shred =
    Trance.Api.run ~config:no_broadcast
      ~strategy:(Trance.Api.Shredded { unshred = false }) prog
      Fixtures.inputs_val
  in
  check "both succeed" true
    (std.Trance.Api.failure = None && shred.Trance.Api.failure = None);
  check "shred shuffles no more than standard" true
    (Exec.Stats.shuffled_bytes shred.Trance.Api.stats
    <= Exec.Stats.shuffled_bytes std.Trance.Api.stats)

let () =
  Alcotest.run "exec"
    [
      ( "datasets",
        [
          Alcotest.test_case "of_bag/to_bag roundtrip" `Quick
            test_dataset_roundtrip;
          Alcotest.test_case "key guarantee" `Quick test_dataset_key_guarantee;
        ] );
      ("executor corpus", executor_corpus);
      ("strategies", strategy_tests);
      ( "skew",
        [
          Alcotest.test_case "heavy keys + skew join" `Quick test_heavy_keys;
          Alcotest.test_case "skew join shuffles less" `Quick
            test_skew_join_less_imbalance;
          Alcotest.test_case "heavy-key detection bounds" `Quick
            test_heavy_key_detection_bounds;
        ] );
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest prop_partition_preserves_bag;
          QCheck_alcotest.to_alcotest prop_key_guarantee;
        ] );
      ( "memory",
        [ Alcotest.test_case "OOM reported as failure" `Quick test_oom_failure ]
      );
      ( "decisions",
        [
          Alcotest.test_case "broadcast vs shuffle" `Quick
            test_broadcast_decision;
          Alcotest.test_case "shred shuffles less" `Quick
            test_shred_shuffles_less;
        ] );
    ]
