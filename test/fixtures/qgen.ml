(** Random NRC query and data generation for property-based testing.

    Queries are drawn from a grammar of the supported fragment (selections,
    equi-joins, navigation, nested reconstruction, sumBy/groupBy at the root
    and inside nested attributes, dedup, unions of compatible branches) over
    a fixed pair of flat relations and one nested relation, with random
    constants, projections, key choices and data. Input relations and
    nested [items] bags are generated empty with boosted probability, so
    the differential suites cover the empty-partition / empty-group edge
    cases that fault recovery and shuffling love to expose. Every generated
    query is checked across all evaluation routes against the reference
    interpreter (see test_random.ml). *)

module E = Nrc.Expr
module T = Nrc.Types
module V = Nrc.Value
module G = QCheck.Gen

(* ------------------------------------------------------------------ *)
(* Schemas *)

let r_ty =
  T.bag
    (T.tuple
       [ ("a", T.int_); ("b", T.int_); ("s", T.string_); ("v", T.real) ])

let s_ty = T.bag (T.tuple [ ("a", T.int_); ("w", T.real) ])

let n_ty =
  T.bag
    (T.tuple
       [
         ("k", T.int_);
         ("name", T.string_);
         ("items", T.bag (T.tuple [ ("a", T.int_); ("q", T.real) ]));
       ])

let inputs_ty = [ ("R", r_ty); ("S", s_ty); ("N", n_ty) ]

(* ------------------------------------------------------------------ *)
(* Data *)

let key_domain = 6 (* small domain: joins hit, groups collide *)

let gen_r_row =
  G.map3
    (fun a b (s, v) ->
      V.Tuple
        [
          ("a", V.Int a); ("b", V.Int b);
          ("s", V.Str (Printf.sprintf "s%d" s));
          ("v", V.Real (float_of_int v /. 4.));
        ])
    (G.int_bound (key_domain - 1))
    (G.int_bound (key_domain - 1))
    (G.pair (G.int_bound 3) (G.int_bound 40))

let gen_s_row =
  G.map2
    (fun a w ->
      V.Tuple [ ("a", V.Int a); ("w", V.Real (float_of_int w /. 2.)) ])
    (G.int_bound (key_domain - 1))
    (G.int_bound 30)

let gen_item =
  G.map2
    (fun a q -> V.Tuple [ ("a", V.Int a); ("q", V.Real (float_of_int q)) ])
    (G.int_bound (key_domain - 1))
    (G.int_bound 9)

(* a list that is empty one time in six, so empty relations, empty
   partitions and empty inner bags are first-class citizens of the corpus *)
let gen_bag_list n g =
  G.frequency [ (1, G.return []); (5, G.list_size (G.int_bound n) g) ]

let gen_n_row =
  G.map3
    (fun k name items ->
      V.Tuple
        [
          ("k", V.Int k);
          ("name", V.Str (Printf.sprintf "n%d" name));
          ("items", V.Bag items);
        ])
    (G.int_bound (key_domain - 1))
    (G.int_bound 3)
    (gen_bag_list 4 gen_item)

let gen_inputs : (string * V.t) list G.t =
  G.map3
    (fun rs ss ns ->
      [ ("R", V.Bag rs); ("S", V.Bag ss); ("N", V.Bag ns) ])
    (gen_bag_list 12 gen_r_row)
    (gen_bag_list 12 gen_s_row)
    (gen_bag_list 8 gen_n_row)

(* ------------------------------------------------------------------ *)
(* Input transforms for hint-soundness in properties *)

(** Keep the first S row per [a], making S genuinely unique on its key so
    a [unique_keys = [("S", ["a"])]] optimizer hint is sound on the data. *)
let dedup_s (inputs : (string * V.t) list) : (string * V.t) list =
  List.map
    (fun (name, v) ->
      if name <> "S" then (name, v)
      else
        let seen = Hashtbl.create 8 in
        let rows =
          List.filter
            (fun row ->
              match row with
              | V.Tuple fields -> (
                match List.assoc_opt "a" fields with
                | Some (V.Int a) when not (Hashtbl.mem seen a) ->
                  Hashtbl.add seen a ();
                  true
                | Some _ -> false
                | None -> true)
              | _ -> true)
            (V.bag_items v)
        in
        (name, V.Bag rows))
    inputs

(* ------------------------------------------------------------------ *)
(* Query generation *)

let fresh =
  let c = ref 0 in
  fun hint ->
    incr c;
    Printf.sprintf "%s%d" hint !c

(* a random comparison on an int attribute of [x] *)
let gen_int_pred (x : E.t) attr =
  G.map2
    (fun op c ->
      let cmp = match op with 0 -> E.Lt | 1 -> E.Le | 2 -> E.Gt | _ -> E.Ne in
      E.Cmp (cmp, E.Proj (x, attr), E.int_ c))
    (G.int_bound 3)
    (G.int_bound (key_domain - 1))

(* flat query over R (rows: a, b, s, v) possibly joined with S *)
let gen_flat_query : E.t G.t =
  let open G in
  let select =
    let x = fresh "x" in
    gen_int_pred (E.Var x) "a" >|= fun pred ->
    E.ForUnion
      ( x,
        E.Var "R",
        E.If
          ( pred,
            E.Singleton
              (E.Record
                 [
                   ("a", E.Proj (E.Var x, "a"));
                   ("s", E.Proj (E.Var x, "s"));
                   ("v", E.Proj (E.Var x, "v"));
                 ]),
            None ) )
  in
  let join =
    let x = fresh "x" and y = fresh "y" in
    gen_int_pred (E.Var x) "b" >|= fun pred ->
    E.ForUnion
      ( x,
        E.Var "R",
        E.ForUnion
          ( y,
            E.Var "S",
            E.If
              ( E.Logic
                  (E.And, E.Cmp (E.Eq, E.Proj (E.Var x, "a"), E.Proj (E.Var y, "a")), pred),
                E.Singleton
                  (E.Record
                     [
                       ("a", E.Proj (E.Var x, "a"));
                       ("s", E.Proj (E.Var x, "s"));
                       ("v", E.Prim (E.Mul, E.Proj (E.Var x, "v"), E.Proj (E.Var y, "w")));
                     ]),
                None ) ) )
  in
  let navigate =
    let n = fresh "n" and it = fresh "it" in
    gen_int_pred (E.Var it) "a" >|= fun pred ->
    E.ForUnion
      ( n,
        E.Var "N",
        E.ForUnion
          ( it,
            E.Proj (E.Var n, "items"),
            E.If
              ( pred,
                E.Singleton
                  (E.Record
                     [
                       ("a", E.Proj (E.Var n, "k"));
                       ("s", E.Proj (E.Var n, "name"));
                       ("v", E.Proj (E.Var it, "q"));
                     ]),
                None ) ) )
  in
  oneof [ select; join; navigate ]

(* all flat queries above produce rows (a:int, s:string, v:real) *)
let flat_row_ty = T.tuple [ ("a", T.int_); ("s", T.string_); ("v", T.real) ]

let gen_root_query : E.t G.t =
  let open G in
  let base = gen_flat_query in
  let unioned = map2 (fun a b -> E.Union (a, b)) gen_flat_query gen_flat_query in
  let summed =
    map2
      (fun q keys ->
        E.SumBy
          { input = q;
            keys = (if keys then [ "a"; "s" ] else [ "s" ]);
            values = [ "v" ] })
      (oneof [ base; unioned ])
      bool
  in
  let grouped =
    map (fun q -> E.GroupBy { input = q; keys = [ "a" ]; group_attr = "grp" }) base
  in
  let deduped =
    map
      (fun q ->
        let x = fresh "d" in
        E.Dedup
          (E.ForUnion
             ( x,
               q,
               E.Singleton
                 (E.Record
                    [ ("a", E.Proj (E.Var x, "a")); ("s", E.Proj (E.Var x, "s")) ])
             )))
      base
  in
  (* nested outputs: group S under R, or rebuild N with a transformed inner
     bag (filter / aggregate) *)
  let nest_join =
    let x = fresh "x" and y = fresh "y" in
    gen_int_pred (E.Var y) "a" >|= fun pred ->
    E.ForUnion
      ( x,
        E.Var "R",
        E.Singleton
          (E.Record
             [
               ("a", E.Proj (E.Var x, "a"));
               ( "kids",
                 E.ForUnion
                   ( y,
                     E.Var "S",
                     E.If
                       ( E.Logic
                           ( E.And,
                             E.Cmp (E.Eq, E.Proj (E.Var y, "a"), E.Proj (E.Var x, "a")),
                             pred ),
                         E.Singleton (E.Record [ ("w", E.Proj (E.Var y, "w")) ]),
                         None ) ) );
             ]) )
  in
  let rebuild_filter =
    let n = fresh "n" and it = fresh "i" in
    gen_int_pred (E.Var it) "a" >|= fun pred ->
    E.ForUnion
      ( n,
        E.Var "N",
        E.Singleton
          (E.Record
             [
               ("name", E.Proj (E.Var n, "name"));
               ( "items",
                 E.ForUnion
                   ( it,
                     E.Proj (E.Var n, "items"),
                     E.If
                       ( pred,
                         E.Singleton
                           (E.Record
                              [
                                ("a", E.Proj (E.Var it, "a"));
                                ("q", E.Proj (E.Var it, "q"));
                              ]),
                         None ) ) );
             ]) )
  in
  let rebuild_aggregate =
    let n = fresh "n" and it = fresh "i" and y = fresh "y" in
    return
      (E.ForUnion
         ( n,
           E.Var "N",
           E.Singleton
             (E.Record
                [
                  ("k", E.Proj (E.Var n, "k"));
                  ( "items",
                    E.SumBy
                      { keys = [ "a" ];
                        values = [ "t" ];
                        input =
                          E.ForUnion
                            ( it,
                              E.Proj (E.Var n, "items"),
                              E.ForUnion
                                ( y,
                                  E.Var "S",
                                  E.If
                                    ( E.Cmp
                                        ( E.Eq,
                                          E.Proj (E.Var it, "a"),
                                          E.Proj (E.Var y, "a") ),
                                      E.Singleton
                                        (E.Record
                                           [
                                             ("a", E.Proj (E.Var it, "a"));
                                             ( "t",
                                               E.Prim
                                                 ( E.Mul,
                                                   E.Proj (E.Var it, "q"),
                                                   E.Proj (E.Var y, "w") ) );
                                           ]),
                                      None ) ) ) } );
                ]) ))
  in
  (* two bag-valued attributes at one level *)
  let nest_two =
    let n = fresh "n" and i1 = fresh "i" and i2 = fresh "j" in
    gen_int_pred (E.Var i2) "a" >|= fun pred ->
    E.ForUnion
      ( n,
        E.Var "N",
        E.Singleton
          (E.Record
             [
               ("k", E.Proj (E.Var n, "k"));
               ( "all_items",
                 E.ForUnion
                   ( i1,
                     E.Proj (E.Var n, "items"),
                     E.Singleton (E.Record [ ("q", E.Proj (E.Var i1, "q")) ]) ) );
               ( "some_items",
                 E.ForUnion
                   ( i2,
                     E.Proj (E.Var n, "items"),
                     E.If
                       ( pred,
                         E.Singleton (E.Record [ ("a", E.Proj (E.Var i2, "a")) ]),
                         None ) ) );
             ]) )
  in
  (* union of two nested-producing branches *)
  let nest_union =
    map2
      (fun a b -> E.Union (a, b))
      (let x = fresh "x" and y = fresh "y" in
       gen_int_pred (E.Var y) "a" >|= fun pred ->
       E.ForUnion
         ( x,
           E.Var "R",
           E.Singleton
             (E.Record
                [
                  ("a", E.Proj (E.Var x, "a"));
                  ( "kids",
                    E.ForUnion
                      ( y,
                        E.Var "S",
                        E.If
                          ( E.Logic
                              ( E.And,
                                E.Cmp
                                  ( E.Eq,
                                    E.Proj (E.Var y, "a"),
                                    E.Proj (E.Var x, "a") ),
                                pred ),
                            E.Singleton
                              (E.Record [ ("w", E.Proj (E.Var y, "w")) ]),
                            None ) ) );
                ]) ))
      (let y = fresh "y" in
       return
         (E.ForUnion
            ( y,
              E.Var "S",
              E.Singleton
                (E.Record
                   [
                     ("a", E.Proj (E.Var y, "a"));
                     ( "kids",
                       E.Singleton (E.Record [ ("w", E.Proj (E.Var y, "w")) ])
                     );
                   ]) )))
  in
  frequency
    [
      (3, base); (1, unioned); (2, summed); (1, grouped); (1, deduped);
      (2, nest_join); (2, rebuild_filter); (2, rebuild_aggregate);
      (2, nest_two); (1, nest_union);
    ]

(* ------------------------------------------------------------------ *)
(* Arbitrary instance: a query together with input data *)

let print_case (q, inputs) =
  Fmt.str "query:@.%a@.inputs:@.%a@." E.pp q
    (Fmt.list ~sep:Fmt.cut (fun ppf (n, v) -> Fmt.pf ppf "%s = %a" n V.pp v))
    inputs

let arbitrary_case : (E.t * (string * V.t) list) QCheck.arbitrary =
  QCheck.make ~print:print_case (G.pair gen_root_query gen_inputs)
