(** Direct unit tests for the partitioner underneath the executor:
    round-robin placement of freshly loaded bags, the hash co-location
    guarantee of [of_bag_by], the multiset round-trip through [to_bag],
    and the byte / row accounting the cost model and the memory manager
    both read. These invariants are what the shuffle-elision and recovery
    layers silently rely on. *)

module V = Nrc.Value
module D = Exec.Dataset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let count default =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let row k v =
  V.Tuple [ ("k", V.Int k); ("v", V.Str (Printf.sprintf "row-%d" v)) ]

let bag n = V.Bag (List.init n (fun i -> row (i mod 5) i))

(* ------------------------------------------------------------------ *)
(* Round-robin *)

(* of_bag places element i in partition [i mod partitions] — Spark's block
   distribution of freshly loaded data — and never claims a guarantee *)
let test_round_robin_placement () =
  let n = 23 and partitions = 4 in
  let d = D.of_bag ~partitions (bag n) in
  check_int "partition count" partitions (D.partition_count d);
  check "no partitioning guarantee" true (d.D.key = None);
  Array.iteri
    (fun p part ->
      Array.iter
        (fun item ->
          match V.field item "v" with
          | V.Str s ->
            let i = Scanf.sscanf s "row-%d" (fun i -> i) in
            check_int (Printf.sprintf "element %d lands in %d mod %d" i i partitions)
              (i mod partitions) p
          | _ -> Alcotest.fail "unexpected row shape")
        part)
    d.D.parts;
  check_int "rows preserved" n (D.total_rows d)

(* round-robin balance: partition sizes differ by at most one *)
let test_round_robin_balance () =
  List.iter
    (fun (n, partitions) ->
      let d = D.of_bag ~partitions (bag n) in
      let sizes = Array.map Array.length d.D.parts in
      let mn = Array.fold_left min max_int sizes in
      let mx = Array.fold_left max 0 sizes in
      check (Printf.sprintf "n=%d p=%d balanced" n partitions) true
        (mx - mn <= 1))
    [ (0, 3); (1, 3); (7, 3); (24, 8); (100, 7) ]

(* ------------------------------------------------------------------ *)
(* Hash partitioning *)

(* of_bag_by's guarantee: equal keys share a partition, and the recorded
   key paths are exactly the ones hashed *)
let test_hash_colocation () =
  let partitions = 5 in
  let d = D.of_bag_by ~partitions ~key:[ [ "k" ] ] (bag 40) in
  check "guarantee recorded" true (d.D.key = Some [ [ "k" ] ]);
  let home = Hashtbl.create 8 in
  Array.iteri
    (fun p part ->
      Array.iter
        (fun item ->
          let k = V.field item "k" in
          match Hashtbl.find_opt home k with
          | None -> Hashtbl.add home k p
          | Some p' ->
            check (Fmt.str "key %a co-located" V.pp k) true (p = p'))
        part)
    d.D.parts;
  check_int "rows preserved" 40 (D.total_rows d)

let gen_rows : V.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_bound 60 in
  let* keys = list_size (return n) (int_bound 7) in
  return (V.Bag (List.mapi (fun i k -> row k i) keys))

let arbitrary_case =
  QCheck.make
    ~print:(fun (v, p) -> Fmt.str "partitions=%d@ %a" p V.pp v)
    QCheck.Gen.(pair gen_rows (int_range 1 9))

let prop_colocation =
  QCheck.Test.make
    ~name:"of_bag_by: equal keys always share a partition, rows preserved"
    ~count:(count 200) arbitrary_case (fun (v, partitions) ->
      let d = D.of_bag_by ~partitions ~key:[ [ "k" ] ] v in
      let home = Hashtbl.create 8 in
      let ok = ref true in
      Array.iteri
        (fun p part ->
          Array.iter
            (fun item ->
              let k = V.field item "k" in
              match Hashtbl.find_opt home k with
              | None -> Hashtbl.add home k p
              | Some p' -> if p <> p' then ok := false)
            part)
        d.D.parts;
      !ok
      && D.total_rows d = List.length (V.bag_items v)
      && V.approx_bag_equal (D.to_bag d) v)

(* ------------------------------------------------------------------ *)
(* Adversarial hashing. [abs] maps a [min_int] hash fold to itself, so the
   old normalisation could hand a negative index to [mod] and read out of
   bounds; the [land max_int] mask cannot. These generators aim the fold at
   the extremes (min_int/max_int key components, collisions, empty and
   multi-component keys) and pin the contract down. *)

let gen_adversarial_value : V.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun i -> V.Int i)
        (oneofl [ min_int; min_int + 1; max_int; -1; 0; 1; 31; -31 ]);
      map (fun i -> V.Int i) int;
      map (fun s -> V.Str s) (string_size ~gen:printable (int_bound 6));
      return (V.Bool true);
      return (V.Real 0.5);
    ]

let arbitrary_key_case =
  QCheck.make
    ~print:(fun (kv, n) ->
      Fmt.str "n=%d [%a]" n (Fmt.list ~sep:Fmt.semi V.pp) kv)
    QCheck.Gen.(
      pair (list_size (int_range 0 4) gen_adversarial_value) (int_range 1 9))

let prop_hash_key_in_range =
  QCheck.Test.make
    ~name:"hash_key: non-negative; partition index always in [0, n)"
    ~count:(count 500) arbitrary_key_case (fun (kv, n) ->
      let h = Exec.Executor.hash_key kv in
      h >= 0 && 0 <= h mod n && h mod n < n)

let arbitrary_extreme_bag =
  QCheck.make
    ~print:(fun (ks, n) -> Fmt.str "partitions=%d keys=%d" n (List.length ks))
    QCheck.Gen.(
      pair
        (list_size (int_bound 40)
           (oneofl [ min_int; min_int + 1; max_int; -1; 0; 1; 7 ]))
        (int_range 1 9))

(* the shuffle path itself: extreme and colliding keys must place without
   raising, keep equal keys co-located, and lose no rows *)
let prop_adversarial_shuffle =
  QCheck.Test.make
    ~name:"of_bag_by: min_int-hashing keys never raise, co-location holds"
    ~count:(count 200) arbitrary_extreme_bag (fun (ks, partitions) ->
      let v = V.Bag (List.mapi (fun i k -> row k i) ks) in
      let d = D.of_bag_by ~partitions ~key:[ [ "k" ] ] v in
      let home = Hashtbl.create 8 in
      let ok = ref true in
      Array.iteri
        (fun p part ->
          Array.iter
            (fun item ->
              let k = V.field item "k" in
              match Hashtbl.find_opt home k with
              | None -> Hashtbl.add home k p
              | Some p' -> if p <> p' then ok := false)
            part)
        d.D.parts;
      !ok
      && D.total_rows d = List.length ks
      && V.approx_bag_equal (D.to_bag d) v)

(* ------------------------------------------------------------------ *)
(* Multiset round-trip and accounting *)

let prop_roundtrip =
  QCheck.Test.make
    ~name:"of_bag / to_bag: multiset round-trip at any partition count"
    ~count:(count 200) arbitrary_case (fun (v, partitions) ->
      let d = D.of_bag ~partitions v in
      V.approx_bag_equal (D.to_bag d) v
      && D.total_rows d = List.length (V.bag_items v))

(* total_bytes = sum of part_bytes = sum of element byte_size: the single
   quantity the cost model, the memory manager and the checkpoint write
   cost all read *)
let test_byte_accounting () =
  let v = bag 31 in
  let d = D.of_bag ~partitions:4 v in
  let per_part = D.part_bytes d in
  check_int "partition array length" 4 (Array.length per_part);
  check_int "total = sum of parts"
    (Array.fold_left ( + ) 0 per_part)
    (D.total_bytes d);
  let expected =
    List.fold_left (fun acc it -> acc + V.byte_size it) 0 (V.bag_items v)
  in
  check_int "total = sum of element sizes" expected (D.total_bytes d)

let test_empty () =
  let d = D.empty ~partitions:6 in
  check_int "partitions" 6 (D.partition_count d);
  check_int "no rows" 0 (D.total_rows d);
  check_int "no bytes" 0 (D.total_bytes d);
  check "empty bag" true (D.to_bag d = V.Bag [])

(* map transforms every element and drops the guarantee (the transform may
   rewrite the key fields) *)
let test_map_drops_guarantee () =
  let d = D.of_bag_by ~partitions:3 ~key:[ [ "k" ] ] (bag 12) in
  let d' = D.map (fun v -> V.Tuple [ ("x", v) ]) d in
  check "guarantee dropped" true (d'.D.key = None);
  check_int "rows preserved" (D.total_rows d) (D.total_rows d')

(* worker_of_partition is the round-robin placement the crash injector
   uses to decide which partitions die with a worker *)
let test_worker_of_partition () =
  let cfg = { Exec.Config.unbounded with workers = 3; partitions = 7 } in
  List.iter
    (fun p ->
      check_int (Printf.sprintf "partition %d" p) (p mod 3)
        (Exec.Config.worker_of_partition cfg p))
    [ 0; 1; 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dataset"
    [
      ( "round-robin",
        [
          Alcotest.test_case "placement is i mod partitions" `Quick
            test_round_robin_placement;
          Alcotest.test_case "sizes differ by at most one" `Quick
            test_round_robin_balance;
        ] );
      ( "hash partitioning",
        [
          Alcotest.test_case "equal keys co-located, guarantee recorded"
            `Quick test_hash_colocation;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_colocation; prop_hash_key_in_range; prop_adversarial_shuffle ]
      );
      ( "round-trip and accounting",
        [
          Alcotest.test_case "bytes add up across partitions" `Quick
            test_byte_accounting;
          Alcotest.test_case "empty dataset" `Quick test_empty;
          Alcotest.test_case "map drops the guarantee" `Quick
            test_map_drops_guarantee;
          Alcotest.test_case "worker_of_partition is round-robin" `Quick
            test_worker_of_partition;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_roundtrip ] );
    ]
