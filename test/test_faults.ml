(** Fault-injection campaign: for every corpus query, every strategy and
    every injectable fault, a single injected fault must either be
    recovered — the run still produces the reference answer, with attempt
    counts within budget and recovery cost accounted exactly in the span
    tree — or surface as a typed failure. Never a wrong answer. Injection
    is deterministic: the same seed yields the same span tree and the same
    counters, which the replay tests assert bit-for-bit. *)

module V = Nrc.Value
module F = Exec.Faults
module Trace = Exec.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* per-property case count; QCHECK_COUNT scales the whole suite up for the
   nightly campaign (the seed comes from QCHECK_SEED via qcheck-alcotest) *)
let count default =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let cluster = { Exec.Config.unbounded with partitions = 7; workers = 3 }

let api_config =
  { Trance.Api.default_config with cluster; trace = true }

let run_fault ?(config = api_config) ~spec strategy q =
  let prog = Nrc.Program.of_expr ~inputs:Fixtures.inputs_ty ~name:"Q" q in
  Trance.Api.run
    ~config:{ config with Trance.Api.faults = spec }
    ~strategy prog Fixtures.inputs_val

(* wall-clock time is the one legitimately non-deterministic quantity a
   run reports; strip it before any replay comparison *)
let det_spans (r : Trance.Api.run) =
  Trace.spans_json (List.map Trace.without_wall r.Trance.Api.trace)

let det_stats (r : Trance.Api.run) =
  Exec.Stats.strip_wall (Exec.Stats.snapshot r.Trance.Api.stats)

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let test_spec_parsing () =
  let ok s = match F.spec_of_string s with Ok sp -> sp | Error m -> failwith m in
  let sp = ok "crash:stage=2" in
  check "crash kind" true (sp.F.kind = F.Worker_crash);
  check_int "crash stage" 2 sp.F.stage;
  let sp = ok "task:stage=1,fails=3" in
  check "task kind" true (sp.F.kind = F.Task_failure);
  check_int "task fails" 3 sp.F.fails;
  let sp = ok "straggler:mult=6" in
  check "straggler mult" true (sp.F.multiplier = 6.);
  check_int "straggler default stage" 0 sp.F.stage;
  let sp = ok "memsqueeze:factor=0.25" in
  check "squeeze factor" true (sp.F.factor = 0.25);
  check "fetch defaults" true (ok "fetch" = F.default_spec F.Fetch_failure);
  (* canonical form round-trips *)
  List.iter
    (fun s -> check ("round-trip " ^ s) true (ok (F.spec_to_string (ok s)) = ok s))
    [ "crash:stage=2"; "task:fails=2"; "fetch:stage=3"; "straggler:mult=8";
      "memsqueeze:factor=0.5" ];
  (* rejections *)
  List.iter
    (fun s ->
      check ("reject " ^ s) true (Result.is_error (F.spec_of_string s)))
    [ "meteor"; "task:stage=-1"; "task:fails=0"; "straggler:mult=0.5";
      "memsqueeze:factor=2"; "crash:bogus=1" ]

let test_schedule_parsing () =
  let ok s =
    match F.schedule_of_string s with Ok sch -> sch | Error m -> failwith m
  in
  let sch = ok "crash:stage=2+task:stage=4,fails=2" in
  check_int "two specs" 2 (List.length sch);
  check "first is the crash" true
    ((List.nth sch 0).F.kind = F.Worker_crash
    && (List.nth sch 0).F.stage = 2);
  check "second is the task failure" true
    ((List.nth sch 1).F.kind = F.Task_failure
    && (List.nth sch 1).F.fails = 2);
  check "single spec is a one-element schedule" true
    (ok "crash:stage=2" = [ Result.get_ok (F.spec_of_string "crash:stage=2") ]);
  (* canonical form round-trips *)
  List.iter
    (fun s ->
      check ("round-trip " ^ s) true
        (ok (F.schedule_to_string (ok s)) = ok s))
    [ "crash:stage=2+task:stage=4,fails=2";
      "crash:stage=1+crash:stage=2+crash:stage=3";
      "memsqueeze:stage=0,factor=0.5+fetch:stage=3,fails=2" ];
  (* rejections: empty string, empty component, bad component *)
  List.iter
    (fun s ->
      check ("reject " ^ String.escaped s) true
        (Result.is_error (F.schedule_of_string s)))
    [ ""; "crash:stage=2+"; "+crash:stage=2"; "crash:stage=2+meteor" ]

(* the storm generator is a pure function of its arguments *)
let test_storm_deterministic () =
  let a = F.storm ~seed:7 ~first_stage:2 ~span:6 4 in
  let b = F.storm ~seed:7 ~first_stage:2 ~span:6 4 in
  check "same arguments, same storm" true (a = b);
  check_int "storm size" 4 (List.length a);
  List.iter
    (fun sp ->
      check "stage within the window" true
        (sp.F.stage >= 2 && sp.F.stage < 8))
    a;
  check "chronological" true
    (List.sort (fun x y -> compare x.F.stage y.F.stage) a = a);
  let c = F.storm ~seed:8 ~first_stage:2 ~span:6 4 in
  check "different seed, different storm" true (a <> c);
  (* storms round-trip through the CLI syntax like any schedule *)
  check "storm round-trips" true
    (F.schedule_of_string (F.schedule_to_string a) = Ok a)

(* print/parse round-trip as properties: every generated spec and every
   generated schedule survives to_string/of_string bit-for-bit, including
   the ['+'] schedule syntax *)
let gen_roundtrip_spec : F.spec QCheck.Gen.t =
  let open QCheck.Gen in
  let* kind =
    oneofl
      [ F.Worker_crash; F.Task_failure; F.Fetch_failure; F.Straggler;
        F.Mem_squeeze ]
  in
  let* stage = int_bound 9 in
  let* fails = int_range 1 9 in
  let* multiplier = map float_of_int (int_range 2 12) in
  let* factor = oneofl [ 0.125; 0.25; 0.5; 0.75 ] in
  return { (F.default_spec kind) with F.stage; fails; multiplier; factor }

let arbitrary_roundtrip_spec =
  QCheck.make ~print:F.spec_to_string gen_roundtrip_spec

let arbitrary_roundtrip_schedule =
  QCheck.make ~print:F.schedule_to_string
    QCheck.Gen.(list_size (int_range 1 6) gen_roundtrip_spec)

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"spec syntax: parse (print spec) = spec"
    ~count:(count 500) arbitrary_roundtrip_spec (fun sp ->
      match F.spec_of_string (F.spec_to_string sp) with
      | Ok sp' -> F.spec_to_string sp' = F.spec_to_string sp
      | Error _ -> false)

let prop_schedule_roundtrip =
  QCheck.Test.make
    ~name:"schedule syntax: parse (print schedule) = schedule"
    ~count:(count 500) arbitrary_roundtrip_schedule (fun sch ->
      match F.schedule_of_string (F.schedule_to_string sch) with
      | Ok sch' -> F.schedule_to_string sch' = F.schedule_to_string sch
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* The differential campaign: corpus x strategy x fault x stage *)

let strategies =
  [
    ("Standard", Trance.Api.Standard, api_config);
    ("Shred+Unshred", Trance.Api.Shredded { unshred = true }, api_config);
    ( "Standard+skew",
      Trance.Api.Standard,
      { api_config with
        Trance.Api.skew_aware = true;
        cluster = { cluster with broadcast_limit = 64 } } );
  ]

let fault_specs =
  List.concat_map
    (fun stage ->
      [
        { (F.default_spec F.Worker_crash) with F.stage };
        { (F.default_spec F.Task_failure) with F.stage; fails = 2 };
        { (F.default_spec F.Fetch_failure) with F.stage; fails = 2 };
        { (F.default_spec F.Straggler) with F.stage };
      ])
    [ 1; 4 ]

(* aggregated recovery counters in the span tree = flat Stats counters:
   "recomputed bytes accounted exactly in the span tree" *)
let check_recovery_totals what (r : Trance.Api.run) =
  let t = Trace.agg r.Trance.Api.trace in
  let s = r.Trance.Api.stats in
  check_int (what ^ ": span task_retries") (Exec.Stats.task_retries s)
    t.Trace.task_retries;
  check_int (what ^ ": span retried_tasks") (Exec.Stats.retried_tasks s)
    t.Trace.retried_tasks;
  check_int (what ^ ": span speculative") (Exec.Stats.speculative_tasks s)
    t.Trace.speculative_tasks;
  check_int (what ^ ": span recomputed") (Exec.Stats.recomputed_bytes s)
    t.Trace.recomputed_bytes;
  check_int (what ^ ": span spilled_bytes") (Exec.Stats.spilled_bytes s)
    t.Trace.spilled_bytes;
  check_int (what ^ ": span spill_partitions")
    (Exec.Stats.spill_partitions s) t.Trace.spill_partitions;
  check_int (what ^ ": span spill_rounds") (Exec.Stats.spill_rounds s)
    t.Trace.spill_rounds

let check_attempt_bounds what (spec : F.spec) (r : Trance.Api.run) =
  let s = r.Trance.Api.stats in
  let per_task = max (cluster.Exec.Config.max_task_attempts - 1) spec.F.fails in
  check (what ^ ": retried tasks bounded by partitions") true
    (Exec.Stats.retried_tasks s <= cluster.Exec.Config.partitions);
  check (what ^ ": retries within attempt budget") true
    (Exec.Stats.task_retries s <= Exec.Stats.retried_tasks s * per_task)

let campaign_tests =
  List.concat_map
    (fun (name, q) ->
      List.concat_map
        (fun (sname, strategy, config) ->
          List.map
            (fun spec ->
              let what =
                Printf.sprintf "%s [%s] %s" name sname (F.spec_to_string spec)
              in
              Alcotest.test_case what `Quick (fun () ->
                  let reference = Fixtures.eval_ref q in
                  let r = run_fault ~config ~spec:[ spec ] strategy q in
                  (match r.Trance.Api.failure with
                  | None ->
                    (* recovered: the answer is the reference answer *)
                    (match r.Trance.Api.value with
                    | Some v ->
                      check (what ^ ": recovers to reference") true
                        (V.approx_bag_equal reference v)
                    | None -> Alcotest.fail (what ^ ": no value, no failure"))
                  | Some (Trance.Api.Task_failed _)
                  | Some (Trance.Api.Out_of_memory _)
                  | Some (Trance.Api.Deadline_missed _) ->
                    () (* typed failure: acceptable, never a wrong answer *)
                  | Some (Trance.Api.Error m) ->
                    Alcotest.fail (what ^ ": untyped failure " ^ m));
                  check_attempt_bounds what spec r;
                  check_recovery_totals what r;
                  (* same seed => identical span tree and counters *)
                  let r2 = run_fault ~config ~spec:[ spec ] strategy q in
                  check (what ^ ": deterministic span tree") true
                    (det_spans r = det_spans r2);
                  check (what ^ ": deterministic counters") true
                    (det_stats r = det_stats r2)))
            fault_specs)
        strategies)
    Fixtures.corpus

(* ------------------------------------------------------------------ *)
(* The memory ladder: corpus x strategy x shrinking worker budget. With
   spilling on, no budget on the ladder may fail: the run completes in
   memory, spills, or (Standard, smallest budgets) falls back to the
   shredded route — and always equals the reference answer. Spilling is
   accounting-only, so a run spills iff its in-memory peak exceeds the
   budget. *)

let ladder_tests =
  List.concat_map
    (fun (name, q) ->
      List.map
        (fun (sname, strategy, config) ->
          let what = Printf.sprintf "%s [%s]" name sname in
          Alcotest.test_case what `Quick (fun () ->
              let reference = Fixtures.eval_ref q in
              let spill_on budget =
                { config with
                  Trance.Api.cluster =
                    { config.Trance.Api.cluster with
                      worker_mem = budget;
                      spill = Exec.Config.On };
                  route_fallback = false }
              in
              let clean = run_fault ~config:(spill_on max_int) ~spec:[] strategy q in
              check (what ^ ": unbounded run succeeds") true
                (clean.Trance.Api.failure = None);
              let peak = Exec.Stats.peak_worker_bytes clean.Trance.Api.stats in
              List.iter
                (fun budget ->
                  let rung = Printf.sprintf "%s mem=%d" what budget in
                  let r = run_fault ~config:(spill_on budget) ~spec:[] strategy q in
                  check (rung ^ ": completes or degrades, never fails") true
                    (r.Trance.Api.failure = None);
                  (match r.Trance.Api.value with
                  | Some v ->
                    check (rung ^ ": reference answer") true
                      (V.approx_bag_equal reference v)
                  | None -> Alcotest.fail (rung ^ ": no value"));
                  check (rung ^ ": spills iff the in-memory peak overflows")
                    true
                    (Exec.Stats.spilled_bytes r.Trance.Api.stats > 0
                    = (peak > budget));
                  check_recovery_totals rung r;
                  let r2 = run_fault ~config:(spill_on budget) ~spec:[] strategy q in
                  check (rung ^ ": deterministic replay") true
                    (det_spans r = det_spans r2 && det_stats r = det_stats r2))
                [ peak; max 1 (peak / 4); max 1 (peak / 16) ]))
        strategies)
    Fixtures.corpus

(* ------------------------------------------------------------------ *)
(* Targeted recovery semantics *)

(* exhausting the attempt budget surfaces as a typed Task_failed, with the
   wasted attempts still accounted *)
let test_task_exhaustion () =
  let spec = { (F.default_spec F.Task_failure) with F.fails = 99 } in
  let r = run_fault ~spec:[ spec ] Trance.Api.Standard Fixtures.example1 in
  (match r.Trance.Api.failure with
  | Some (Trance.Api.Task_failed { attempts; _ }) ->
    check_int "abandoned after the full attempt budget"
      cluster.Exec.Config.max_task_attempts attempts
  | other ->
    Alcotest.failf "expected Task_failed, got %s"
      (match other with
      | None -> "success"
      | Some f -> Trance.Api.failure_message f));
  check "outcome is Failed" true (Trance.Api.outcome r = Trance.Api.Failed);
  check_int "wasted retries accounted"
    (cluster.Exec.Config.max_task_attempts - 1)
    (Exec.Stats.task_retries r.Trance.Api.stats);
  check_recovery_totals "task exhaustion" r

(* a worker crash is always recoverable: lineage re-execution retries every
   partition of the dead worker and the answer is unchanged *)
let test_crash_recovers () =
  let spec = F.default_spec F.Worker_crash in
  let r = run_fault ~spec:[ spec ] Trance.Api.Standard Fixtures.example1 in
  check "no failure" true (r.Trance.Api.failure = None);
  check "lost partitions were retried" true
    (Exec.Stats.task_retries r.Trance.Api.stats > 0);
  check "outcome is Degraded" true
    (Trance.Api.outcome r = Trance.Api.Degraded);
  let reference = Fixtures.eval_ref Fixtures.example1 in
  check "answer unchanged" true
    (V.approx_bag_equal reference (Option.get r.Trance.Api.value))

(* speculation races a duplicate against the straggler and wins; without it
   the stage just waits the full multiplier out *)
let test_straggler_speculation () =
  let spec = { (F.default_spec F.Straggler) with F.multiplier = 8. } in
  let with_spec = run_fault ~spec:[ spec ] Trance.Api.Standard Fixtures.example1 in
  let no_spec_config =
    { api_config with
      Trance.Api.cluster = { cluster with speculation = false } }
  in
  let without =
    run_fault ~config:no_spec_config ~spec:[ spec ] Trance.Api.Standard
      Fixtures.example1
  in
  check_int "speculative duplicate launched" 1
    (Exec.Stats.speculative_tasks with_spec.Trance.Api.stats);
  check_int "no duplicate without speculation" 0
    (Exec.Stats.speculative_tasks without.Trance.Api.stats);
  check "speculation is never slower" true
    (Exec.Stats.sim_seconds with_spec.Trance.Api.stats
    <= Exec.Stats.sim_seconds without.Trance.Api.stats +. 1e-12);
  List.iter
    (fun (r : Trance.Api.run) ->
      check "straggler runs recover" true (r.Trance.Api.failure = None))
    [ with_spec; without ]

(* a transient fetch failure re-fetches at a shuffle site and recovers *)
let test_fetch_recovers () =
  let spec = { (F.default_spec F.Fetch_failure) with F.fails = 2 } in
  let r = run_fault ~spec:[ spec ] Trance.Api.Standard Fixtures.example1 in
  check "no failure" true (r.Trance.Api.failure = None);
  check_int "both re-fetch attempts counted" 2
    (Exec.Stats.task_retries r.Trance.Api.stats);
  check_int "one task re-fetched" 1
    (Exec.Stats.retried_tasks r.Trance.Api.stats)

(* with spilling off and no route fallback, a memory squeeze still
   surfaces as the typed OOM failure, with the squeezed (not the
   configured) budget reported *)
let test_memsqueeze_typed_oom () =
  let clean = run_fault ~spec:[] Trance.Api.Standard Fixtures.example1 in
  let peak = Exec.Stats.peak_worker_bytes clean.Trance.Api.stats in
  check "clean run has a positive peak" true (peak > 0);
  let budget = 2 * peak in
  let config =
    { api_config with
      Trance.Api.cluster =
        { cluster with worker_mem = budget; spill = Exec.Config.Off };
      route_fallback = false }
  in
  let ok = run_fault ~config ~spec:[] Trance.Api.Standard Fixtures.example1 in
  check "budget fits without the squeeze" true (ok.Trance.Api.failure = None);
  let spec = { (F.default_spec F.Mem_squeeze) with F.factor = 0.25 } in
  let r = run_fault ~config ~spec:[ spec ] Trance.Api.Standard Fixtures.example1 in
  match r.Trance.Api.failure with
  | Some (Trance.Api.Out_of_memory { budget = squeezed; _ }) ->
    check "squeezed budget reported" true (squeezed < budget);
    check "outcome is Failed" true (Trance.Api.outcome r = Trance.Api.Failed)
  | other ->
    Alcotest.failf "expected Out_of_memory, got %s"
      (match other with
      | None -> "success"
      | Some f -> Trance.Api.failure_message f)

(* the same squeeze with spilling on degrades instead of failing: the
   squeezed stages spill their build sides and the answer is unchanged *)
let test_memsqueeze_spills () =
  let clean = run_fault ~spec:[] Trance.Api.Standard Fixtures.example1 in
  let peak = Exec.Stats.peak_worker_bytes clean.Trance.Api.stats in
  let budget = 2 * peak in
  let config =
    { api_config with
      Trance.Api.cluster =
        { cluster with worker_mem = budget; spill = Exec.Config.On };
      route_fallback = false }
  in
  let spec = { (F.default_spec F.Mem_squeeze) with F.factor = 0.25 } in
  let r = run_fault ~config ~spec:[ spec ] Trance.Api.Standard Fixtures.example1 in
  check "squeeze recovers by spilling" true (r.Trance.Api.failure = None);
  check "outcome is Degraded" true (Trance.Api.outcome r = Trance.Api.Degraded);
  check "spilled bytes accounted" true
    (Exec.Stats.spilled_bytes r.Trance.Api.stats > 0);
  let reference = Fixtures.eval_ref Fixtures.example1 in
  check "answer unchanged" true
    (V.approx_bag_equal reference (Option.get r.Trance.Api.value));
  check_recovery_totals "squeeze spills" r;
  match r.Trance.Api.degradation with
  | Some d ->
    check "degradation records the spill" true
      (d.Trance.Api.spilled_bytes > 0 && not d.Trance.Api.fell_back)
  | None -> Alcotest.fail "expected a degradation record"

(* regression: Config.unbounded's max_int budget must survive the
   squeeze's float round-trip — never a negative or garbage budget *)
let test_effective_mem_unbounded () =
  let active factor =
    let t = F.make [ { (F.default_spec F.Mem_squeeze) with F.factor = factor } ] in
    ignore (F.on_stage (Some t) ~site:F.Compute ~partitions:4 ~workers:2);
    t
  in
  List.iter
    (fun factor ->
      let eff = F.effective_mem (Some (active factor)) max_int in
      check (Printf.sprintf "factor %g stays positive" factor) true (eff > 0);
      check (Printf.sprintf "factor %g never exceeds the budget" factor) true
        (eff <= max_int))
    [ 1.0; 0.9; 0.5; 0.25; 1e-3 ];
  check_int "finite budgets still squeeze" 500_000
    (F.effective_mem (Some (active 0.5)) 1_000_000);
  check_int "inactive squeeze is the identity" max_int
    (F.effective_mem
       (Some (F.make [ { (F.default_spec F.Mem_squeeze) with F.stage = 5 } ]))
       max_int)

(* a storm fires every spec: a two-crash schedule retries more tasks than
   either single crash alone, and still recovers to the reference answer *)
let test_storm_fires_all () =
  let crash stage = { (F.default_spec F.Worker_crash) with F.stage } in
  let one = run_fault ~spec:[ crash 1 ] Trance.Api.Standard Fixtures.example1 in
  let two =
    run_fault ~spec:[ crash 1; crash 2 ] Trance.Api.Standard Fixtures.example1
  in
  check "storm recovers" true (two.Trance.Api.failure = None);
  check "second crash pays additional retries" true
    (Exec.Stats.task_retries two.Trance.Api.stats
    > Exec.Stats.task_retries one.Trance.Api.stats);
  let reference = Fixtures.eval_ref Fixtures.example1 in
  check "storm answer unchanged" true
    (V.approx_bag_equal reference (Option.get two.Trance.Api.value));
  check_recovery_totals "storm" two

(* a clean run is byte-identical to itself: the baseline the injected
   determinism checks rest on *)
let test_clean_deterministic () =
  let a = run_fault ~spec:[] Trance.Api.Standard Fixtures.example1 in
  let b = run_fault ~spec:[] Trance.Api.Standard Fixtures.example1 in
  check "span trees identical" true (det_spans a = det_spans b);
  check "counters identical" true (det_stats a = det_stats b);
  check "clean outcome is Completed" true
    (Trance.Api.outcome a = Trance.Api.Completed)

(* ------------------------------------------------------------------ *)
(* Random campaign: random query x random fault, never a wrong answer *)

let gen_spec : F.spec QCheck.Gen.t =
  let open QCheck.Gen in
  let* kind =
    oneofl
      [ F.Worker_crash; F.Task_failure; F.Fetch_failure; F.Straggler;
        F.Mem_squeeze ]
  in
  let* stage = int_bound 5 in
  let* fails = int_range 1 5 in
  let* multiplier = map float_of_int (int_range 2 10) in
  { (F.default_spec kind) with F.stage; fails; multiplier; factor = 0.5 }
  |> return

let arbitrary_fault_case =
  QCheck.make
    ~print:(fun (case, sp) ->
      Printf.sprintf "%s\nfault: %s" (Qgen.print_case case) (F.spec_to_string sp))
    QCheck.Gen.(pair (QCheck.gen Qgen.arbitrary_case) gen_spec)

let run_random ~spec q inputs =
  let prog = Nrc.Program.of_expr ~inputs:Qgen.inputs_ty ~name:"Q" q in
  Trance.Api.run
    ~config:{ api_config with Trance.Api.faults = [ spec ] }
    ~strategy:Trance.Api.Standard prog inputs

let prop_fault_never_wrong =
  QCheck.Test.make
    ~name:"random query x random fault: reference answer or typed failure"
    ~count:(count 150) arbitrary_fault_case (fun ((q, inputs), spec) ->
      let expected = Nrc.Eval.eval (Nrc.Eval.env_of_list inputs) q in
      let r = run_random ~spec q inputs in
      let t = Trace.agg r.Trance.Api.trace in
      let s = r.Trance.Api.stats in
      t.Trace.task_retries = Exec.Stats.task_retries s
      && t.Trace.recomputed_bytes = Exec.Stats.recomputed_bytes s
      &&
      match r.Trance.Api.failure, r.Trance.Api.value with
      | None, Some v -> V.approx_bag_equal expected v
      | None, None -> false
      | Some (Trance.Api.Task_failed _ | Trance.Api.Out_of_memory _), _ ->
        true
      (* no deadline is configured, so a Deadline_missed here is a bug *)
      | Some (Trance.Api.Deadline_missed _ | Trance.Api.Error _), _ -> false)

(* random query x random budget: the spilling layer itself (no fallback)
   always completes with the reference answer, and spills exactly when the
   in-memory peak would not fit *)
let arbitrary_budget_case =
  QCheck.make
    ~print:(fun (case, k) ->
      Printf.sprintf "%s\nbudget divisor: %d" (Qgen.print_case case) k)
    QCheck.Gen.(pair (QCheck.gen Qgen.arbitrary_case) (int_range 1 64))

let run_budget ~budget q inputs =
  let prog = Nrc.Program.of_expr ~inputs:Qgen.inputs_ty ~name:"Q" q in
  Trance.Api.run
    ~config:
      { api_config with
        Trance.Api.cluster =
          { cluster with worker_mem = budget; spill = Exec.Config.On };
        route_fallback = false }
    ~strategy:Trance.Api.Standard prog inputs

let prop_spill_never_wrong =
  QCheck.Test.make
    ~name:"random query x random budget: spilling completes with the reference answer"
    ~count:(count 100) arbitrary_budget_case (fun ((q, inputs), k) ->
      let expected = Nrc.Eval.eval (Nrc.Eval.env_of_list inputs) q in
      let clean = run_budget ~budget:max_int q inputs in
      let peak = Exec.Stats.peak_worker_bytes clean.Trance.Api.stats in
      let budget = max 1 (peak / k) in
      let r = run_budget ~budget q inputs in
      let t = Trace.agg r.Trance.Api.trace in
      let s = r.Trance.Api.stats in
      t.Trace.spilled_bytes = Exec.Stats.spilled_bytes s
      && t.Trace.spill_rounds = Exec.Stats.spill_rounds s
      && (Exec.Stats.spilled_bytes s > 0) = (peak > budget)
      &&
      match r.Trance.Api.failure, r.Trance.Api.value with
      | None, Some v -> V.approx_bag_equal expected v
      | _ -> false)

let prop_fault_deterministic =
  QCheck.Test.make
    ~name:"random query x random fault: same seed, same run"
    ~count:(count 100) arbitrary_fault_case (fun ((q, inputs), spec) ->
      let a = run_random ~spec q inputs in
      let b = run_random ~spec q inputs in
      det_spans a = det_spans b
      && det_stats a = det_stats b
      && a.Trance.Api.failure = b.Trance.Api.failure)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "spec parsing",
        [
          Alcotest.test_case "parse / round-trip / reject" `Quick
            test_spec_parsing;
          Alcotest.test_case "schedule parse / round-trip / reject" `Quick
            test_schedule_parsing;
          Alcotest.test_case "storm generator is deterministic" `Quick
            test_storm_deterministic;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_spec_roundtrip; prop_schedule_roundtrip ] );
      ("corpus campaign", campaign_tests);
      ("memory ladder", ladder_tests);
      ( "recovery semantics",
        [
          Alcotest.test_case "task attempt budget exhausts typed" `Quick
            test_task_exhaustion;
          Alcotest.test_case "worker crash recovers from lineage" `Quick
            test_crash_recovers;
          Alcotest.test_case "straggler speculation first-wins" `Quick
            test_straggler_speculation;
          Alcotest.test_case "fetch failure re-fetches and recovers" `Quick
            test_fetch_recovers;
          Alcotest.test_case "memory squeeze fails typed with spilling off"
            `Quick test_memsqueeze_typed_oom;
          Alcotest.test_case "memory squeeze spills and degrades" `Quick
            test_memsqueeze_spills;
          Alcotest.test_case "effective_mem survives unbounded budgets"
            `Quick test_effective_mem_unbounded;
          Alcotest.test_case "two-crash storm fires both crashes" `Quick
            test_storm_fires_all;
          Alcotest.test_case "clean runs are deterministic" `Quick
            test_clean_deterministic;
        ] );
      ( "random campaign",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fault_never_wrong;
            prop_spill_never_wrong;
            prop_fault_deterministic;
          ] );
    ]
