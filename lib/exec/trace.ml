(** Span-tree execution tracing; see trace.mli for the model. *)

type join_strategy =
  | Broadcast
  | Shuffle
  | Guarantee_skipped
  | Skew_split of { heavy_keys : int }

let strategy_name = function
  | Broadcast -> "broadcast"
  | Shuffle -> "shuffle"
  | Guarantee_skipped -> "guarantee-skipped"
  | Skew_split { heavy_keys } -> Printf.sprintf "skew-split(%d)" heavy_keys

type metrics = {
  shuffled_bytes : int;
  broadcast_bytes : int;
  rows_in : int;
  rows_out : int;
  stages : int;
  max_partition_bytes : int;
  sum_partition_bytes : int;
  partitions : int;
  peak_worker_bytes : int;
  sim_seconds : float;
  task_retries : int;
  retried_tasks : int;
  speculative_tasks : int;
  recomputed_bytes : int;
  spilled_bytes : int;
  spill_partitions : int;
  spill_rounds : int;
  checkpoints_written : int;
  checkpoint_bytes : int;
  lineage_truncated : int;
  recovery_seconds : float;
  wall_seconds : float;
}

let zero_metrics =
  {
    shuffled_bytes = 0;
    broadcast_bytes = 0;
    rows_in = 0;
    rows_out = 0;
    stages = 0;
    max_partition_bytes = 0;
    sum_partition_bytes = 0;
    partitions = 0;
    peak_worker_bytes = 0;
    sim_seconds = 0.;
    task_retries = 0;
    retried_tasks = 0;
    speculative_tasks = 0;
    recomputed_bytes = 0;
    spilled_bytes = 0;
    spill_partitions = 0;
    spill_rounds = 0;
    checkpoints_written = 0;
    checkpoint_bytes = 0;
    lineage_truncated = 0;
    recovery_seconds = 0.;
    wall_seconds = 0.;
  }

let merge_metrics a b =
  {
    shuffled_bytes = a.shuffled_bytes + b.shuffled_bytes;
    broadcast_bytes = a.broadcast_bytes + b.broadcast_bytes;
    rows_in = a.rows_in + b.rows_in;
    rows_out = a.rows_out + b.rows_out;
    stages = a.stages + b.stages;
    max_partition_bytes = max a.max_partition_bytes b.max_partition_bytes;
    sum_partition_bytes = a.sum_partition_bytes + b.sum_partition_bytes;
    partitions = a.partitions + b.partitions;
    peak_worker_bytes = max a.peak_worker_bytes b.peak_worker_bytes;
    sim_seconds = a.sim_seconds +. b.sim_seconds;
    task_retries = a.task_retries + b.task_retries;
    retried_tasks = a.retried_tasks + b.retried_tasks;
    speculative_tasks = a.speculative_tasks + b.speculative_tasks;
    recomputed_bytes = a.recomputed_bytes + b.recomputed_bytes;
    spilled_bytes = a.spilled_bytes + b.spilled_bytes;
    spill_partitions = a.spill_partitions + b.spill_partitions;
    spill_rounds = a.spill_rounds + b.spill_rounds;
    checkpoints_written = a.checkpoints_written + b.checkpoints_written;
    checkpoint_bytes = a.checkpoint_bytes + b.checkpoint_bytes;
    lineage_truncated = a.lineage_truncated + b.lineage_truncated;
    recovery_seconds = a.recovery_seconds +. b.recovery_seconds;
    wall_seconds = a.wall_seconds +. b.wall_seconds;
  }

let mean_partition_bytes m =
  if m.partitions = 0 then 0.
  else float_of_int m.sum_partition_bytes /. float_of_int m.partitions

let load_imbalance m =
  let mean = mean_partition_bytes m in
  if mean <= 0. then 1. else float_of_int m.max_partition_bytes /. mean

type span = {
  id : int;
  op : string;
  stage : string;
  strategy : join_strategy option;
  metrics : metrics;
  children : span list;
}

let rec total sp =
  List.fold_left
    (fun acc c -> merge_metrics acc (total c))
    sp.metrics sp.children

let agg spans =
  List.fold_left (fun acc sp -> merge_metrics acc (total sp)) zero_metrics spans

let find_all pred spans =
  let rec go acc sp =
    let acc = if pred sp then sp :: acc else acc in
    List.fold_left go acc sp.children
  in
  List.rev (List.fold_left go [] spans)

(* ------------------------------------------------------------------ *)
(* Recording *)

type node = {
  nid : int;
  nop : string;
  mutable nstage : string;
  mutable nstrategy : join_strategy option;
  mutable nm : metrics;
  mutable nchildren : node list; (* reversed *)
}

type ctx = {
  mutable stack : node list; (* innermost first *)
  mutable croots : node list; (* reversed *)
  mutable next_id : int;
}

let create () = { stack = []; croots = []; next_id = 0 }

let rec freeze (n : node) : span =
  {
    id = n.nid;
    op = n.nop;
    stage = n.nstage;
    strategy = n.nstrategy;
    metrics = n.nm;
    children = List.rev_map freeze n.nchildren;
  }

let roots ctx = List.rev_map freeze ctx.croots
let last_root ctx = match ctx.croots with [] -> None | n :: _ -> Some (freeze n)

let with_span octx ~op ?(stage = "") f =
  match octx with
  | None -> f ()
  | Some ctx ->
    let n =
      {
        nid = ctx.next_id;
        nop = op;
        nstage = stage;
        nstrategy = None;
        nm = zero_metrics;
        nchildren = [];
      }
    in
    ctx.next_id <- ctx.next_id + 1;
    ctx.stack <- n :: ctx.stack;
    Fun.protect
      ~finally:(fun () ->
        (match ctx.stack with
        | top :: rest when top == n -> ctx.stack <- rest
        | _ -> ());
        match ctx.stack with
        | parent :: _ -> parent.nchildren <- n :: parent.nchildren
        | [] -> ctx.croots <- n :: ctx.croots)
      f

let on_top octx f =
  match octx with
  | None -> ()
  | Some ctx -> ( match ctx.stack with [] -> () | n :: _ -> f n)

let set_stage octx stage =
  on_top octx (fun n -> if n.nstage = "" then n.nstage <- stage)

let set_strategy octx s =
  on_top octx (fun n ->
      match n.nstrategy with None -> n.nstrategy <- Some s | Some _ -> ())

let add octx ?(shuffled = 0) ?(broadcast = 0) ?(rows_in = 0) ?(rows_out = 0)
    ?(stages = 0) ?(sim_seconds = 0.) ?(retries = 0) ?(retried = 0)
    ?(speculative = 0) ?(recomputed = 0) ?(spilled = 0) ?(spill_partitions = 0)
    ?(spill_rounds = 0) ?(checkpoints = 0) ?(checkpoint_bytes = 0)
    ?(lineage_truncated = 0) ?(recovery_seconds = 0.) ?(wall_seconds = 0.) () =
  on_top octx (fun n ->
      n.nm <-
        {
          n.nm with
          shuffled_bytes = n.nm.shuffled_bytes + shuffled;
          broadcast_bytes = n.nm.broadcast_bytes + broadcast;
          rows_in = n.nm.rows_in + rows_in;
          rows_out = n.nm.rows_out + rows_out;
          stages = n.nm.stages + stages;
          sim_seconds = n.nm.sim_seconds +. sim_seconds;
          task_retries = n.nm.task_retries + retries;
          retried_tasks = n.nm.retried_tasks + retried;
          speculative_tasks = n.nm.speculative_tasks + speculative;
          recomputed_bytes = n.nm.recomputed_bytes + recomputed;
          spilled_bytes = n.nm.spilled_bytes + spilled;
          spill_partitions = n.nm.spill_partitions + spill_partitions;
          spill_rounds = n.nm.spill_rounds + spill_rounds;
          checkpoints_written = n.nm.checkpoints_written + checkpoints;
          checkpoint_bytes = n.nm.checkpoint_bytes + checkpoint_bytes;
          lineage_truncated = n.nm.lineage_truncated + lineage_truncated;
          recovery_seconds = n.nm.recovery_seconds +. recovery_seconds;
          wall_seconds = n.nm.wall_seconds +. wall_seconds;
        })

let observe_partitions octx (bytes : int array) =
  on_top octx (fun n ->
      let mx = Array.fold_left max 0 bytes in
      let sum = Array.fold_left ( + ) 0 bytes in
      n.nm <-
        {
          n.nm with
          max_partition_bytes = max n.nm.max_partition_bytes mx;
          sum_partition_bytes = n.nm.sum_partition_bytes + sum;
          partitions = n.nm.partitions + Array.length bytes;
        })

let observe_worker octx bytes =
  on_top octx (fun n ->
      n.nm <-
        { n.nm with peak_worker_bytes = max n.nm.peak_worker_bytes bytes })

let group ~op ~stage children =
  { id = -1; op; stage; strategy = None; metrics = zero_metrics; children }

(* Wall-clock is the one non-deterministic quantity a span carries:
   equivalence campaigns strip it before comparing trees structurally. *)
let rec without_wall sp =
  {
    sp with
    metrics = { sp.metrics with wall_seconds = 0. };
    children = List.map without_wall sp.children;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_bytes ppf b =
  if b >= 1048576 then Fmt.pf ppf "%.2fMB" (float_of_int b /. 1048576.)
  else if b >= 1024 then Fmt.pf ppf "%.1fKB" (float_of_int b /. 1024.)
  else Fmt.pf ppf "%dB" b

let pp_metrics ppf m =
  Fmt.pf ppf "shuffle=%a bcast=%a rows=%d/%d peak=%a imbal=%.1f sim=%.4fs"
    pp_bytes m.shuffled_bytes pp_bytes m.broadcast_bytes m.rows_in m.rows_out
    pp_bytes m.peak_worker_bytes (load_imbalance m) m.sim_seconds;
  if m.task_retries > 0 || m.speculative_tasks > 0 || m.recomputed_bytes > 0
  then
    Fmt.pf ppf " retries=%d spec=%d recomp=%a" m.task_retries
      m.speculative_tasks pp_bytes m.recomputed_bytes;
  if m.spilled_bytes > 0 || m.spill_rounds > 0 then
    Fmt.pf ppf " spilled=%a spill_parts=%d spill_rounds=%d" pp_bytes
      m.spilled_bytes m.spill_partitions m.spill_rounds;
  if m.checkpoints_written > 0 || m.recovery_seconds > 0. then
    Fmt.pf ppf " ckpts=%d ckpt=%a trunc=%a recovery=%.4fs"
      m.checkpoints_written pp_bytes m.checkpoint_bytes pp_bytes
      m.lineage_truncated m.recovery_seconds;
  if m.wall_seconds > 0. then Fmt.pf ppf " wall=%.4fs" m.wall_seconds

let pp_tree ppf sp =
  let rec go indent sp =
    let t = total sp in
    Fmt.pf ppf "%s%s%s%s  [%a]@." indent sp.op
      (if sp.stage = "" then "" else Printf.sprintf " (%s)" sp.stage)
      (match sp.strategy with
      | None -> ""
      | Some s -> Printf.sprintf " <%s>" (strategy_name s))
      pp_metrics t;
    List.iter (go (indent ^ "  ")) sp.children
  in
  go "" sp

(* Hand-rolled JSON (no JSON dependency in the toolchain image). *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_float f =
  (* JSON has no nan/inf; clamp to null-safe zero *)
  if Float.is_finite f then Printf.sprintf "%.6g" f else "0"

let buffer_metrics b m =
  Buffer.add_string b
    (Printf.sprintf
       "{\"shuffled_bytes\":%d,\"broadcast_bytes\":%d,\"rows_in\":%d,\"rows_out\":%d,\"stages\":%d,\"max_partition_bytes\":%d,\"mean_partition_bytes\":%s,\"peak_worker_bytes\":%d,\"load_imbalance\":%s,\"sim_seconds\":%s,\"task_retries\":%d,\"retried_tasks\":%d,\"speculative_tasks\":%d,\"recomputed_bytes\":%d,\"spilled_bytes\":%d,\"spill_partitions\":%d,\"spill_rounds\":%d,\"checkpoints_written\":%d,\"checkpoint_bytes\":%d,\"lineage_truncated\":%d,\"recovery_seconds\":%s,\"wall_seconds\":%s}"
       m.shuffled_bytes m.broadcast_bytes m.rows_in m.rows_out m.stages
       m.max_partition_bytes
       (json_float (mean_partition_bytes m))
       m.peak_worker_bytes
       (json_float (load_imbalance m))
       (json_float m.sim_seconds)
       m.task_retries m.retried_tasks m.speculative_tasks m.recomputed_bytes
       m.spilled_bytes m.spill_partitions m.spill_rounds
       m.checkpoints_written m.checkpoint_bytes m.lineage_truncated
       (json_float m.recovery_seconds)
       (json_float m.wall_seconds))

let rec buffer_json b sp =
  Buffer.add_string b (Printf.sprintf "{\"id\":%d,\"op\":\"" sp.id);
  json_escape b sp.op;
  Buffer.add_string b "\",\"stage\":\"";
  json_escape b sp.stage;
  Buffer.add_string b "\",\"strategy\":";
  (match sp.strategy with
  | None -> Buffer.add_string b "null"
  | Some s ->
    Buffer.add_char b '"';
    json_escape b (strategy_name s);
    Buffer.add_char b '"');
  Buffer.add_string b ",\"metrics\":";
  buffer_metrics b sp.metrics;
  Buffer.add_string b ",\"total\":";
  buffer_metrics b (total sp);
  Buffer.add_string b ",\"children\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      buffer_json b c)
    sp.children;
  Buffer.add_string b "]}"

let to_json sp =
  let b = Buffer.create 1024 in
  buffer_json b sp;
  Buffer.contents b

let spans_json spans =
  let b = Buffer.create 1024 in
  Buffer.add_char b '[';
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      buffer_json b sp)
    spans;
  Buffer.add_char b ']';
  Buffer.contents b
