(** Cluster-simulator configuration.

    The paper's testbed is a 5-worker Spark cluster with 25 executors, 1000
    shuffle partitions, 64 GB per executor, a 10 MB auto-broadcast limit and
    a 2.5% per-partition heavy-key sampling threshold (Sections 5-6). The
    simulator preserves the *ratios* at laptop scale; [worker_mem] is the
    lever that turns the paper's memory-saturation failures into
    {!Stats.Worker_out_of_memory}. *)

type t = {
  workers : int; (* worker nodes; partitions are assigned round-robin *)
  partitions : int; (* shuffle partitions *)
  worker_mem : int; (* byte budget per worker per stage *)
  broadcast_limit : int; (* auto-broadcast threshold, bytes (Spark: 10MB) *)
  sample_per_partition : int; (* tuples sampled per partition for skew *)
  heavy_threshold : float; (* fraction of a partition's sample (paper: 2.5%) *)
  cpu_weight : float; (* simulated seconds per processed byte *)
  net_weight : float; (* simulated seconds per byte received by one node *)
  seed : int;
  max_task_attempts : int; (* attempt budget per task, Spark's spark.task.maxFailures *)
  speculation : bool; (* launch speculative duplicates for stragglers *)
}

let default =
  {
    workers = 5;
    partitions = 40;
    worker_mem = 64 * 1024 * 1024;
    broadcast_limit = 256 * 1024;
    sample_per_partition = 40;
    heavy_threshold = 0.025;
    cpu_weight = 1e-8;
    net_weight = 4e-8;
    seed = 42;
    max_task_attempts = 4;
    speculation = true;
  }

(** A configuration that never fails on memory: used by tests that check
    semantics only. *)
let unbounded = { default with worker_mem = max_int }

let worker_of_partition t p = p mod t.workers
