(** Cluster-simulator configuration.

    The paper's testbed is a 5-worker Spark cluster with 25 executors, 1000
    shuffle partitions, 64 GB per executor, a 10 MB auto-broadcast limit and
    a 2.5% per-partition heavy-key sampling threshold (Sections 5-6). The
    simulator preserves the *ratios* at laptop scale; [worker_mem] is the
    lever that turns the paper's memory-saturation failures into
    {!Stats.Worker_out_of_memory}. *)

type spill = Off | On

type t = {
  workers : int; (* worker nodes; partitions are assigned round-robin *)
  partitions : int; (* shuffle partitions *)
  worker_mem : int; (* byte budget per worker per stage *)
  broadcast_limit : int; (* auto-broadcast threshold, bytes (Spark: 10MB) *)
  sample_per_partition : int; (* tuples sampled per partition for skew *)
  heavy_threshold : float; (* fraction of a partition's sample (paper: 2.5%) *)
  cpu_weight : float; (* simulated seconds per processed byte *)
  net_weight : float; (* simulated seconds per byte received by one node *)
  seed : int;
  max_task_attempts : int; (* attempt budget per task, Spark's spark.task.maxFailures *)
  speculation : bool; (* launch speculative duplicates for stragglers *)
  spill : spill; (* Off reproduces the paper's FAIL bars; On spills to disk *)
  max_spill_rounds : int; (* build passes before a stage gives up (then OOM) *)
  disk_weight : float; (* simulated seconds per byte written to or read from disk *)
}

let spill_of_string = function
  | "on" | "true" | "1" -> Ok On
  | "off" | "false" | "0" -> Ok Off
  | s -> Error (Printf.sprintf "unknown spill mode %S (expected on|off)" s)

let spill_name = function Off -> "off" | On -> "on"

(* CI's memory-pressure matrix sweeps the *default* budget and spill mode
   through the environment so the tier-1 suite runs unchanged under each
   cell; tests that pin [worker_mem] or [spill] explicitly are unaffected.
   TRANCE_WORKER_MEM is MB or "unbounded"; TRANCE_SPILL is on|off. *)
let default =
  let base =
    {
      workers = 5;
      partitions = 40;
      worker_mem = 64 * 1024 * 1024;
      broadcast_limit = 256 * 1024;
      sample_per_partition = 40;
      heavy_threshold = 0.025;
      cpu_weight = 1e-8;
      net_weight = 4e-8;
      seed = 42;
      max_task_attempts = 4;
      speculation = true;
      spill = Off;
      max_spill_rounds = 256;
      disk_weight = 2e-8;
    }
  in
  let base =
    match Sys.getenv_opt "TRANCE_WORKER_MEM" with
    | Some "unbounded" -> { base with worker_mem = max_int }
    | Some s -> (
        match float_of_string_opt s with
        | Some mb when mb > 0. ->
            { base with worker_mem = int_of_float (mb *. 1024. *. 1024.) }
        | _ -> base)
    | None -> base
  in
  match Option.map spill_of_string (Sys.getenv_opt "TRANCE_SPILL") with
  | Some (Ok sp) -> { base with spill = sp }
  | _ -> base

(** A configuration that never fails on memory: used by tests that check
    semantics only. *)
let unbounded = { default with worker_mem = max_int }

let worker_of_partition t p = p mod t.workers
