(** Cluster-simulator configuration.

    The paper's testbed is a 5-worker Spark cluster with 25 executors, 1000
    shuffle partitions, 64 GB per executor, a 10 MB auto-broadcast limit and
    a 2.5% per-partition heavy-key sampling threshold (Sections 5-6). The
    simulator preserves the *ratios* at laptop scale; [worker_mem] is the
    lever that turns the paper's memory-saturation failures into
    {!Stats.Worker_out_of_memory}. *)

type spill = Off | On

type checkpoint = No_checkpoints | Every of int | Auto

type t = {
  workers : int; (* worker nodes; partitions are assigned round-robin *)
  partitions : int; (* shuffle partitions *)
  worker_mem : int; (* byte budget per worker per stage *)
  broadcast_limit : int; (* auto-broadcast threshold, bytes (Spark: 10MB) *)
  sample_per_partition : int; (* tuples sampled per partition for skew *)
  heavy_threshold : float; (* fraction of a partition's sample (paper: 2.5%) *)
  cpu_weight : float; (* simulated seconds per processed byte *)
  net_weight : float; (* simulated seconds per byte received by one node *)
  seed : int;
  max_task_attempts : int; (* attempt budget per task, Spark's spark.task.maxFailures *)
  speculation : bool; (* launch speculative duplicates for stragglers *)
  spill : spill; (* Off reproduces the paper's FAIL bars; On spills to disk *)
  max_spill_rounds : int; (* build passes before a stage gives up (then OOM) *)
  disk_weight : float; (* simulated seconds per byte written to or read from disk *)
  checkpoint : checkpoint; (* stage-boundary materialization policy *)
  checkpoint_replication : int; (* copies written per checkpoint (HDFS: 3) *)
  fault_rate : float; (* expected faults per stage, drives Auto placement *)
  deadline : float option; (* simulated-seconds budget for the whole run *)
  domains : int; (* OCaml domains running partition tasks (1 = sequential) *)
}

let spill_of_string = function
  | "on" | "true" | "1" -> Ok On
  | "off" | "false" | "0" -> Ok Off
  | s -> Error (Printf.sprintf "unknown spill mode %S (expected on|off)" s)

let spill_name = function Off -> "off" | On -> "on"

let checkpoint_of_string s =
  match s with
  | "off" | "none" | "no" -> Ok No_checkpoints
  | "auto" -> Ok Auto
  | _ -> (
    match String.split_on_char '=' s with
    | [ "every"; v ] -> (
      match int_of_string_opt v with
      | Some k when k >= 1 -> Ok (Every k)
      | _ -> Error (Printf.sprintf "bad checkpoint interval %S" v))
    | _ ->
      Error
        (Printf.sprintf "unknown checkpoint policy %S (expected off, every=K, auto)"
           s))

let checkpoint_name = function
  | No_checkpoints -> "off"
  | Every k -> Printf.sprintf "every=%d" k
  | Auto -> "auto"

(* CI's memory-pressure matrix sweeps the *default* budget and spill mode
   through the environment so the tier-1 suite runs unchanged under each
   cell; tests that pin [worker_mem] or [spill] explicitly are unaffected.
   TRANCE_WORKER_MEM is MB or "unbounded"; TRANCE_SPILL is on|off;
   TRANCE_CHECKPOINT is off|every=K|auto; TRANCE_DOMAINS is a domain
   count >= 1 (parallel runs are bit-identical to sequential ones, so the
   whole suite doubles as an equivalence campaign under the hook). *)
let default =
  let base =
    {
      workers = 5;
      partitions = 40;
      worker_mem = 64 * 1024 * 1024;
      broadcast_limit = 256 * 1024;
      sample_per_partition = 40;
      heavy_threshold = 0.025;
      cpu_weight = 1e-8;
      net_weight = 4e-8;
      seed = 42;
      max_task_attempts = 4;
      speculation = true;
      spill = Off;
      max_spill_rounds = 256;
      disk_weight = 2e-8;
      checkpoint = No_checkpoints;
      checkpoint_replication = 3;
      fault_rate = 0.05;
      deadline = None;
      domains = 1;
    }
  in
  let base =
    match Sys.getenv_opt "TRANCE_DOMAINS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> { base with domains = n }
        | _ -> base)
    | None -> base
  in
  let base =
    match Sys.getenv_opt "TRANCE_WORKER_MEM" with
    | Some "unbounded" -> { base with worker_mem = max_int }
    | Some s -> (
        match float_of_string_opt s with
        | Some mb when mb > 0. ->
            { base with worker_mem = int_of_float (mb *. 1024. *. 1024.) }
        | _ -> base)
    | None -> base
  in
  let base =
    match Option.map spill_of_string (Sys.getenv_opt "TRANCE_SPILL") with
    | Some (Ok sp) -> { base with spill = sp }
    | _ -> base
  in
  match Option.map checkpoint_of_string (Sys.getenv_opt "TRANCE_CHECKPOINT") with
  | Some (Ok ck) -> { base with checkpoint = ck }
  | _ -> base

(** A configuration that never fails on memory: used by tests that check
    semantics only. *)
let unbounded = { default with worker_mem = max_int }

let worker_of_partition t p = p mod t.workers
