(** The distributed plan executor: evaluates plans over partitioned datasets
    the way a Spark cluster would, with instrumentation.

    Faithfulness notes (per DESIGN.md substitution table):

    - datasets are partitioned arrays; operators run partition-wise;
    - joins pick between broadcast (small right side, like Spark's
      auto-broadcast) and shuffle hash join, honouring existing partitioning
      guarantees to skip shuffles;
    - nest operators shuffle by their grouping key, then reuse the exact
      single-node semantics of {!Plan.Local_eval} per partition;
    - join+nest pairs that build nested objects are fused into a cogroup
      (Section 3, Optimization) when the nest key contains the unique row id,
      avoiding the flattened intermediate;
    - skew-aware mode implements Figure 6: per-partition sampling determines
      heavy keys; the light part follows the standard implementation while
      the heavy part keeps its location and receives broadcast partners;
    - every operator is accounted: bytes shuffled and broadcast, per-worker
      resident bytes reserved through the {!Memory} manager — which either
      fits the stage, spills its declared build side to simulated disk
      ({!Config.t.spill} [= On]), or denies the reservation (raising
      {!Stats.Worker_out_of_memory}, the paper's FAIL entries) — and a
      simulated time accumulating per-stage maxima over partitions, which is
      where load imbalance shows.

    When a {!Trace.ctx} is supplied, every operator dispatch opens a span
    and all accounting is mirrored into the innermost open span, producing
    the per-operator span tree {!Trace} documents; the untraced path takes
    the [None] fast path everywhere. *)

module V = Nrc.Value
module S = Plan.Sexpr
module Op = Plan.Op
module Row = Plan.Row
module L = Plan.Local_eval

type options = {
  skew_aware : bool;
  cogroup : bool; (* fuse join+nest into cogroup when safe *)
}

let default_options = { skew_aware = false; cogroup = true }

type env = (string, Dataset.t) Hashtbl.t

let env_of_list l : env =
  let h = Hashtbl.create 16 in
  List.iter (fun (n, d) -> Hashtbl.replace h n d) l;
  h

(* Hash over evaluated key tuples, shared by shuffling and heavy-key sets.
   [land max_int], not [abs]: [abs min_int = min_int], whose [mod n] is
   negative and would index [dest.(p)] out of bounds in [shuffle]. *)
let hash_key (kv : V.t list) =
  List.fold_left (fun acc v -> (acc * 31) + V.hash v) 17 kv land max_int

module KeyTbl = Hashtbl.Make (struct
  type t = V.t list

  (* single pass over both lists: this runs once per probed row on the
     join hot path, so no [List.length] pre-walks *)
  let equal a b =
    let rec go a b =
      match a, b with
      | [], [] -> true
      | x :: a, y :: b -> V.equal x y && go a b
      | _, _ -> false
    in
    go a b

  let hash = hash_key
end)

type rset = {
  parts : Row.t array array;
  key : S.t list option; (* partitioning guarantee over rows *)
  skew : (S.t list * unit KeyTbl.t) option;
      (* heavy keys of a skew-triple, carried between operators until
         something alters the key (Section 5: "This set of heavy keys
         remains associated to that skew-triple until the operator does
         something to alter the key") *)
}

type state = {
  cfg : Config.t;
  opts : options;
  stats : Stats.t;
  trace : Trace.ctx option;
  faults : Faults.t option;
  ckpt : Checkpoint.t option;
  mem : Memory.t;
  env : env;
  pool : Pool.t; (* partition tasks run here; accounting stays outside *)
}

(* Partition-wise evaluation goes through the pool. The task closures must
   not touch [st.stats]/[st.trace]/[st.mem]/[st.faults]: every hot loop
   below computes pure per-partition results (plus, for the shuffle, a
   per-task accounting delta merged in partition order), and all shared
   accounting happens on the calling domain after the barrier — which is
   what makes a [domains = N] run bit-identical to [domains = 1]. *)
let pool_map st f parts = Pool.map st.pool (fun _ part -> f part) parts
let pool_mapi st f parts = Pool.map st.pool f parts

(* ------------------------------------------------------------------ *)
(* Accounting *)

let part_bytes (parts : Row.t array array) : int array =
  Array.map
    (fun p -> Array.fold_left (fun acc r -> acc + Row.byte_size r) 0 p)
    parts

let rset_rows r =
  Array.fold_left (fun acc p -> acc + Array.length p) 0 r.parts

let trace_rows_in st rsets =
  if st.trace <> None then
    Trace.add st.trace
      ~rows_in:(List.fold_left (fun acc r -> acc + rset_rows r) 0 rsets)
      ()

(* Recovery cost is charged to both the flat counters and the innermost
   span, so the span tree accounts recomputed bytes exactly. The extra
   simulated time is also booked as [recovery_seconds], the slice of
   [sim_seconds] a deadline-bound run is paying for faults. *)
let charge_recovery st ?(retries = 0) ?(retried = 0) ?(speculative = 0)
    ?(recomputed = 0) ?(dt = 0.) () =
  Stats.add_task_retries st.stats retries;
  Stats.add_retried_tasks st.stats retried;
  Stats.add_speculative st.stats speculative;
  Stats.add_recomputed st.stats recomputed;
  Stats.add_sim_seconds st.stats dt;
  Stats.add_recovery_seconds st.stats dt;
  Trace.add st.trace ~retries ~retried ~speculative ~recomputed
    ~sim_seconds:dt ~recovery_seconds:dt ()

(* Deadlines are enforced at accounted stage boundaries: a run paying for
   recovery can overshoot within a stage, but it can never silently start
   another one — the typed breach is raised before more work is charged,
   so recompute loops are bounded by construction. *)
let check_deadline st ~stage =
  match st.cfg.Config.deadline with
  | Some deadline when Stats.sim_seconds st.stats > deadline ->
    raise
      (Stats.Deadline_exceeded
         { stage; sim_seconds = Stats.sim_seconds st.stats; deadline })
  | _ -> ()

(* Charge one checkpoint write: the io time is paid by the stage, and the
   counters mirror into the innermost span like every other quantity. *)
let charge_checkpoint st (w : Checkpoint.write) =
  Stats.add_checkpoint st.stats;
  Stats.add_checkpoint_bytes st.stats w.Checkpoint.ckpt_bytes;
  Stats.add_lineage_truncated st.stats w.Checkpoint.truncated;
  Stats.add_sim_seconds st.stats w.Checkpoint.io_seconds;
  Trace.add st.trace ~checkpoints:1 ~checkpoint_bytes:w.Checkpoint.ckpt_bytes
    ~lineage_truncated:w.Checkpoint.truncated
    ~sim_seconds:w.Checkpoint.io_seconds ()

(* What a stage's operator can stage out to disk when the manager denies
   full residency — its "build side". Everything else must stay resident.
   [Spill_all] models streaming operators (and shuffle receipts) whose
   whole working set can page through disk chunk-wise; [Spill_pinned] is a
   broadcast replica (external broadcast join); [Spill_parts] is a hash
   table built over the given per-partition inputs (external hash join,
   external cogroup, external group-by/dedup). *)
type spill_side =
  | Spill_all
  | Spill_pinned
  | Spill_parts of int array list

let worker_totals cfg ?(base = 0) (arrs : int array list) : int array =
  let worker = Array.make cfg.Config.workers base in
  List.iter
    (Array.iteri (fun p b ->
         let w = Config.worker_of_partition cfg p in
         worker.(w) <- worker.(w) + b))
    arrs;
  worker

(* Reserve one stage's residency through the memory manager and charge
   whatever it decides: a fitting stage just records its peak, a spilling
   stage additionally pays the spill counters and disk time (to Stats and
   the innermost span, identically), and a denied one fails typed. *)
let check_residency st ~stage ~(worker : int array) ~(spillable : int array) :
    unit =
  match Memory.reserve st.mem ~worker ~spillable with
  | Memory.Fit { peak } ->
    Stats.observe_worker st.stats peak;
    Trace.observe_worker st.trace peak
  | Memory.Spill { spilled_bytes; spill_partitions; rounds; peak; io_seconds }
    ->
    Stats.observe_worker st.stats peak;
    Trace.observe_worker st.trace peak;
    Stats.add_spilled st.stats spilled_bytes;
    Stats.add_spill_partitions st.stats spill_partitions;
    Stats.add_spill_rounds st.stats rounds;
    Stats.add_sim_seconds st.stats io_seconds;
    Trace.add st.trace ~spilled:spilled_bytes ~spill_partitions
      ~spill_rounds:rounds ~sim_seconds:io_seconds ()
  | Memory.Denied { worker_bytes; budget } ->
    Stats.observe_worker st.stats worker_bytes;
    Trace.observe_worker st.trace worker_bytes;
    raise (Stats.Worker_out_of_memory { stage; worker_bytes; budget })

(* Charge one stage: per-worker residency reservation + simulated cpu time.
   Broadcast copies resident on every worker are accounted through the
   manager's pin ledger ({!Memory.pin}) by the broadcasting operator.
   This is also a compute-site stage for the fault injector: an injected
   event is recovered here with Spark's semantics — bounded per-task retry,
   lineage re-execution of a lost worker's partitions, speculative
   duplicates for stragglers — and its cost (extra attempts, recomputed
   bytes, extra simulated time) is charged on top of the clean stage. *)
let account st ~stage ?(spill = Spill_all) (input_bytes : int array list)
    (output : Row.t array array) : unit =
  let cfg = st.cfg in
  let out_bytes = part_bytes output in
  let nparts = Array.length out_bytes in
  let worker =
    worker_totals cfg ~base:(Memory.pinned st.mem) (out_bytes :: input_bytes)
  in
  Trace.observe_partitions st.trace out_bytes;
  (* advance the injector before reserving, so a Mem_squeeze that starts at
     this stage already constrains it *)
  let event =
    Faults.on_stage st.faults ~site:Faults.Compute ~partitions:nparts
      ~workers:cfg.Config.workers
  in
  let spillable =
    match spill with
    | Spill_all -> Array.copy worker
    | Spill_pinned -> Array.make cfg.Config.workers (Memory.pinned st.mem)
    | Spill_parts arrs -> worker_totals cfg arrs
  in
  check_residency st ~stage ~worker ~spillable;
  (* per-partition task cost: a task reads its input slices and writes its
     output slice; the slowest task bounds the stage *)
  let task_cost p =
    out_bytes.(p)
    + List.fold_left
        (fun acc arr -> acc + (if p < Array.length arr then arr.(p) else 0))
        0 input_bytes
  in
  let max_part = ref 0 in
  for p = 0 to nparts - 1 do
    let b = task_cost p in
    if b > !max_part then max_part := b
  done;
  let dt = float_of_int !max_part *. cfg.Config.cpu_weight in
  Stats.add_sim_seconds st.stats dt;
  let rows =
    Array.fold_left (fun acc p -> acc + Array.length p) 0 output
  in
  Stats.add_rows st.stats rows;
  Trace.add st.trace ~rows_out:rows ~sim_seconds:dt ();
  (match event with
  | None -> ()
  | Some (Faults.Fail_task { partition; fails }) ->
    let b = task_cost partition in
    let t = float_of_int b *. cfg.Config.cpu_weight in
    if fails >= cfg.Config.max_task_attempts then begin
      (* every attempt fails: charge the wasted retries, then give up *)
      let wasted = cfg.Config.max_task_attempts - 1 in
      charge_recovery st ~retries:wasted ~retried:1 ~recomputed:(wasted * b)
        ~dt:(float_of_int wasted *. t) ();
      raise
        (Faults.Task_abandoned
           { stage; partition; attempts = cfg.Config.max_task_attempts })
    end
    else
      charge_recovery st ~retries:fails ~retried:1 ~recomputed:(fails * b)
        ~dt:(float_of_int fails *. t) ()
  | Some (Faults.Lose_worker { worker = w }) ->
    (* lineage re-execution: every partition resident on the dead worker is
       recomputed on the survivors, together with the upstream lineage those
       partitions depend on — everything since the last checkpoint
       ({!Checkpoint.replay_bytes}; the whole run when there is none). The
       stage's own lost tasks run in parallel (slowest bounds the time);
       the upstream replay is spread over the surviving workers. *)
    let lost = ref 0 and bytes = ref 0 and slowest = ref 0 in
    for p = 0 to nparts - 1 do
      if Config.worker_of_partition cfg p = w then begin
        incr lost;
        let b = task_cost p in
        bytes := !bytes + b;
        if b > !slowest then slowest := b
      end
    done;
    let replay = Checkpoint.replay_bytes st.ckpt ~lost:!lost ~parts:nparts in
    let survivors = max 1 (cfg.Config.workers - 1) in
    let replay_dt =
      float_of_int replay *. cfg.Config.cpu_weight /. float_of_int survivors
    in
    charge_recovery st ~retries:!lost ~retried:!lost
      ~recomputed:(!bytes + replay)
      ~dt:((float_of_int !slowest *. cfg.Config.cpu_weight) +. replay_dt)
      ()
  | Some (Faults.Straggle { partition; multiplier }) ->
    let b = task_cost partition in
    let t = float_of_int b *. cfg.Config.cpu_weight in
    if cfg.Config.speculation then
      (* a duplicate launches once the straggler is noticed (after ~1x the
         normal task time) and runs at full speed: first copy wins, so the
         task finishes around 2x instead of [multiplier]x *)
      charge_recovery st ~speculative:1 ~recomputed:b
        ~dt:((Float.min multiplier 2. -. 1.) *. t) ()
    else charge_recovery st ~dt:((multiplier -. 1.) *. t) ()
  | Some (Faults.Fail_fetch _) -> () (* only injected at shuffle sites *));
  (* the stage boundary proper: the finished output joins the recovery
     lineage, and the policy may materialize it, truncating that lineage *)
  let total_out = Array.fold_left ( + ) 0 out_bytes in
  (match Checkpoint.on_stage st.ckpt ~out_bytes:total_out with
  | Some w -> charge_checkpoint st w
  | None -> ());
  check_deadline st ~stage

(* ------------------------------------------------------------------ *)
(* Shuffling *)

let eval_keys row keys = List.map (S.eval row) keys

(* Redistribute rows by key hash; counts shuffle bytes and simulated network
   time (bounded by the most-loaded receiving partition — the skew
   bottleneck). Emits its own trace span, so operators that avoid shuffling
   (broadcast joins, guarantee-skipped joins) visibly have none. *)
let shuffle st ?(stage = "shuffle") (r : rset) (keys : S.t list) : rset =
  Trace.with_span st.trace ~op:"Shuffle" ~stage (fun () ->
      let cfg = st.cfg in
      let n = cfg.Config.partitions in
      (* each task builds the destination lists for one *input* partition
         (reversed, as pushed); the merge below concatenates them in input
         partition order, which reproduces the sequential row order
         exactly. Byte counters travel as per-task deltas. *)
      let dests, (moved, received) =
        Pool.map_parts st.pool
          ~zero:(0, Array.make n 0)
          ~merge:(fun (m1, r1) (m2, r2) -> (m1 + m2, Array.map2 ( + ) r1 r2))
          (fun _ part ->
            let dest = Array.make n [] in
            let received = Array.make n 0 in
            let moved = ref 0 in
            Array.iter
              (fun row ->
                let p = hash_key (eval_keys row keys) mod n in
                dest.(p) <- row :: dest.(p);
                let b = Row.byte_size row in
                moved := !moved + b;
                received.(p) <- received.(p) + b)
              part;
            (dest, (!moved, received)))
          r.parts
      in
      let ntasks = Array.length dests in
      let dest =
        Array.init n (fun q ->
            let acc = ref [] in
            (* reversed per-task lists un-reverse as they are prepended;
               descending task order keeps earlier partitions first *)
            for p = ntasks - 1 downto 0 do
              acc := List.rev_append dests.(p).(q) !acc
            done;
            Array.of_list !acc)
      in
      Stats.add_shuffled st.stats moved;
      Stats.add_stage st.stats;
      let max_recv = Array.fold_left max 0 received in
      let dt = float_of_int max_recv *. cfg.Config.net_weight in
      Stats.add_sim_seconds st.stats dt;
      Trace.add st.trace ~shuffled:moved ~stages:1 ~sim_seconds:dt ();
      Trace.observe_partitions st.trace received;
      (* a shuffle is a fetch-site stage: a transient fetch failure makes
         one destination partition re-fetch its inputs [fails] times *)
      (match
         Faults.on_stage st.faults ~site:Faults.Shuffle_fetch ~partitions:n
           ~workers:cfg.Config.workers
       with
      | Some (Faults.Fail_fetch { partition; fails }) ->
        let b = received.(partition) in
        charge_recovery st ~retries:fails ~retried:1 ~recomputed:(fails * b)
          ~dt:(float_of_int (fails * b) *. cfg.Config.net_weight)
          ()
      | _ -> ());
      (* receiving workers must hold their partitions — or spill the
         receipts to disk, Spark's shuffle spill *)
      let worker =
        worker_totals cfg ~base:(Memory.pinned st.mem) [ received ]
      in
      check_residency st ~stage ~worker
        ~spillable:(worker_totals cfg [ received ]);
      (* shuffle receipts are recovery lineage too: replaying from the last
         checkpoint would have to re-move them *)
      Checkpoint.observe st.ckpt ~bytes:moved;
      check_deadline st ~stage;
      { parts = dest; key = Some keys; skew = None })

(* shuffle only if the guarantee does not already hold *)
let ensure_partitioned st ?stage (r : rset) (keys : S.t list) : rset =
  match r.key with
  | Some k when k = keys -> r
  | _ -> shuffle st ?stage r keys

(* gather everything to partition 0 (global aggregates) *)
let gather st (r : rset) : rset =
  Trace.with_span st.trace ~op:"Gather" ~stage:"gather" (fun () ->
      let all = Array.to_list r.parts |> List.concat_map Array.to_list in
      let bytes =
        List.fold_left (fun acc row -> acc + Row.byte_size row) 0 all
      in
      Stats.add_shuffled st.stats bytes;
      Stats.add_stage st.stats;
      Trace.add st.trace ~shuffled:bytes ~stages:1 ();
      let parts = Array.make st.cfg.Config.partitions [||] in
      parts.(0) <- Array.of_list all;
      { parts; key = None; skew = None })

let rset_total_bytes r = Array.fold_left ( + ) 0 (part_bytes r.parts)

(* broadcast charge shared by broadcast joins, products, and the broadcast
   cogroup: the right side is resident on every worker *)
let charge_broadcast st rbytes =
  let total = rbytes * st.cfg.Config.workers in
  Stats.add_broadcast st.stats total;
  Trace.add st.trace ~broadcast:total ()

(* ------------------------------------------------------------------ *)
(* Heavy-key detection (Section 5): per-partition sampling; a key is heavy
   when it covers at least [heavy_threshold] of a partition's sample. *)

let heavy_keys st (r : rset) (keys : S.t list) : unit KeyTbl.t =
  let cfg = st.cfg in
  let heavy = KeyTbl.create 8 in
  Array.iter
    (fun part ->
      let n = Array.length part in
      if n > 0 then begin
        let sample_n = min n cfg.Config.sample_per_partition in
        let stride = max 1 (n / sample_n) in
        let counts = KeyTbl.create 16 in
        let sampled = ref 0 in
        let i = ref 0 in
        while !i < n do
          let kv = eval_keys part.(!i) keys in
          KeyTbl.replace counts kv
            (1 + Option.value (KeyTbl.find_opt counts kv) ~default:0);
          incr sampled;
          i := !i + stride
        done;
        let cutoff =
          max 2
            (int_of_float
               (ceil (cfg.Config.heavy_threshold *. float_of_int !sampled)))
        in
        KeyTbl.iter
          (fun kv c -> if c >= cutoff then KeyTbl.replace heavy kv ())
          counts
      end)
    r.parts;
  heavy

let split_by_keys (r : rset) (keys : S.t list) (hk : unit KeyTbl.t) :
    rset * rset =
  let light = Array.map (fun _ -> []) r.parts in
  let heavy = Array.map (fun _ -> []) r.parts in
  Array.iteri
    (fun p part ->
      Array.iter
        (fun row ->
          let kv = eval_keys row keys in
          if KeyTbl.mem hk kv then heavy.(p) <- row :: heavy.(p)
          else light.(p) <- row :: light.(p))
        part)
    r.parts;
  let mk arr = Array.map (fun l -> Array.of_list (List.rev l)) arr in
  ( { parts = mk light; key = r.key; skew = None },
    { parts = mk heavy; key = None; skew = None } )

let union_parts ?(skew = None) a b =
  {
    parts = Array.mapi (fun i p -> Array.append p b.parts.(i)) a.parts;
    key = None;
    skew;
  }

(* ------------------------------------------------------------------ *)
(* Join strategies *)

let index_rows rkey (rows : Row.t array) : Row.t list ref KeyTbl.t =
  let tbl = KeyTbl.create 64 in
  Array.iter
    (fun row ->
      let kv = eval_keys row rkey in
      if not (List.exists V.is_null kv) then begin
        match KeyTbl.find_opt tbl kv with
        | Some cell -> cell := row :: !cell
        | None -> KeyTbl.add tbl kv (ref [ row ])
      end)
    rows;
  tbl

let join_partition ~lkey ~kind ~rcols (index : Row.t list ref KeyTbl.t)
    (lpart : Row.t array) : Row.t array =
  let out = ref [] in
  Array.iter
    (fun lrow ->
      let kv = eval_keys lrow lkey in
      let matches =
        if List.exists V.is_null kv then []
        else
          match KeyTbl.find_opt index kv with
          | Some cell -> List.rev !cell
          | None -> []
      in
      match matches, kind with
      | [], Op.LeftOuter -> out := (lrow @ Row.nulls rcols) :: !out
      | [], Op.Inner -> ()
      | ms, _ -> List.iter (fun rrow -> out := (lrow @ rrow) :: !out) ms)
    lpart;
  Array.of_list (List.rev !out)

(* broadcast join: right side replicated to every worker *)
let broadcast_join st ~stage (l : rset) (r : rset) ~lkey ~rkey ~kind ~rcols :
    rset =
  Trace.set_strategy st.trace Trace.Broadcast;
  Trace.set_stage st.trace stage;
  let rbytes = rset_total_bytes r in
  charge_broadcast st rbytes;
  let all_right =
    Array.to_list r.parts |> List.concat_map Array.to_list |> Array.of_list
  in
  let index = index_rows rkey all_right in
  (* probe tasks share the index read-only, which is safe across domains *)
  let out = pool_map st (join_partition ~lkey ~kind ~rcols index) l.parts in
  (* the replica is pinned on every worker for the duration of the stage;
     it is also the join's build side, so it can spill (external broadcast
     join) *)
  Memory.pin st.mem rbytes;
  Fun.protect
    ~finally:(fun () -> Memory.unpin st.mem rbytes)
    (fun () ->
      account st ~stage ~spill:Spill_pinned [ part_bytes l.parts ] out);
  { parts = out; key = l.key; skew = None }

let shuffle_join st ~stage (l : rset) (r : rset) ~lkey ~rkey ~kind ~rcols :
    rset =
  Trace.set_strategy st.trace
    (if l.key = Some lkey && r.key = Some rkey then Trace.Guarantee_skipped
     else Trace.Shuffle);
  Trace.set_stage st.trace stage;
  let l' = ensure_partitioned st ~stage l lkey in
  let r' = ensure_partitioned st ~stage r rkey in
  let out =
    pool_mapi st
      (fun p lpart ->
        let index = index_rows rkey r'.parts.(p) in
        join_partition ~lkey ~kind ~rcols index lpart)
      l'.parts
  in
  (* external hash join: the per-partition build table over the right side
     is what can stage through disk *)
  account st ~stage
    ~spill:(Spill_parts [ part_bytes r'.parts ])
    [ part_bytes l'.parts; part_bytes r'.parts ]
    out;
  { parts = out; key = Some lkey; skew = None }

(* Figure 6: skew-aware join. The heavy-key set is taken from the incoming
   skew-triple when it matches the join key (it "remains associated until
   the operator alters the key"); otherwise it is regenerated by
   sampling. The resulting skew-triple carries the keys forward. *)
let skew_join st ~stage (l : rset) (r : rset) ~lkey ~rkey ~kind ~rcols : rset =
  let hk =
    match l.skew with
    | Some (k, hk) when k = lkey -> hk
    | _ -> heavy_keys st l lkey
  in
  if KeyTbl.length hk = 0 then
    { (shuffle_join st ~stage l r ~lkey ~rkey ~kind ~rcols) with
      skew = Some (lkey, hk) }
  else begin
    Trace.set_strategy st.trace
      (Trace.Skew_split { heavy_keys = KeyTbl.length hk });
    Trace.set_stage st.trace stage;
    let x_l, x_h = split_by_keys l lkey hk in
    let y_l, y_h = split_by_keys r rkey hk in
    let light = shuffle_join st ~stage:(stage ^ ":light") x_l y_l ~lkey ~rkey ~kind ~rcols in
    (* heavy side: X_H keeps its location; Y_H is broadcast *)
    let heavy =
      broadcast_join st ~stage:(stage ^ ":heavy") x_h y_h ~lkey ~rkey ~kind ~rcols
    in
    union_parts ~skew:(Some (lkey, hk)) light heavy
  end

(* ------------------------------------------------------------------ *)
(* Cogroup fusion: NestBag directly over Join, one shuffle per side, no
   flattened intermediate. Safe when the nest keys contain the unique row id
   of the left side (each group is exactly one left row). *)

let has_unique_id keys =
  List.exists
    (fun (_, e) ->
      match e with
      | S.Col [ c ] | S.Col (c :: _) ->
        String.length c >= 3 && String.sub c 0 3 = "id%"
      | _ -> false)
    keys

let cols_subset exprs cols =
  let module SS = Set.Make (String) in
  let cs = SS.of_list cols in
  List.for_all
    (fun e -> List.for_all (fun c -> SS.mem c cs) (S.cols_used e))
    exprs

let cogroup st ~stage (l : rset) (r : rset) ~lkey ~rkey ~kind ~rcols ~keys
    ~item ~presence ~out : rset =
  Trace.set_strategy st.trace
    (if l.key = Some lkey && r.key = Some rkey then Trace.Guarantee_skipped
     else Trace.Shuffle);
  Trace.set_stage st.trace stage;
  let l' = ensure_partitioned st ~stage l lkey in
  let r' = ensure_partitioned st ~stage r rkey in
  let outp =
    pool_mapi st
      (fun p lpart ->
        let index = index_rows rkey r'.parts.(p) in
        let rows = ref [] in
        Array.iter
          (fun lrow ->
            let kv = eval_keys lrow lkey in
            let matches =
              if List.exists V.is_null kv then []
              else
                match KeyTbl.find_opt index kv with
                | Some cell -> List.rev !cell
                | None -> []
            in
            let joined =
              match matches, kind with
              | [], Op.LeftOuter -> [ lrow @ Row.nulls rcols ]
              | [], Op.Inner -> []
              | ms, _ -> List.map (fun rrow -> lrow @ rrow) ms
            in
            match joined with
            | [] -> ()
            | _ ->
              let items =
                List.filter_map
                  (fun jrow ->
                    if S.eval_pred jrow presence then Some (S.eval jrow item)
                    else None)
                  joined
              in
              let key_fields =
                List.map (fun (n, e) -> (n, S.eval lrow e)) keys
              in
              rows := (key_fields @ [ (out, V.Bag items) ]) :: !rows)
          lpart;
        Array.of_list (List.rev !rows))
      l'.parts
  in
  account st ~stage
    ~spill:(Spill_parts [ part_bytes r'.parts ])
    [ part_bytes l'.parts; part_bytes r'.parts ]
    outp;
  { parts = outp; key = None; skew = None }

(* ------------------------------------------------------------------ *)
(* Operator dispatch *)

let map_parts st ~stage ?(key = fun k -> k) ?(keep_skew = false) f (r : rset)
    : rset =
  let out = pool_map st f r.parts in
  account st ~stage [ part_bytes r.parts ] out;
  { parts = out; key = key r.key; skew = (if keep_skew then r.skew else None) }

let next_id_base = ref 0

(* AddIndex ids feed [hash_key] and therefore partition assignment; callers
   that need run-for-run determinism (fault-injection replay) reset the
   counter before each run. *)
let reset_ids () = next_id_base := 0

let rec run (st : state) (op : Op.t) : rset =
  Trace.with_span st.trace ~op:(Op.name op) (fun () -> exec st op)

and exec (st : state) (op : Op.t) : rset =
  let cfg = st.cfg in
  match op with
  | Op.Nil _ ->
    { parts = Array.make cfg.Config.partitions [||]; key = None; skew = None }
  | Op.UnitRow ->
    let parts = Array.make cfg.Config.partitions [||] in
    parts.(0) <- [| [] |];
    { parts; key = None; skew = None }
  | Op.Scan { input; binder } -> (
    match Hashtbl.find_opt st.env input with
    | None -> invalid_arg (Printf.sprintf "Executor: unknown input %S" input)
    | Some ds ->
      Trace.set_stage st.trace input;
      let r =
        {
          parts =
            Array.map (Array.map (fun v -> [ (binder, v) ])) ds.Dataset.parts;
          key =
            Option.map
              (List.map (fun path -> S.Col (binder :: path)))
              ds.Dataset.key;
          skew = None;
        }
      in
      trace_rows_in st [ r ];
      r)
  | Op.Select (p, child) ->
    let r = run st child in
    trace_rows_in st [ r ];
    map_parts st ~stage:"select" ~keep_skew:true
      (fun part -> Array.of_list (List.filter (fun row -> S.eval_pred row p) (Array.to_list part)))
      r
      ~key:(fun k -> k)
  | Op.Project (fields, child) ->
    let r = run st child in
    trace_rows_in st [ r ];
    let new_key =
      match r.key with
      | None -> None
      | Some ks ->
        (* the guarantee survives if every key expr is re-exposed verbatim *)
        let find_col e =
          List.find_opt (fun (_, fe) -> fe = e) fields
        in
        let mapped = List.map find_col ks in
        if List.for_all Option.is_some mapped then
          Some (List.map (fun o -> S.Col [ fst (Option.get o) ]) mapped)
        else None
    in
    map_parts st ~stage:"project"
      (Array.map (fun row -> List.map (fun (n, e) -> (n, S.eval row e)) fields))
      r
      ~key:(fun _ -> new_key)
  | Op.Join { left; right; lkey; rkey; kind } ->
    let l = run st left in
    let r = run st right in
    trace_rows_in st [ l; r ];
    let rcols = Op.columns right in
    if st.opts.skew_aware then
      skew_join st ~stage:"join(skew)" l r ~lkey ~rkey ~kind ~rcols
    else if rset_total_bytes r <= cfg.Config.broadcast_limit then
      broadcast_join st ~stage:"join(broadcast)" l r ~lkey ~rkey ~kind ~rcols
    else shuffle_join st ~stage:"join(shuffle)" l r ~lkey ~rkey ~kind ~rcols
  | Op.Product (left, right) ->
    let l = run st left in
    let r = run st right in
    trace_rows_in st [ l; r ];
    Trace.set_strategy st.trace Trace.Broadcast;
    Trace.set_stage st.trace "product";
    let rbytes = rset_total_bytes r in
    charge_broadcast st rbytes;
    let all_right =
      Array.to_list r.parts |> List.concat_map Array.to_list
    in
    let out =
      pool_map st
        (fun lpart ->
          Array.of_list
            (List.concat_map
               (fun lrow -> List.map (fun rrow -> lrow @ rrow) all_right)
               (Array.to_list lpart)))
        l.parts
    in
    Memory.pin st.mem rbytes;
    Fun.protect
      ~finally:(fun () -> Memory.unpin st.mem rbytes)
      (fun () ->
        account st ~stage:"product" ~spill:Spill_pinned
          [ part_bytes l.parts ]
          out);
    { parts = out; key = l.key; skew = None }
  | Op.Unnest { input; path; binder; outer; drop } ->
    let r = run st input in
    trace_rows_in st [ r ];
    map_parts st ~stage:"unnest" ~keep_skew:true
      (fun part ->
        Array.of_list
          (List.concat_map
             (fun row ->
               let bag = S.eval row (S.Col path) in
               let row = if drop then L.drop_path row path else row in
               match V.bag_items bag with
               | [] -> if outer then [ row @ [ (binder, V.Null) ] ] else []
               | items -> List.map (fun item -> row @ [ (binder, item) ]) items)
             (Array.to_list part)))
      r
      ~key:(fun k -> k)
  | Op.AddIndex { input; col } ->
    let r = run st input in
    trace_rows_in st [ r ];
    incr next_id_base;
    let base = !next_id_base * (1 lsl 50) in
    let out =
      pool_mapi st
        (fun p part ->
          Array.mapi
            (fun i row -> row @ [ (col, V.Int (base + (p lsl 28) + i)) ])
            part)
        r.parts
    in
    account st ~stage:"add_index" [ part_bytes r.parts ] out;
    { parts = out; key = r.key; skew = r.skew }
  | Op.NestBag
      { input = Op.Join { left; right; lkey; rkey; kind };
        keys; agg_keys = []; item; presence; out }
    when st.opts.cogroup && (not st.opts.skew_aware) && has_unique_id keys
         && cols_subset (List.map snd keys) (Op.columns left)
         && cols_subset lkey (Op.columns left) ->
    let l = run st left in
    let r = run st right in
    trace_rows_in st [ l; r ];
    let rcols = Op.columns right in
    if rset_total_bytes r <= cfg.Config.broadcast_limit then begin
      (* broadcast cogroup: no shuffle at all *)
      Trace.set_strategy st.trace Trace.Broadcast;
      Trace.set_stage st.trace "cogroup(broadcast)";
      let rbytes = rset_total_bytes r in
      charge_broadcast st rbytes;
      let all_right =
        Array.to_list r.parts |> List.concat_map Array.to_list |> Array.of_list
      in
      let index = index_rows rkey all_right in
      let outp =
        pool_map st
          (fun lpart ->
            let rows = ref [] in
            Array.iter
              (fun lrow ->
                let kv = eval_keys lrow lkey in
                let matches =
                  if List.exists V.is_null kv then []
                  else
                    match KeyTbl.find_opt index kv with
                    | Some cell -> List.rev !cell
                    | None -> []
                in
                let joined =
                  match matches, kind with
                  | [], Op.LeftOuter -> [ lrow @ Row.nulls rcols ]
                  | [], Op.Inner -> []
                  | ms, _ -> List.map (fun rrow -> lrow @ rrow) ms
                in
                match joined with
                | [] -> ()
                | _ ->
                  let items =
                    List.filter_map
                      (fun jrow ->
                        if S.eval_pred jrow presence then Some (S.eval jrow item)
                        else None)
                      joined
                  in
                  rows :=
                    (List.map (fun (n, e) -> (n, S.eval lrow e)) keys
                    @ [ (out, V.Bag items) ])
                    :: !rows)
              lpart;
            Array.of_list (List.rev !rows))
          l.parts
      in
      Memory.pin st.mem rbytes;
      Fun.protect
        ~finally:(fun () -> Memory.unpin st.mem rbytes)
        (fun () ->
          account st ~stage:"cogroup(broadcast)" ~spill:Spill_pinned
            [ part_bytes l.parts ]
            outp);
      { parts = outp; key = None; skew = None }
    end
    else
      cogroup st ~stage:"cogroup" l r ~lkey ~rkey ~kind ~rcols ~keys ~item
        ~presence ~out
  | Op.NestBag { input; keys; agg_keys; item; presence; out } ->
    let r = run st input in
    trace_rows_in st [ r ];
    let shuffle_keys = if keys = [] then agg_keys else keys in
    let r' =
      match shuffle_keys with
      | [] -> gather st r
      | sk -> ensure_partitioned st ~stage:"nest" r (List.map snd sk)
    in
    let outp =
      pool_map st
        (fun part ->
          Array.of_list
            (L.nest_bag_rows ~keys ~agg_keys ~item ~presence ~out
               (Array.to_list part)))
        r'.parts
    in
    (* external group-by: the grouping hash table is built over the
       shuffled input *)
    account st ~stage:"nest_bag"
      ~spill:(Spill_parts [ part_bytes r'.parts ])
      [ part_bytes r'.parts ] outp;
    {
      parts = outp;
      key =
        (match shuffle_keys with
        | [] -> None
        | sk -> Some (List.map (fun (n, _) -> S.Col [ n ]) sk));
      skew = None (* Figure 6: nests return a null heavy-key set *);
    }
  | Op.NestSum { input; keys; agg_keys; aggs; presence } ->
    let r = run st input in
    trace_rows_in st [ r ];
    (* map-side combine (Spark partial aggregation): pre-aggregate each
       partition before shuffling, so Gamma-plus "mitigates skew-effects by
       default by reducing the values of all keys" (Section 5) *)
    let partials =
      pool_map st
        (fun part ->
          Array.of_list
            (L.nest_sum_rows ~keys ~agg_keys ~aggs ~presence
               (Array.to_list part)))
        r.parts
    in
    account st ~stage:"nest_sum(combine)"
      ~spill:(Spill_parts [ part_bytes r.parts ])
      [ part_bytes r.parts ] partials;
    let r = { parts = partials; key = None; skew = None } in
    (* reduce side: sum the partial sums *)
    let keys' = List.map (fun (n, _) -> (n, S.Col [ n ])) keys in
    let agg_keys' = List.map (fun (n, _) -> (n, S.Col [ n ])) agg_keys in
    let aggs' = List.map (fun (n, _) -> (n, S.Col [ n ])) aggs in
    let presence' =
      match agg_keys with
      | [] -> S.Const (V.Bool true)
      | (n, _) :: _ -> S.Not (S.IsNull (S.Col [ n ]))
    in
    let shuffle_keys = if keys = [] then agg_keys' else keys' in
    let r' =
      match shuffle_keys with
      | [] -> gather st r
      | sk -> ensure_partitioned st ~stage:"nest_sum" r (List.map snd sk)
    in
    let outp =
      pool_map st
        (fun part ->
          Array.of_list
            (L.nest_sum_rows ~keys:keys' ~agg_keys:agg_keys' ~aggs:aggs'
               ~presence:presence' (Array.to_list part)))
        r'.parts
    in
    account st ~stage:"nest_sum"
      ~spill:(Spill_parts [ part_bytes r'.parts ])
      [ part_bytes r'.parts ] outp;
    {
      parts = outp;
      key =
        (match shuffle_keys with
        | [] -> None
        | sk -> Some (List.map (fun (n, _) -> S.Col [ n ]) sk));
      skew = None (* Figure 6: nests return a null heavy-key set *);
    }
  | Op.Dedup child ->
    let r = run st child in
    trace_rows_in st [ r ];
    let cols = Op.columns child in
    let key_exprs = List.map (fun c -> S.Col [ c ]) cols in
    let r' = ensure_partitioned st ~stage:"dedup" r key_exprs in
    map_parts st ~stage:"dedup"
      (fun part ->
        let values = Array.to_list part |> List.map (fun row -> V.Tuple row) in
        Array.of_list
          (List.map
             (fun v -> match v with V.Tuple row -> row | _ -> assert false)
             (V.dedup values)))
      r'
      ~key:(fun k -> k)
  | Op.UnionAll (left, right) ->
    let l = run st left in
    let r = run st right in
    trace_rows_in st [ l; r ];
    let cols = Op.columns left in
    let r_aligned =
      Array.map (Array.map (fun row -> Row.restrict cols row)) r.parts
    in
    { parts = Array.mapi (fun i p -> Array.append p r_aligned.(i)) l.parts;
      key = None;
      skew = None }
  | Op.BagToDict { input; label } ->
    let r = run st input in
    trace_rows_in st [ r ];
    if st.opts.skew_aware then begin
      (* Figure 6: repartition only light labels; heavy labels stay put;
         the resulting dictionary is a skew-triple with known heavy keys *)
      let hk =
        match r.skew with
        | Some (k, hk) when k = [ label ] -> hk
        | _ -> heavy_keys st r [ label ]
      in
      if KeyTbl.length hk = 0 then
        { (shuffle st ~stage:"bag_to_dict" r [ label ]) with
          skew = Some ([ label ], hk) }
      else begin
        Trace.set_strategy st.trace
          (Trace.Skew_split { heavy_keys = KeyTbl.length hk });
        let light, heavy = split_by_keys r [ label ] hk in
        let light' = shuffle st ~stage:"bag_to_dict(light)" light [ label ] in
        union_parts ~skew:(Some ([ label ], hk)) light' heavy
      end
    end
    else shuffle st ~stage:"bag_to_dict" r [ label ]

(* ------------------------------------------------------------------ *)
(* Entry points *)

let rset_to_dataset (cols : string list) (r : rset) : Dataset.t =
  let to_value =
    match cols with
    | [ "item" ] -> fun row -> Row.get row "item"
    | _ -> fun row -> V.Tuple (Row.restrict cols row)
  in
  let key =
    match r.key with
    | None -> None
    | Some ks ->
      let path_of = function
        | S.Col (c :: rest) -> (
          match cols with
          | [ "item" ] -> if c = "item" then Some rest else None
          | _ -> Some (c :: rest))
        | _ -> None
      in
      let paths = List.map path_of ks in
      if List.for_all Option.is_some paths then
        Some (List.map Option.get paths)
      else None
  in
  { Dataset.parts = Array.map (Array.map to_value) r.parts; key }

(* The pool is spawned once per run: callers that execute several plans
   (the Api driver, run_assignments) pass one in; a bare run_plan call
   creates a pool sized by [config.domains] and shuts it down on exit. *)
let with_run_pool ?pool ~(config : Config.t) f =
  match pool with
  | Some p -> f p
  | None -> Pool.with_pool ~domains:config.Config.domains f

(** Execute one plan against named datasets; returns the result dataset.
    The checkpoint manager is created here when not supplied, so lineage
    accrues (and recovery is charged) even under [No_checkpoints]. *)
let run_plan ?(options = default_options) ?trace ?faults ?checkpoint ?pool
    ~config ~stats (env : env) (plan : Op.t) : Dataset.t =
  let ckpt =
    match checkpoint with Some c -> c | None -> Checkpoint.make config
  in
  with_run_pool ?pool ~config (fun pool ->
      let st =
        { cfg = config; opts = options; stats; trace; faults;
          ckpt = Some ckpt; mem = Memory.create ?faults config; env; pool }
      in
      let r = run st plan in
      rset_to_dataset (Op.columns plan) r)

(** Execute a sequence of (name, plan) assignments, extending the
    environment; returns the final environment. One checkpoint manager
    spans all assignments: lineage (and therefore recovery cost) is
    run-wide, not per-assignment. *)
let run_assignments ?(options = default_options) ?trace ?faults ?checkpoint
    ?pool ~config ~stats (env : env) (plans : (string * Op.t) list) : env =
  let ckpt =
    match checkpoint with Some c -> c | None -> Checkpoint.make config
  in
  with_run_pool ?pool ~config (fun pool ->
      List.iter
        (fun (name, plan) ->
          let ds =
            Trace.with_span trace ~op:"Assignment" ~stage:name (fun () ->
                run_plan ~options ?trace ?faults ~checkpoint:ckpt ~pool
                  ~config ~stats env plan)
          in
          Hashtbl.replace env name ds)
        plans;
      env)
