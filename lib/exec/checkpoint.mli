(** Stage-boundary checkpointing for bounded recovery.

    PR 2's recovery recomputes a lost worker's partitions from lineage —
    which grows with the run, so under a fault {e storm} (repeated crashes,
    a crash during recovery of a prior crash) recompute cost is unbounded.
    This manager lets {!Executor} materialize an [rset] to simulated
    replicated stable storage at accounted stage boundaries: the write
    costs [bytes * disk_weight * replication] simulated seconds (charged to
    the stage), and it {e truncates lineage}, so subsequent recovery
    replays from the nearest checkpoint instead of from the sources.

    The executor creates one manager per run {e unconditionally} — lineage
    accrues even under {!Config.No_checkpoints}, which is what makes the
    checkpointed-vs-not [recomputed_bytes] comparison meaningful. Placement
    is the {!Config.t.checkpoint} policy: explicit ([Every k]) or automatic
    ([Auto], a break-even test under {!Config.t.fault_rate}). Everything is
    a pure function of the run's accounting, so checkpoint decisions replay
    deterministically with the seed. *)

type t
(** One run's manager: the policy plus the lineage bytes and stage count
    accrued since the last checkpoint. Create a fresh one per run. *)

type write = {
  ckpt_bytes : int;  (** bytes materialized (one replica's worth) *)
  io_seconds : float;
      (** simulated write time: [ckpt_bytes * disk_weight * replication] *)
  truncated : int;  (** lineage bytes this checkpoint made unreplayable *)
}

val make : Config.t -> t

val observe : t option -> bytes:int -> unit
(** Accrue lineage that is not stage output — shuffle movement, whose
    receipts would also have to be rebuilt when replaying from the last
    checkpoint. [None] is a no-op. *)

val on_stage : t option -> out_bytes:int -> write option
(** Account one finished compute stage with [out_bytes] of output: accrue
    it to lineage, then consult the policy. [Some w] means the executor
    must charge [w.io_seconds] to the stage and count the checkpoint;
    lineage is already truncated. Stages with no output never checkpoint.
    [None] manager is a no-op. *)

val replay_bytes : t option -> lost:int -> parts:int -> int
(** Lineage bytes a crash at the current stage forces survivors to replay
    for [lost] of [parts] partitions: everything accrued since the last
    checkpoint, apportioned to the lost share. Call {e before}
    {!on_stage} for the crashed stage, so its own (separately charged)
    output is not double-counted. *)

val taken : t -> int
(** Checkpoints written so far this run. *)
