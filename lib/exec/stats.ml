(** Execution metrics collected by the simulator; see stats.mli. The record
    is mutable internally but opaque to consumers, who read through the
    accessors or an immutable {!snapshot}. *)

type t = {
  mutable shuffled_bytes : int;
  mutable broadcast_bytes : int;
  mutable peak_worker_bytes : int;
  mutable rows_processed : int;
  mutable stages : int;
  mutable sim_seconds : float;
  mutable task_retries : int;
  mutable retried_tasks : int;
  mutable speculative_tasks : int;
  mutable recomputed_bytes : int;
  mutable spilled_bytes : int;
  mutable spill_partitions : int;
  mutable spill_rounds : int;
  mutable checkpoints_written : int;
  mutable checkpoint_bytes : int;
  mutable lineage_truncated : int;
  mutable recovery_seconds : float;
  mutable wall_seconds : float;
}

type snapshot = {
  shuffled_bytes : int;
  broadcast_bytes : int;
  peak_worker_bytes : int;
  rows_processed : int;
  stages : int;
  sim_seconds : float;
  task_retries : int;
  retried_tasks : int;
  speculative_tasks : int;
  recomputed_bytes : int;
  spilled_bytes : int;
  spill_partitions : int;
  spill_rounds : int;
  checkpoints_written : int;
  checkpoint_bytes : int;
  lineage_truncated : int;
  recovery_seconds : float;
  wall_seconds : float;
}

exception
  Worker_out_of_memory of {
    stage : string;
    worker_bytes : int;
    budget : int;
  }

exception
  Deadline_exceeded of {
    stage : string;
    sim_seconds : float;
    deadline : float;
  }

let create () : t =
  {
    shuffled_bytes = 0;
    broadcast_bytes = 0;
    peak_worker_bytes = 0;
    rows_processed = 0;
    stages = 0;
    sim_seconds = 0.;
    task_retries = 0;
    retried_tasks = 0;
    speculative_tasks = 0;
    recomputed_bytes = 0;
    spilled_bytes = 0;
    spill_partitions = 0;
    spill_rounds = 0;
    checkpoints_written = 0;
    checkpoint_bytes = 0;
    lineage_truncated = 0;
    recovery_seconds = 0.;
    wall_seconds = 0.;
  }

let shuffled_bytes (s : t) = s.shuffled_bytes
let broadcast_bytes (s : t) = s.broadcast_bytes
let peak_worker_bytes (s : t) = s.peak_worker_bytes
let rows_processed (s : t) = s.rows_processed
let stages (s : t) = s.stages
let sim_seconds (s : t) = s.sim_seconds
let task_retries (s : t) = s.task_retries
let retried_tasks (s : t) = s.retried_tasks
let speculative_tasks (s : t) = s.speculative_tasks
let recomputed_bytes (s : t) = s.recomputed_bytes
let spilled_bytes (s : t) = s.spilled_bytes
let spill_partitions (s : t) = s.spill_partitions
let spill_rounds (s : t) = s.spill_rounds
let checkpoints_written (s : t) = s.checkpoints_written
let checkpoint_bytes (s : t) = s.checkpoint_bytes
let lineage_truncated (s : t) = s.lineage_truncated
let recovery_seconds (s : t) = s.recovery_seconds
let wall_seconds (s : t) = s.wall_seconds
let add_shuffled (s : t) n = s.shuffled_bytes <- s.shuffled_bytes + n
let add_broadcast (s : t) n = s.broadcast_bytes <- s.broadcast_bytes + n
let add_rows (s : t) n = s.rows_processed <- s.rows_processed + n
let add_stage (s : t) = s.stages <- s.stages + 1
let add_sim_seconds (s : t) dt = s.sim_seconds <- s.sim_seconds +. dt
let add_task_retries (s : t) n = s.task_retries <- s.task_retries + n
let add_retried_tasks (s : t) n = s.retried_tasks <- s.retried_tasks + n

let add_speculative (s : t) n =
  s.speculative_tasks <- s.speculative_tasks + n

let add_recomputed (s : t) n = s.recomputed_bytes <- s.recomputed_bytes + n
let add_spilled (s : t) n = s.spilled_bytes <- s.spilled_bytes + n

let add_spill_partitions (s : t) n =
  s.spill_partitions <- s.spill_partitions + n

let add_spill_rounds (s : t) n = s.spill_rounds <- s.spill_rounds + n
let add_checkpoint (s : t) = s.checkpoints_written <- s.checkpoints_written + 1

let add_checkpoint_bytes (s : t) n =
  s.checkpoint_bytes <- s.checkpoint_bytes + n

let add_lineage_truncated (s : t) n =
  s.lineage_truncated <- s.lineage_truncated + n

let add_recovery_seconds (s : t) dt =
  s.recovery_seconds <- s.recovery_seconds +. dt

let add_wall_seconds (s : t) dt = s.wall_seconds <- s.wall_seconds +. dt

let observe_worker (s : t) bytes =
  s.peak_worker_bytes <- max s.peak_worker_bytes bytes

let snapshot (s : t) : snapshot =
  {
    shuffled_bytes = s.shuffled_bytes;
    broadcast_bytes = s.broadcast_bytes;
    peak_worker_bytes = s.peak_worker_bytes;
    rows_processed = s.rows_processed;
    stages = s.stages;
    sim_seconds = s.sim_seconds;
    task_retries = s.task_retries;
    retried_tasks = s.retried_tasks;
    speculative_tasks = s.speculative_tasks;
    recomputed_bytes = s.recomputed_bytes;
    spilled_bytes = s.spilled_bytes;
    spill_partitions = s.spill_partitions;
    spill_rounds = s.spill_rounds;
    checkpoints_written = s.checkpoints_written;
    checkpoint_bytes = s.checkpoint_bytes;
    lineage_truncated = s.lineage_truncated;
    recovery_seconds = s.recovery_seconds;
    wall_seconds = s.wall_seconds;
  }

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    shuffled_bytes = a.shuffled_bytes - b.shuffled_bytes;
    broadcast_bytes = a.broadcast_bytes - b.broadcast_bytes;
    peak_worker_bytes = a.peak_worker_bytes;
    rows_processed = a.rows_processed - b.rows_processed;
    stages = a.stages - b.stages;
    sim_seconds = a.sim_seconds -. b.sim_seconds;
    task_retries = a.task_retries - b.task_retries;
    retried_tasks = a.retried_tasks - b.retried_tasks;
    speculative_tasks = a.speculative_tasks - b.speculative_tasks;
    recomputed_bytes = a.recomputed_bytes - b.recomputed_bytes;
    spilled_bytes = a.spilled_bytes - b.spilled_bytes;
    spill_partitions = a.spill_partitions - b.spill_partitions;
    spill_rounds = a.spill_rounds - b.spill_rounds;
    checkpoints_written = a.checkpoints_written - b.checkpoints_written;
    checkpoint_bytes = a.checkpoint_bytes - b.checkpoint_bytes;
    lineage_truncated = a.lineage_truncated - b.lineage_truncated;
    recovery_seconds = a.recovery_seconds -. b.recovery_seconds;
    wall_seconds = a.wall_seconds -. b.wall_seconds;
  }

let merge (a : snapshot) (b : snapshot) : snapshot =
  {
    shuffled_bytes = a.shuffled_bytes + b.shuffled_bytes;
    broadcast_bytes = a.broadcast_bytes + b.broadcast_bytes;
    peak_worker_bytes = max a.peak_worker_bytes b.peak_worker_bytes;
    rows_processed = a.rows_processed + b.rows_processed;
    stages = a.stages + b.stages;
    sim_seconds = a.sim_seconds +. b.sim_seconds;
    task_retries = a.task_retries + b.task_retries;
    retried_tasks = a.retried_tasks + b.retried_tasks;
    speculative_tasks = a.speculative_tasks + b.speculative_tasks;
    recomputed_bytes = a.recomputed_bytes + b.recomputed_bytes;
    spilled_bytes = a.spilled_bytes + b.spilled_bytes;
    spill_partitions = a.spill_partitions + b.spill_partitions;
    spill_rounds = a.spill_rounds + b.spill_rounds;
    checkpoints_written = a.checkpoints_written + b.checkpoints_written;
    checkpoint_bytes = a.checkpoint_bytes + b.checkpoint_bytes;
    lineage_truncated = a.lineage_truncated + b.lineage_truncated;
    recovery_seconds = a.recovery_seconds +. b.recovery_seconds;
    wall_seconds = a.wall_seconds +. b.wall_seconds;
  }

let zero : snapshot =
  {
    shuffled_bytes = 0;
    broadcast_bytes = 0;
    peak_worker_bytes = 0;
    rows_processed = 0;
    stages = 0;
    sim_seconds = 0.;
    task_retries = 0;
    retried_tasks = 0;
    speculative_tasks = 0;
    recomputed_bytes = 0;
    spilled_bytes = 0;
    spill_partitions = 0;
    spill_rounds = 0;
    checkpoints_written = 0;
    checkpoint_bytes = 0;
    lineage_truncated = 0;
    recovery_seconds = 0.;
    wall_seconds = 0.;
  }

(* Equivalence campaigns compare parallel against sequential snapshots:
   everything must match bit-for-bit except the one quantity that is
   *supposed* to change with the domain count. *)
let strip_wall (s : snapshot) : snapshot = { s with wall_seconds = 0. }

let pp_snapshot ppf (s : snapshot) =
  Fmt.pf ppf
    "shuffle=%.1fMB broadcast=%.1fMB peak_worker=%.1fMB rows=%d stages=%d \
     sim=%.2fs"
    (float_of_int s.shuffled_bytes /. 1048576.)
    (float_of_int s.broadcast_bytes /. 1048576.)
    (float_of_int s.peak_worker_bytes /. 1048576.)
    s.rows_processed s.stages s.sim_seconds;
  if s.task_retries > 0 || s.speculative_tasks > 0 || s.recomputed_bytes > 0
  then
    Fmt.pf ppf " retries=%d retried=%d spec=%d recomp=%.1fKB" s.task_retries
      s.retried_tasks s.speculative_tasks
      (float_of_int s.recomputed_bytes /. 1024.);
  if s.spilled_bytes > 0 || s.spill_rounds > 0 then
    Fmt.pf ppf " spilled=%.1fKB spill_parts=%d spill_rounds=%d"
      (float_of_int s.spilled_bytes /. 1024.)
      s.spill_partitions s.spill_rounds;
  if s.checkpoints_written > 0 || s.recovery_seconds > 0. then
    Fmt.pf ppf " ckpts=%d ckptKB=%.1f trunc=%.1fKB recovery=%.2fs"
      s.checkpoints_written
      (float_of_int s.checkpoint_bytes /. 1024.)
      (float_of_int s.lineage_truncated /. 1024.)
      s.recovery_seconds;
  if s.wall_seconds > 0. then Fmt.pf ppf " wall=%.3fs" s.wall_seconds

let pp ppf (s : t) = pp_snapshot ppf (snapshot s)
