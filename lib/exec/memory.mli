(** Per-worker memory manager: arbitrates each stage's byte budget and
    decides between running in memory, spilling the stage's build side to
    simulated disk, or denying the reservation (typed OOM).

    Reservation protocol. Before materialising a stage, the executor asks
    {!reserve} with two per-worker byte vectors: [worker], the full
    residency the stage needs on each worker (inputs + outputs + any
    {!pin}ned broadcast replicas), and [spillable], the portion of that
    residency the operator can stage through disk — its "build side" (hash
    table for joins and group-bys, the broadcast replica for broadcast
    joins, everything for streaming operators and shuffle receipts). The
    manager answers per stage:

    - [Fit]: every worker fits the (possibly {!Faults.Mem_squeeze}d)
      budget; nothing to charge.
    - [Spill] (only under {!Config.t.spill} [= On]): each over-budget
      worker partitions its build side into [k] grace-hash partitions
      sized to the headroom left by its unspillable residue (falling back
      to full external streaming when even the residue is over budget) and
      runs [k] build passes. The decision carries the bytes written, the
      partition count, the worst per-worker round count, the post-spill
      peak residency, and the disk time (write + read back at
      {!Config.t.disk_weight}, slowest worker wins); the executor charges
      all of it to {!Stats} and the innermost {!Trace} span.
    - [Denied]: over budget with spilling off, or a spill that would need
      more than {!Config.t.max_spill_rounds} passes. The executor raises
      {!Stats.Worker_out_of_memory}, which the driver may answer by
      re-planning down the shredded route ({!Trance.Api}).

    Spilling is cost-model only: operator results are byte-identical to
    the in-memory path, so answers never change — only the simulated clock
    and the spill counters do. *)

type t

(** Answer to one stage's reservation. *)
type decision =
  | Fit of { peak : int }  (** fits; [peak] = max per-worker residency *)
  | Spill of {
      spilled_bytes : int;  (** written to disk across all workers *)
      spill_partitions : int;  (** grace-hash partitions created *)
      rounds : int;  (** worst per-worker build-pass count *)
      peak : int;  (** post-spill peak residency (≤ budget) *)
      io_seconds : float;  (** simulated disk time (slowest worker) *)
    }
  | Denied of { worker_bytes : int; budget : int }
      (** the typed-OOM verdict: offending residency and the budget it
          exceeded *)

val create : ?faults:Faults.t -> Config.t -> t
(** One manager per plan run; consults the fault injector on every
    {!reserve} so a mid-run [Mem_squeeze] shrinks later stages' budgets. *)

val pin : t -> int -> unit
(** Declare broadcast bytes resident on {e every} worker until {!unpin};
    they count toward each subsequent reservation. *)

val unpin : t -> int -> unit

val pinned : t -> int
(** Currently pinned broadcast bytes. *)

val budget : t -> int
(** The current per-worker budget ({!Config.t.worker_mem} after any active
    squeeze). *)

val reserve : t -> worker:int array -> spillable:int array -> decision
(** [reserve t ~worker ~spillable]: decide one stage. [worker.(w)] is the
    full residency worker [w] needs; [spillable.(w)] (≤ [worker.(w)]) is
    what the operator can stage through disk. *)
