(** Execution metrics collected by the simulator: shuffled and broadcast
    bytes, peak per-worker residency, and a simulated wall-clock built from
    per-stage maxima over partitions (which is where skew and load
    imbalance appear).

    The counter set is mutable but opaque: the executor feeds it through the
    [add_*]/[observe_*] entry points, and consumers read it through the
    accessors or grab an immutable {!snapshot}. Per-step slices are computed
    with {!snapshot} + {!diff} instead of threading deltas by hand. *)

type t
(** Mutable counter set, one per run. *)

(** Immutable copy of the counters at one instant. *)
type snapshot = {
  shuffled_bytes : int;
  broadcast_bytes : int;
  peak_worker_bytes : int;
  rows_processed : int;
  stages : int;  (** shuffle boundaries *)
  sim_seconds : float;
  task_retries : int;  (** extra task attempts beyond the first *)
  retried_tasks : int;  (** distinct tasks that needed more than one attempt *)
  speculative_tasks : int;  (** speculative duplicates launched *)
  recomputed_bytes : int;  (** bytes recomputed or re-fetched during recovery *)
  spilled_bytes : int;  (** bytes written to simulated disk by spilling stages *)
  spill_partitions : int;  (** on-disk build partitions created while spilling *)
  spill_rounds : int;  (** extra build passes executed by spilling stages *)
  checkpoints_written : int;  (** stage outputs materialized to stable storage *)
  checkpoint_bytes : int;  (** bytes materialized (one replica's worth) *)
  lineage_truncated : int;  (** lineage bytes checkpoints made unreplayable *)
  recovery_seconds : float;
      (** simulated seconds spent paying for fault recovery: retries,
          speculation, lineage replay — a slice of [sim_seconds] *)
  wall_seconds : float;
      (** real elapsed seconds of the run, measured by the driver. Unlike
          every other counter, this one is {e not} deterministic and it
          {e does} change with {!Config.t.domains}; equivalence campaigns
          compare snapshots through {!strip_wall} *)
}

exception
  Worker_out_of_memory of {
    stage : string;  (** "Step2/unnest"-style location *)
    worker_bytes : int;
    budget : int;
  }
(** A worker exceeded its memory budget: the paper's FAIL entries. Callers
    that must not fail hard catch this ({!Trance.Api.run} reports it as a
    failed run). *)

exception
  Deadline_exceeded of {
    stage : string;  (** the stage boundary where the breach was detected *)
    sim_seconds : float;  (** simulated seconds elapsed at that point *)
    deadline : float;  (** the configured {!Config.t.deadline} *)
  }
(** The run blew its simulated-seconds budget — typically while paying for
    recovery under a fault storm. Raised at stage boundaries so a run can
    never silently hang in a recompute loop; {!Trance.Api.run} reports it
    as a typed failed run naming the deadline. *)

val create : unit -> t

(** {2 Accessors} *)

val shuffled_bytes : t -> int
val broadcast_bytes : t -> int
val peak_worker_bytes : t -> int
val rows_processed : t -> int
val stages : t -> int
val sim_seconds : t -> float
val task_retries : t -> int
val retried_tasks : t -> int
val speculative_tasks : t -> int
val recomputed_bytes : t -> int
val spilled_bytes : t -> int
val spill_partitions : t -> int
val spill_rounds : t -> int
val checkpoints_written : t -> int
val checkpoint_bytes : t -> int
val lineage_truncated : t -> int
val recovery_seconds : t -> float
val wall_seconds : t -> float

(** {2 Recording (executor side)} *)

val add_shuffled : t -> int -> unit
val add_broadcast : t -> int -> unit
val add_rows : t -> int -> unit
val add_stage : t -> unit
val add_sim_seconds : t -> float -> unit
val add_task_retries : t -> int -> unit
val add_retried_tasks : t -> int -> unit
val add_speculative : t -> int -> unit
val add_recomputed : t -> int -> unit
val add_spilled : t -> int -> unit
val add_spill_partitions : t -> int -> unit
val add_spill_rounds : t -> int -> unit
val add_checkpoint : t -> unit
val add_checkpoint_bytes : t -> int -> unit
val add_lineage_truncated : t -> int -> unit
val add_recovery_seconds : t -> float -> unit

val add_wall_seconds : t -> float -> unit
(** Charged once per run by the driver ({!Trance.Api.run}) from a real
    clock — never by the executor, whose accounting must stay a pure
    function of the plan and the configuration. *)

val observe_worker : t -> int -> unit
(** Raise the peak per-worker residency high-water mark. *)

(** {2 Snapshots} *)

val snapshot : t -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff after before]: additive counters subtract; [peak_worker_bytes]
    keeps [after]'s value (the peak is a run-wide high-water mark, so a
    slice reports the peak reached by the end of its step). *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum; [peak_worker_bytes] merges by [max]. Replaces the old
    [Stats.add] for aggregating slices back into totals. *)

val zero : snapshot

val strip_wall : snapshot -> snapshot
(** The snapshot with [wall_seconds] zeroed: the deterministic part, which
    must be bit-identical across {!Config.t.domains} settings. *)

val pp : Format.formatter -> t -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit
