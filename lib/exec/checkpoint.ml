(** Stage-boundary checkpointing; see checkpoint.mli. *)

type t = {
  cfg : Config.t;
  mutable since_bytes : int;
  mutable since_stages : int;
  mutable taken : int;
}

type write = {
  ckpt_bytes : int;
  io_seconds : float;
  truncated : int;
}

let make (cfg : Config.t) = { cfg; since_bytes = 0; since_stages = 0; taken = 0 }

let observe (ot : t option) ~bytes =
  match ot with
  | None -> ()
  | Some t -> t.since_bytes <- t.since_bytes + max 0 bytes

let write_cost (cfg : Config.t) out_bytes =
  float_of_int out_bytes
  *. cfg.Config.disk_weight
  *. float_of_int (max 1 cfg.Config.checkpoint_replication)

(* Break-even test for Auto placement: checkpoint when the expected
   recompute cost of the lineage accumulated since the last checkpoint —
   [fault_rate] faults per stage, each replaying the accumulated lineage at
   cpu speed — has caught up with the one-off cost of writing this stage's
   output to replicated storage. The test uses the same run-wide
   lineage-bytes quantity that recovery replays, so the policy and the
   recovery charge can never disagree about what a checkpoint saves. *)
let should_write t ~out_bytes =
  match t.cfg.Config.checkpoint with
  | Config.No_checkpoints -> false
  | Config.Every k -> t.since_stages >= k
  | Config.Auto ->
    let expected_recompute =
      t.cfg.Config.fault_rate
      *. float_of_int t.since_bytes
      *. t.cfg.Config.cpu_weight
    in
    expected_recompute >= write_cost t.cfg out_bytes

let on_stage (ot : t option) ~out_bytes : write option =
  match ot with
  | None -> None
  | Some t ->
    t.since_stages <- t.since_stages + 1;
    t.since_bytes <- t.since_bytes + max 0 out_bytes;
    if out_bytes > 0 && should_write t ~out_bytes then begin
      let truncated = t.since_bytes in
      t.since_bytes <- 0;
      t.since_stages <- 0;
      t.taken <- t.taken + 1;
      Some
        { ckpt_bytes = out_bytes;
          io_seconds = write_cost t.cfg out_bytes;
          truncated }
    end
    else None

(* The lineage a crash at the *current* stage forces the survivors to
   replay for [lost] of [parts] partitions: everything accrued since the
   last checkpoint (the whole run when there is none), apportioned to the
   lost share of the key space. The executor calls this before
   [on_stage], so the crashed stage's own output — recomputed anyway and
   charged separately — is not double-counted here. *)
let replay_bytes (ot : t option) ~lost ~parts =
  match ot with
  | None -> 0
  | Some t -> t.since_bytes * max 0 lost / max 1 parts

let taken t = t.taken
