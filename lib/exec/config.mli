(** Cluster-simulator configuration.

    The paper's testbed is a 5-worker Spark cluster (25 executors, 1000
    shuffle partitions, 64 GB per executor, 10 MB auto-broadcast, 2.5%
    heavy-key sampling threshold; Sections 5-6). The simulator preserves
    the ratios at laptop scale; [worker_mem] is the lever that turns memory
    saturation into {!Stats.Worker_out_of_memory} — the paper's FAIL bars. *)

type spill =
  | Off  (** deny over-budget reservations: the paper's FAIL bars *)
  | On  (** stage the build side through simulated disk and finish slowly *)

(** Stage-boundary checkpoint placement (see {!Checkpoint}). *)
type checkpoint =
  | No_checkpoints  (** recovery always replays the full lineage *)
  | Every of int
      (** materialize the live [rset] to replicated stable storage every K
          accounted compute stages *)
  | Auto
      (** checkpoint only where the expected recompute cost under
          [fault_rate] exceeds the write cost (a Young–Daly-style
          break-even test per stage boundary) *)

type t = {
  workers : int;  (** worker nodes; partitions assigned round-robin *)
  partitions : int;  (** shuffle partitions *)
  worker_mem : int;  (** byte budget per worker per stage *)
  broadcast_limit : int;  (** auto-broadcast threshold (Spark: 10 MB) *)
  sample_per_partition : int;  (** tuples sampled per partition for skew *)
  heavy_threshold : float;  (** fraction of a partition's sample (2.5%) *)
  cpu_weight : float;  (** simulated seconds per processed byte *)
  net_weight : float;  (** simulated seconds per byte received by a node *)
  seed : int;  (** also seeds the {!Faults} injector *)
  max_task_attempts : int;
      (** attempt budget per task before the run fails typed
          ({!Faults.Task_abandoned}); Spark's [spark.task.maxFailures] = 4 *)
  speculation : bool;
      (** launch a speculative duplicate for an injected straggler; the
          first copy to finish wins (Spark's [spark.speculation]) *)
  spill : spill;
      (** what the {!Memory} manager does when a stage's residency exceeds
          [worker_mem] (after any {!Faults.Mem_squeeze}) *)
  max_spill_rounds : int;
      (** most build passes a spilling stage may take before the manager
          denies the reservation and the stage fails typed OOM *)
  disk_weight : float;
      (** simulated seconds per byte written to or read back from disk *)
  checkpoint : checkpoint;
      (** when the executor materializes stage output to simulated
          replicated stable storage, truncating recovery lineage *)
  checkpoint_replication : int;
      (** copies written per checkpoint; the write cost is
          [bytes * disk_weight * replication] (HDFS default: 3) *)
  fault_rate : float;
      (** expected faults per accounted stage; drives [Auto] checkpoint
          placement and the {!Cost} interval recommendation *)
  deadline : float option;
      (** simulated-seconds budget for a whole run: a run that exceeds it
          (typically while paying for recovery) fails typed
          ({!Stats.Deadline_exceeded}) instead of recomputing unboundedly *)
  domains : int;
      (** OCaml domains the {!Pool} runs partition tasks on (including the
          calling one); 1 = today's sequential path. Parallel runs are
          bit-identical to sequential ones in everything but wall-clock
          time, so this is purely a speed knob. *)
}

val spill_of_string : string -> (spill, string) result
val spill_name : spill -> string

val checkpoint_of_string : string -> (checkpoint, string) result
(** CLI syntax: [off] (or [none]/[no]), [every=K] with K >= 1, [auto]. *)

val checkpoint_name : checkpoint -> string
(** Canonical round-trippable form of {!checkpoint_of_string}. *)

val default : t
(** Honours the CI matrix hooks [TRANCE_WORKER_MEM] (MB, or ["unbounded"]),
    [TRANCE_SPILL] (on|off), [TRANCE_CHECKPOINT] (off|every=K|auto) and
    [TRANCE_DOMAINS] (domain count >= 1) so the whole suite can run under
    a swept budget — or on many cores — without code changes. *)

val unbounded : t
(** [default] with no memory budget: for semantics-only tests. *)

val worker_of_partition : t -> int -> int
