(** Deterministic fault injection for the cluster simulator.

    The simulator imitates a Spark substrate, and Spark substrates
    misbehave: executors die, tasks fail, shuffle fetches time out,
    stragglers stall stages, memory budgets shrink under co-tenancy. This
    module turns those misbehaviours into a {e seed-driven schedule of
    injectable events} that {!Executor} consults once per accounted stage,
    and {!Executor} answers with Spark's recovery semantics (bounded
    per-task retry, lineage re-execution of a lost worker's partitions —
    truncated at the nearest {!Checkpoint} — speculative duplicates with
    first-wins dedup).

    A {!schedule} holds any number of specs, so a run can face a {e fault
    storm}: repeated crashes, a crash firing while the recovery of an
    earlier crash is still being paid for, or mixed
    crash+fetch+squeeze sequences. Everything stays deterministic: the
    victim partition / worker is a pure hash of [(seed, stage index, spec
    index)], so the same seed yields the same span tree, the same attempt
    counts and the same recomputed bytes — which is what lets the
    differential test suite assert recovery behaviour exactly. *)

(** The injectable misbehaviours. *)
type kind =
  | Worker_crash
      (** a worker dies at the stage: its resident partitions are lost and
          re-executed from lineage on the survivors *)
  | Task_failure
      (** one partition task fails [fails] consecutive times before
          (possibly) succeeding; Spark's per-task retry with a bounded
          attempt budget ({!Config.t.max_task_attempts}) *)
  | Fetch_failure
      (** a transient shuffle-fetch failure: one destination partition must
          re-fetch its inputs [fails] times *)
  | Straggler
      (** one task runs [multiplier] times slower; with
          {!Config.t.speculation} a duplicate launches and the first copy
          to finish wins *)
  | Mem_squeeze
      (** from the stage onward every worker's memory budget is multiplied
          by [factor]; with {!Config.t.spill} [= On] the squeezed stages
          spill to disk and finish slowly, with [Off] they fail typed — the
          paper's FAIL outcomes *)

type spec = {
  kind : kind;
  stage : int;  (** 0-based accounted-stage index at which the fault fires *)
  fails : int;  (** consecutive failures for task / fetch faults *)
  multiplier : float;  (** straggler slowdown *)
  factor : float;  (** memory-budget squeeze factor *)
}

type schedule = spec list
(** The faults one run will face, in declaration order. [[]] is a clean
    run. Specs fire independently (at most one per accounted stage, in
    declaration order among the eligible); two active {!Mem_squeeze} specs
    compound multiplicatively. *)

val default_spec : kind -> spec
(** [stage = 0], [fails = 1], [multiplier = 8.], [factor = 0.5]. *)

val spec_of_string : string -> (spec, string) result
(** Parse CLI syntax: [crash:stage=2], [task:stage=1,fails=2],
    [fetch:stage=3], [straggler:stage=1,mult=8],
    [memsqueeze:stage=0,factor=0.25]. Parameters may be omitted
    ([default_spec] fills them) and combined freely. *)

val spec_to_string : spec -> string
(** Canonical round-trippable form of {!spec_of_string}. *)

val schedule_of_string : string -> (schedule, string) result
(** ['+']-separated specs: ["crash:stage=2+task:stage=4,fails=2"]. Rejects
    the empty string — an absent schedule is [[]], not [""]. *)

val schedule_to_string : schedule -> string
(** Canonical round-trippable form of {!schedule_of_string}. *)

val storm :
  ?seed:int ->
  ?kinds:kind list ->
  ?first_stage:int ->
  ?span:int ->
  int ->
  schedule
(** [storm n] generates a deterministic [n]-fault schedule: kinds cycled
    from [kinds] (default: crashes only), stages hashed from [seed] into
    [\[first_stage; first_stage + span)], sorted chronologically. The same
    arguments always yield the same storm. *)

(** {2 Runtime injector} *)

type t
(** One run's injector: the schedule plus a stage counter and per-spec
    fired / squeeze state. Create a fresh one per run. *)

val make : ?seed:int -> schedule -> t

val schedule : t -> schedule

(** Where a stage is accounted: fetch failures only make sense where data
    is fetched. *)
type site = Compute | Shuffle_fetch

(** What the injector decided for one stage. *)
type event =
  | Fail_task of { partition : int; fails : int }
  | Lose_worker of { worker : int }
  | Fail_fetch of { partition : int; fails : int }
  | Straggle of { partition : int; multiplier : float }

exception
  Task_abandoned of {
    stage : string;
    partition : int;
    attempts : int;
  }
(** A task exhausted its attempt budget: the typed unrecoverable outcome
    (reported by {!Trance.Api} as [Task_failed], never a wrong answer).
    Raised by the executor, not by this module. *)

val on_stage :
  t option -> site:site -> partitions:int -> workers:int -> event option
(** Advance the stage counter and return the event injected at this stage,
    if any. Each spec fires exactly once, at the first {e eligible} stage
    whose index reaches [spec.stage] (a fetch failure waits for a shuffle;
    the others wait for a compute stage); at most one spec fires per stage,
    so a two-crash storm pays for the second crash while the first one's
    recovery is still in the books. [None] injector is a no-op returning
    [None]. *)

val effective_mem : t option -> int -> int
(** The worker memory budget after the active {!Mem_squeeze} specs
    (identity before any squeeze stage and for every other fault kind);
    concurrent squeezes compound multiplicatively. Safe for budgets near
    [max_int] ({!Config.unbounded}): the result is always in
    [\[1; budget\]], never a float-overflow artefact. *)
