(** Per-worker memory manager; see memory.mli for the reservation
    protocol. The manager is pure decision logic plus a pin ledger: the
    executor owns the charging of whatever the decision says to Stats and
    Trace, which keeps the two views trivially consistent. *)

type t = {
  cfg : Config.t;
  faults : Faults.t option;
  mutable pinned : int; (* broadcast bytes resident on every worker *)
}

type decision =
  | Fit of { peak : int }
  | Spill of {
      spilled_bytes : int;
      spill_partitions : int;
      rounds : int;
      peak : int;
      io_seconds : float;
    }
  | Denied of { worker_bytes : int; budget : int }

let create ?faults cfg = { cfg; faults; pinned = 0 }
let pin t bytes = t.pinned <- t.pinned + bytes
let unpin t bytes = t.pinned <- max 0 (t.pinned - bytes)
let pinned t = t.pinned

(* Read the budget per reservation, not at creation: an active Mem_squeeze
   shrinks it mid-run, which is exactly what turns later stages into
   spilling stages. *)
let budget t = Faults.effective_mem t.faults t.cfg.Config.worker_mem

let cdiv a b = (a + b - 1) / b

(* One over-budget worker. First try an external build: stage only the
   declared build side through disk in [k] grace-hash partitions sized to
   the headroom left by the resident (unspillable) set. When that can't
   fit within [max_spill_rounds] passes — the resident set exceeds the
   budget, or leaves so little headroom that the round count explodes —
   degrade to full external mode and stream everything. Returns [None]
   only when even full external mode needs too many passes. *)
let spill_worker cfg ~budget ~total ~spillable =
  let attempt spill_set resident =
    let headroom = budget - resident in
    if headroom <= 0 then None
    else
      let k = cdiv spill_set headroom in
      if k > cfg.Config.max_spill_rounds then None
      else
        (* post-spill residency: resident set plus one build partition *)
        Some (spill_set, k, resident + cdiv spill_set k)
  in
  let resident0 = total - spillable in
  let partial =
    if spillable > 0 && resident0 < budget then attempt spillable resident0
    else None
  in
  match partial with Some _ -> partial | None -> attempt total 0

let reserve t ~(worker : int array) ~(spillable : int array) =
  let budget = budget t in
  let peak_req = Array.fold_left max 0 worker in
  if peak_req <= budget then Fit { peak = peak_req }
  else
    match t.cfg.Config.spill with
    | Config.Off -> Denied { worker_bytes = peak_req; budget }
    | Config.On ->
      let bytes = ref 0 and parts = ref 0 and rounds = ref 0 in
      let peak = ref 0 and io = ref 0. in
      let denied = ref None in
      Array.iteri
        (fun w total ->
          let sp = if w < Array.length spillable then spillable.(w) else 0 in
          if total <= budget then peak := max !peak total
          else
            match spill_worker t.cfg ~budget ~total ~spillable:sp with
            | None -> denied := Some total
            | Some (spill_set, k, post_peak) ->
              bytes := !bytes + spill_set;
              parts := !parts + k;
              rounds := max !rounds k;
              peak := max !peak post_peak;
              (* write once, read back once; workers spill in parallel so
                 the stage pays the slowest worker's disk time *)
              io :=
                Float.max !io
                  (2. *. float_of_int spill_set *. t.cfg.Config.disk_weight))
        worker;
      (match !denied with
      | Some worker_bytes -> Denied { worker_bytes; budget }
      | None ->
        Spill
          {
            spilled_bytes = !bytes;
            spill_partitions = !parts;
            rounds = !rounds;
            peak = !peak;
            io_seconds = !io;
          })
