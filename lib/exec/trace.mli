(** Per-operator execution tracing: a span tree per plan run.

    Every operator the executor dispatches opens a {!span}; accounting
    (shuffled and broadcast bytes, rows, per-partition load, per-worker
    residency, simulated seconds) is charged to the innermost open span, so
    the tree answers the questions the flat {!Stats.t} totals cannot: which
    join shuffled the bytes, where a worker saturated, and which strategy
    (broadcast, shuffle, guarantee-skipped, skew-split) each join picked —
    the per-stage attribution the paper uses to explain its Section 5–6
    results.

    Shuffles appear as their own child spans ([op = "Shuffle"]), so a
    broadcast join carries zero shuffled bytes of its own and a
    guarantee-skipped join has no shuffle child at all.

    Tracing is opt-in: every recording entry point takes a [ctx option] and
    is a no-op on [None], keeping the untraced path allocation-free. *)

(** How a join (or cogroup) moved its inputs. *)
type join_strategy =
  | Broadcast  (** right side replicated to every worker *)
  | Shuffle  (** both sides hash-partitioned on the join key *)
  | Guarantee_skipped
      (** both sides already carried the needed partitioning guarantee: no
          data moved (Section 4's label guarantee at work) *)
  | Skew_split of { heavy_keys : int }
      (** Figure 6: light keys shuffled, heavy keys kept in place with
          broadcast partners; [heavy_keys] is the detected heavy-key count *)

val strategy_name : join_strategy -> string

(** Metrics charged directly to one span (exclusive of children). Partition
    load is tracked as (max, sum, count) over the per-partition output bytes
    of the span's stages, which makes skew visible as [max_partition_bytes]
    far above the mean. *)
type metrics = {
  shuffled_bytes : int;
  broadcast_bytes : int;
  rows_in : int;
  rows_out : int;
  stages : int;  (** shuffle boundaries crossed *)
  max_partition_bytes : int;
  sum_partition_bytes : int;
  partitions : int;  (** partitions observed (for the mean) *)
  peak_worker_bytes : int;
  sim_seconds : float;
  task_retries : int;  (** extra task attempts beyond the first *)
  retried_tasks : int;  (** distinct tasks that needed more than one attempt *)
  speculative_tasks : int;  (** speculative duplicates launched *)
  recomputed_bytes : int;  (** bytes recomputed or re-fetched in recovery *)
  spilled_bytes : int;  (** bytes written to simulated disk while spilling *)
  spill_partitions : int;  (** on-disk build partitions created *)
  spill_rounds : int;  (** extra build passes executed by spilling stages *)
  checkpoints_written : int;  (** stage outputs materialized to stable storage *)
  checkpoint_bytes : int;  (** bytes materialized (one replica's worth) *)
  lineage_truncated : int;  (** lineage bytes checkpoints made unreplayable *)
  recovery_seconds : float;  (** simulated seconds spent paying for recovery *)
  wall_seconds : float;
      (** real elapsed seconds, charged by the driver to assignment spans;
          the one non-deterministic quantity — see {!without_wall} *)
}

val zero_metrics : metrics

val merge_metrics : metrics -> metrics -> metrics
(** Pointwise sum; [max_partition_bytes] and [peak_worker_bytes] merge by
    [max]. *)

val mean_partition_bytes : metrics -> float

val load_imbalance : metrics -> float
(** [max_partition_bytes /. mean_partition_bytes]; [1.0] when no partitions
    were observed. The paper's load-imbalance factor. *)

type span = {
  id : int;  (** unique within one [ctx], in open order *)
  op : string;  (** operator name ({!Plan.Op.name}) or synthetic label *)
  stage : string;  (** executor stage detail, e.g. ["join(broadcast)"] *)
  strategy : join_strategy option;  (** join spans only *)
  metrics : metrics;  (** exclusive of children *)
  children : span list;  (** in execution order *)
}

val total : span -> metrics
(** Inclusive metrics: [metrics] merged with every descendant's. *)

val agg : span list -> metrics
(** [merge_metrics] over the inclusive totals of a span forest. *)

val find_all : (span -> bool) -> span list -> span list
(** All spans (depth-first) in a forest satisfying the predicate. *)

(** {2 Recording} *)

type ctx

val create : unit -> ctx

val roots : ctx -> span list
(** Completed top-level spans, in completion order. *)

val last_root : ctx -> span option

val with_span : ctx option -> op:string -> ?stage:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a fresh child span of the innermost open span. The
    span is closed (and kept) even if the thunk raises, so traces survive
    mid-run memory failures. On [None] this is just [f ()]. *)

val set_stage : ctx option -> string -> unit
(** Set the innermost open span's stage label. The first write wins, so a
    skew-split join's light/heavy sub-stages don't overwrite the join's own
    label. *)

val set_strategy : ctx option -> join_strategy -> unit
(** Record the innermost open span's join strategy. The first write wins:
    a skew-split join's light/heavy sub-joins do not overwrite it. *)

val add :
  ctx option ->
  ?shuffled:int ->
  ?broadcast:int ->
  ?rows_in:int ->
  ?rows_out:int ->
  ?stages:int ->
  ?sim_seconds:float ->
  ?retries:int ->
  ?retried:int ->
  ?speculative:int ->
  ?recomputed:int ->
  ?spilled:int ->
  ?spill_partitions:int ->
  ?spill_rounds:int ->
  ?checkpoints:int ->
  ?checkpoint_bytes:int ->
  ?lineage_truncated:int ->
  ?recovery_seconds:float ->
  ?wall_seconds:float ->
  unit ->
  unit
(** Charge counters to the innermost open span. *)

val observe_partitions : ctx option -> int array -> unit
(** Record one stage's per-partition output bytes (feeds max/sum/count). *)

val observe_worker : ctx option -> int -> unit
(** Record a per-worker residency high-water mark. *)

val group : op:string -> stage:string -> span list -> span
(** Synthetic parent span (zero own metrics) over existing spans — used by
    {!Trance.Api} to group one step's assignment spans. *)

val without_wall : span -> span
(** The span tree with every [wall_seconds] zeroed: the deterministic
    part, which must be bit-identical across {!Config.t.domains}
    settings (wall-clock is real time and varies run to run). *)

(** {2 Rendering} *)

val pp_metrics : Format.formatter -> metrics -> unit

val pp_tree : Format.formatter -> span -> unit
(** Indented per-operator tree with inclusive metrics per line. *)

val buffer_json : Buffer.t -> span -> unit

val to_json : span -> string
(** Span tree as a JSON object: [{"id", "op", "stage", "strategy",
    "metrics" (exclusive), "total" (inclusive), "children"}]. *)

val spans_json : span list -> string
(** JSON array of {!to_json} objects. *)
