(** A reusable domain pool for partition-wise execution; see pool.mli.

    One pool is spawned per run and reused by every stage, so the domain
    spawn cost is paid once, not per operator. The implementation is a
    plain shared work queue: a job is an [int -> unit] body over task
    indices [0..limit-1]; indices are claimed with a single atomic
    fetch-and-add, every lane (the spawned domains plus the calling
    domain) drains the queue, and the caller waits on a condition until
    all worker lanes have retired from the current epoch.

    Determinism does not depend on which lane runs which index: tasks
    must not touch shared mutable state, results land in per-index slots,
    and deltas are folded in task-index order after the barrier — so any
    interleaving produces bit-identical outputs. *)

type t = {
  size : int; (* lanes, including the calling domain *)
  mutable workers : unit Domain.t array; (* size - 1 spawned domains *)
  m : Mutex.t;
  work : Condition.t; (* a new epoch was posted, or stop *)
  idle : Condition.t; (* the last worker retired from the epoch *)
  next : int Atomic.t; (* next unclaimed task index *)
  mutable job : int -> unit; (* never raises: bodies capture exceptions *)
  mutable limit : int;
  mutable epoch : int;
  mutable active : int; (* workers still draining the current epoch *)
  mutable stop : bool;
}

let size t = t.size

let no_job (_ : int) = ()

(* claim-and-run until the queue is empty; shared by workers and caller *)
let drain t job limit =
  let rec go () =
    let i = Atomic.fetch_and_add t.next 1 in
    if i < limit then begin
      job i;
      go ()
    end
  in
  go ()

let rec worker_loop t seen =
  Mutex.lock t.m;
  while (not t.stop) && t.epoch = seen do
    Condition.wait t.work t.m
  done;
  if t.stop then Mutex.unlock t.m
  else begin
    let epoch = t.epoch in
    let job = t.job and limit = t.limit in
    Mutex.unlock t.m;
    drain t job limit;
    Mutex.lock t.m;
    t.active <- t.active - 1;
    if t.active = 0 then Condition.signal t.idle;
    Mutex.unlock t.m;
    worker_loop t epoch
  end

let create ~domains =
  let size = max 1 domains in
  let t =
    {
      size;
      workers = [||];
      m = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      next = Atomic.make 0;
      job = no_job;
      limit = 0;
      epoch = 0;
      active = 0;
      stop = false;
    }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let shutdown t =
  Mutex.lock t.m;
  let already = t.stop in
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  if not already then Array.iter Domain.join t.workers

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Post [body] over [0..limit-1], participate, and wait for the barrier.
   [body] must not raise (map wrappers capture exceptions per index). *)
let run_job t limit body =
  if t.size = 1 || limit <= 1 then
    for i = 0 to limit - 1 do
      body i
    done
  else begin
    Mutex.lock t.m;
    t.job <- body;
    t.limit <- limit;
    Atomic.set t.next 0;
    t.active <- Array.length t.workers;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    drain t body limit;
    Mutex.lock t.m;
    while t.active > 0 do
      Condition.wait t.idle t.m
    done;
    t.job <- no_job;
    Mutex.unlock t.m
  end

(* First exception in task-index order wins, matching what the sequential
   path would have raised; later tasks may already have run, which is
   unobservable because tasks own no shared state. *)
let reraise_first errors =
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors

let map_parts t ~zero ~merge f arr =
  let n = Array.length arr in
  if n = 0 then ([||], zero)
  else if t.size = 1 || n <= 1 then begin
    (* sequential fast path: today's exact loop, exceptions propagate at
       the raising index and later tasks never start *)
    let delta = ref zero in
    let out =
      Array.mapi
        (fun i x ->
          let r, d = f i x in
          delta := merge !delta d;
          r)
        arr
    in
    (out, !delta)
  end
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    run_job t n (fun i ->
        match f i arr.(i) with
        | r -> results.(i) <- Some r
        | exception e ->
          errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
    reraise_first errors;
    let out =
      Array.map
        (function Some (r, _) -> r | None -> assert false)
        results
    in
    let delta =
      Array.fold_left
        (fun acc -> function Some (_, d) -> merge acc d | None -> acc)
        zero results
    in
    (out, delta)
  end

let map t f arr =
  let out, () =
    map_parts t ~zero:() ~merge:(fun () () -> ()) (fun i x -> (f i x, ())) arr
  in
  out
