(** Deterministic, seed-driven fault schedules; see faults.mli. *)

type kind =
  | Worker_crash
  | Task_failure
  | Fetch_failure
  | Straggler
  | Mem_squeeze

type spec = {
  kind : kind;
  stage : int;
  fails : int;
  multiplier : float;
  factor : float;
}

type schedule = spec list

let default_spec kind =
  { kind; stage = 0; fails = 1; multiplier = 8.; factor = 0.5 }

let kind_name = function
  | Worker_crash -> "crash"
  | Task_failure -> "task"
  | Fetch_failure -> "fetch"
  | Straggler -> "straggler"
  | Mem_squeeze -> "memsqueeze"

let kind_of_string = function
  | "crash" | "worker-crash" -> Ok Worker_crash
  | "task" | "task-failure" -> Ok Task_failure
  | "fetch" | "fetch-failure" -> Ok Fetch_failure
  | "straggler" | "slow" -> Ok Straggler
  | "memsqueeze" | "mem" -> Ok Mem_squeeze
  | s ->
    Error
      (Printf.sprintf
         "unknown fault kind %S (expected crash, task, fetch, straggler, \
          memsqueeze)"
         s)

let spec_of_string s =
  let kind_s, params =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  Result.bind (kind_of_string kind_s) (fun kind ->
      let apply acc kv =
        Result.bind acc (fun sp ->
            if kv = "" then Ok sp
            else
              match String.split_on_char '=' kv with
              | [ "stage"; v ] -> (
                match int_of_string_opt v with
                | Some n when n >= 0 -> Ok { sp with stage = n }
                | _ -> Error (Printf.sprintf "bad stage %S" v))
              | [ "fails"; v ] -> (
                match int_of_string_opt v with
                | Some n when n >= 1 -> Ok { sp with fails = n }
                | _ -> Error (Printf.sprintf "bad fails %S" v))
              | [ "mult"; v ] -> (
                match float_of_string_opt v with
                | Some f when f >= 1. -> Ok { sp with multiplier = f }
                | _ -> Error (Printf.sprintf "bad mult %S" v))
              | [ "factor"; v ] -> (
                match float_of_string_opt v with
                | Some f when f > 0. && f <= 1. -> Ok { sp with factor = f }
                | _ -> Error (Printf.sprintf "bad factor %S" v))
              | _ -> Error (Printf.sprintf "bad fault parameter %S" kv))
      in
      List.fold_left apply
        (Ok (default_spec kind))
        (String.split_on_char ',' params))

let spec_to_string sp =
  let base = Printf.sprintf "%s:stage=%d" (kind_name sp.kind) sp.stage in
  match sp.kind with
  | Worker_crash -> base
  | Task_failure | Fetch_failure -> Printf.sprintf "%s,fails=%d" base sp.fails
  | Straggler -> Printf.sprintf "%s,mult=%g" base sp.multiplier
  | Mem_squeeze -> Printf.sprintf "%s,factor=%g" base sp.factor

(* A schedule is '+'-separated specs: "crash:stage=2+task:stage=4,fails=2".
   The empty string is rejected — an absent schedule is [], not "". *)
let schedule_of_string s =
  if String.trim s = "" then Error "empty fault schedule"
  else
    List.fold_left
      (fun acc part ->
        Result.bind acc (fun specs ->
            Result.map (fun sp -> sp :: specs) (spec_of_string part)))
      (Ok [])
      (String.split_on_char '+' s)
    |> Result.map List.rev

let schedule_to_string sch = String.concat "+" (List.map spec_to_string sch)

(* murmur-style avalanche shared by the victim pick and the storm
   generator: a pure function of its inputs *)
let avalanche a b =
  let z = (a * 0x9E3779B1) + ((b + 1) * 0x85EBCA6B) in
  let z = z lxor (z lsr 15) in
  let z = z * 0xC2B2AE35 in
  let z = z lxor (z lsr 13) in
  abs z

(* Seed-driven storm generator: [n] faults of the cycled [kinds] at
   pseudo-random stages in [first_stage, first_stage + span), sorted so the
   printed schedule reads chronologically. Repeated crashes at nearby
   stages are exactly the "crash during recovery of a prior crash" case:
   the second one fires while the lineage replay of the first is still
   being paid for. *)
let storm ?(seed = 42) ?(kinds = [ Worker_crash ]) ?(first_stage = 1)
    ?(span = 8) n : schedule =
  let kinds = if kinds = [] then [ Worker_crash ] else kinds in
  let karr = Array.of_list kinds in
  List.init n (fun i ->
      let kind = karr.(i mod Array.length karr) in
      let stage = first_stage + (avalanche seed (i * 7919) mod max 1 span) in
      (* [fails] only exists in the canonical syntax of task / fetch
         faults; setting it elsewhere would break the round-trip *)
      let fails =
        match kind with Task_failure | Fetch_failure -> 2 | _ -> 1
      in
      { (default_spec kind) with stage; fails })
  |> List.sort (fun a b -> compare (a.stage, a.kind) (b.stage, b.kind))

(* ------------------------------------------------------------------ *)
(* Runtime *)

type t = {
  schedule : spec array;
  fired : bool array;
  squeezing : bool array;
  seed : int;
  mutable stage_counter : int;
}

type site = Compute | Shuffle_fetch

type event =
  | Fail_task of { partition : int; fails : int }
  | Lose_worker of { worker : int }
  | Fail_fetch of { partition : int; fails : int }
  | Straggle of { partition : int; multiplier : float }

exception
  Task_abandoned of {
    stage : string;
    partition : int;
    attempts : int;
  }

let make ?(seed = 42) (sch : schedule) =
  let schedule = Array.of_list sch in
  {
    schedule;
    fired = Array.map (fun _ -> false) schedule;
    squeezing = Array.map (fun _ -> false) schedule;
    seed;
    stage_counter = 0;
  }

let schedule t = Array.to_list t.schedule

(* victim choice: a pure hash of (seed, stage index, spec index), so two
   faults of the same storm pick independent victims *)
let pick t ~salt bound =
  if bound <= 0 then 0
  else avalanche (t.seed + (salt * 0x27D4EB2F)) t.stage_counter mod bound

let eligible kind site =
  match kind, site with
  | Fetch_failure, Shuffle_fetch -> true
  | Fetch_failure, Compute -> false
  | (Worker_crash | Task_failure | Straggler), Compute -> true
  | (Worker_crash | Task_failure | Straggler), Shuffle_fetch -> false
  | Mem_squeeze, _ -> false (* acts through effective_mem, not an event *)

(* At most one event fires per accounted stage: the first not-yet-fired
   spec whose stage index has been reached and whose kind matches the
   site. Later specs of the schedule wait for subsequent stages, which is
   how a storm lands its second crash while the first one's recovery is
   still being paid for. *)
let on_stage (ot : t option) ~site ~partitions ~workers : event option =
  match ot with
  | None -> None
  | Some t ->
    let idx = t.stage_counter in
    t.stage_counter <- idx + 1;
    Array.iteri
      (fun i sp ->
        match sp.kind with
        | Mem_squeeze when (not t.squeezing.(i)) && idx >= sp.stage ->
          t.squeezing.(i) <- true
        | _ -> ())
      t.schedule;
    let rec fire i =
      if i >= Array.length t.schedule then None
      else
        let sp = t.schedule.(i) in
        if t.fired.(i) || idx < sp.stage || not (eligible sp.kind site) then
          fire (i + 1)
        else begin
          t.fired.(i) <- true;
          match sp.kind with
          | Worker_crash ->
            Some (Lose_worker { worker = pick t ~salt:i (max 1 workers) })
          | Task_failure ->
            Some
              (Fail_task
                 { partition = pick t ~salt:i (max 1 partitions);
                   fails = sp.fails })
          | Fetch_failure ->
            Some
              (Fail_fetch
                 { partition = pick t ~salt:i (max 1 partitions);
                   fails = sp.fails })
          | Straggler ->
            Some
              (Straggle
                 { partition = pick t ~salt:i (max 1 partitions);
                   multiplier = sp.multiplier })
          | Mem_squeeze -> fire (i + 1)
        end
    in
    fire 0

let effective_mem (ot : t option) budget =
  match ot with
  | None -> budget
  | Some t ->
    let factor = ref 1. in
    Array.iteri
      (fun i sp ->
        match sp.kind with
        | Mem_squeeze when t.squeezing.(i) -> factor := !factor *. sp.factor
        | _ -> ())
      t.schedule;
    if !factor >= 1. then budget
    else begin
      (* [float_of_int max_int] rounds up to 2^62, which is outside the int
         range: for budgets near Config.unbounded the float round-trip would
         produce an unspecified (negative) budget, so clamp instead. *)
      let f = float_of_int budget *. !factor in
      if f >= float_of_int max_int then budget else max 1 (int_of_float f)
    end
