(** Deterministic, seed-driven fault schedules; see faults.mli. *)

type kind =
  | Worker_crash
  | Task_failure
  | Fetch_failure
  | Straggler
  | Mem_squeeze

type spec = {
  kind : kind;
  stage : int;
  fails : int;
  multiplier : float;
  factor : float;
}

let default_spec kind =
  { kind; stage = 0; fails = 1; multiplier = 8.; factor = 0.5 }

let kind_name = function
  | Worker_crash -> "crash"
  | Task_failure -> "task"
  | Fetch_failure -> "fetch"
  | Straggler -> "straggler"
  | Mem_squeeze -> "memsqueeze"

let kind_of_string = function
  | "crash" | "worker-crash" -> Ok Worker_crash
  | "task" | "task-failure" -> Ok Task_failure
  | "fetch" | "fetch-failure" -> Ok Fetch_failure
  | "straggler" | "slow" -> Ok Straggler
  | "memsqueeze" | "mem" -> Ok Mem_squeeze
  | s ->
    Error
      (Printf.sprintf
         "unknown fault kind %S (expected crash, task, fetch, straggler, \
          memsqueeze)"
         s)

let spec_of_string s =
  let kind_s, params =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  Result.bind (kind_of_string kind_s) (fun kind ->
      let apply acc kv =
        Result.bind acc (fun sp ->
            if kv = "" then Ok sp
            else
              match String.split_on_char '=' kv with
              | [ "stage"; v ] -> (
                match int_of_string_opt v with
                | Some n when n >= 0 -> Ok { sp with stage = n }
                | _ -> Error (Printf.sprintf "bad stage %S" v))
              | [ "fails"; v ] -> (
                match int_of_string_opt v with
                | Some n when n >= 1 -> Ok { sp with fails = n }
                | _ -> Error (Printf.sprintf "bad fails %S" v))
              | [ "mult"; v ] -> (
                match float_of_string_opt v with
                | Some f when f >= 1. -> Ok { sp with multiplier = f }
                | _ -> Error (Printf.sprintf "bad mult %S" v))
              | [ "factor"; v ] -> (
                match float_of_string_opt v with
                | Some f when f > 0. && f <= 1. -> Ok { sp with factor = f }
                | _ -> Error (Printf.sprintf "bad factor %S" v))
              | _ -> Error (Printf.sprintf "bad fault parameter %S" kv))
      in
      List.fold_left apply
        (Ok (default_spec kind))
        (String.split_on_char ',' params))

let spec_to_string sp =
  let base = Printf.sprintf "%s:stage=%d" (kind_name sp.kind) sp.stage in
  match sp.kind with
  | Worker_crash -> base
  | Task_failure | Fetch_failure -> Printf.sprintf "%s,fails=%d" base sp.fails
  | Straggler -> Printf.sprintf "%s,mult=%g" base sp.multiplier
  | Mem_squeeze -> Printf.sprintf "%s,factor=%g" base sp.factor

(* ------------------------------------------------------------------ *)
(* Runtime *)

type t = {
  sp : spec;
  seed : int;
  mutable stage_counter : int;
  mutable fired : bool;
  mutable squeezing : bool;
}

type site = Compute | Shuffle_fetch

type event =
  | Fail_task of { partition : int; fails : int }
  | Lose_worker of { worker : int }
  | Fail_fetch of { partition : int; fails : int }
  | Straggle of { partition : int; multiplier : float }

exception
  Task_abandoned of {
    stage : string;
    partition : int;
    attempts : int;
  }

let make ?(seed = 42) sp =
  { sp; seed; stage_counter = 0; fired = false; squeezing = false }

let spec t = t.sp

(* murmur-style avalanche of (seed, stage index): a pure victim choice *)
let pick t bound =
  if bound <= 0 then 0
  else begin
    let z = (t.seed * 0x9E3779B1) + ((t.stage_counter + 1) * 0x85EBCA6B) in
    let z = z lxor (z lsr 15) in
    let z = z * 0xC2B2AE35 in
    let z = z lxor (z lsr 13) in
    abs z mod bound
  end

let eligible kind site =
  match kind, site with
  | Fetch_failure, Shuffle_fetch -> true
  | Fetch_failure, Compute -> false
  | (Worker_crash | Task_failure | Straggler), Compute -> true
  | (Worker_crash | Task_failure | Straggler), Shuffle_fetch -> false
  | Mem_squeeze, _ -> false (* acts through effective_mem, not an event *)

let on_stage (ot : t option) ~site ~partitions ~workers : event option =
  match ot with
  | None -> None
  | Some t ->
    let idx = t.stage_counter in
    t.stage_counter <- idx + 1;
    (match t.sp.kind with
    | Mem_squeeze when (not t.squeezing) && idx >= t.sp.stage ->
      t.squeezing <- true
    | _ -> ());
    if t.fired || idx < t.sp.stage || not (eligible t.sp.kind site) then None
    else begin
      t.fired <- true;
      match t.sp.kind with
      | Worker_crash -> Some (Lose_worker { worker = pick t (max 1 workers) })
      | Task_failure ->
        Some (Fail_task { partition = pick t (max 1 partitions); fails = t.sp.fails })
      | Fetch_failure ->
        Some (Fail_fetch { partition = pick t (max 1 partitions); fails = t.sp.fails })
      | Straggler ->
        Some
          (Straggle
             { partition = pick t (max 1 partitions);
               multiplier = t.sp.multiplier })
      | Mem_squeeze -> None
    end

let effective_mem (ot : t option) budget =
  match ot with
  | Some { sp = { kind = Mem_squeeze; factor; _ }; squeezing = true; _ } ->
    (* [float_of_int max_int] rounds up to 2^62, which is outside the int
       range: for budgets near Config.unbounded the float round-trip would
       produce an unspecified (negative) budget, so clamp instead. *)
    let f = float_of_int budget *. factor in
    if f >= float_of_int max_int then budget else max 1 (int_of_float f)
  | _ -> budget
