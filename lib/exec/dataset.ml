(** Partitioned datasets of the cluster simulator.

    A dataset is an array of partitions of values (top-level tuples — the
    granularity at which Spark distributes collections) plus an optional
    partitioning guarantee: the field paths whose hash decided each value's
    partition. Operators consume and produce datasets; the guarantee lets
    the executor skip shuffles exactly where Spark's partitioner would
    (Section 3, "Operators effect the partitioning guarantee"). *)

module V = Nrc.Value

type t = {
  parts : V.t array array;
  key : string list list option;
      (* field paths into each element; [Some keys] means all elements whose
         key values are equal live in the same partition *)
}

let partition_count t = Array.length t.parts

let total_rows t =
  Array.fold_left (fun acc p -> acc + Array.length p) 0 t.parts

let part_bytes t =
  Array.map
    (fun p -> Array.fold_left (fun acc v -> acc + V.byte_size v) 0 p)
    t.parts

let total_bytes t = Array.fold_left ( + ) 0 (part_bytes t)

(** Round-robin distribution of a bag's elements (no guarantee), mirroring
    block distribution of freshly loaded data. *)
let of_bag ~partitions (v : V.t) : t =
  let items = V.bag_items v in
  let parts = Array.make partitions [] in
  List.iteri
    (fun i item ->
      let p = i mod partitions in
      parts.(p) <- item :: parts.(p))
    items;
  { parts = Array.map (fun l -> Array.of_list (List.rev l)) parts; key = None }

(** Hash distribution by field paths: establishes the key guarantee. Used to
    pre-partition dictionaries by label. *)
let of_bag_by ~partitions ~key (v : V.t) : t =
  let items = V.bag_items v in
  let parts = Array.make partitions [] in
  List.iter
    (fun item ->
      let kv =
        List.map
          (fun path -> List.fold_left V.field item path)
          key
      in
      (* [land max_int], not [abs]: [abs min_int = min_int], whose [mod]
         is negative and would index out of bounds *)
      let h = List.fold_left (fun acc v -> (acc * 31) + V.hash v) 17 kv in
      let p = h land max_int mod partitions in
      parts.(p) <- item :: parts.(p))
    items;
  {
    parts = Array.map (fun l -> Array.of_list (List.rev l)) parts;
    key = Some key;
  }

let to_bag t : V.t =
  V.Bag (Array.to_list t.parts |> List.concat_map Array.to_list)

let map f t = { parts = Array.map (Array.map f) t.parts; key = None }

let empty ~partitions = { parts = Array.make partitions [||]; key = None }
