(** A reusable domain pool for partition-wise execution.

    The executor's hot loops are embarrassingly parallel: every operator
    maps a pure function over the partitions of an {!Executor.rset}. The
    pool runs those maps on [domains] OCaml 5 domains (including the
    calling one), spawned once per run and reused by every stage — the
    real-hardware counterpart of the cluster the simulator models.

    Determinism contract: tasks must be pure with respect to shared state
    (no [Stats]/[Trace]/[Memory]/[Faults] calls inside a task — all
    accounting is returned as the task's delta). Results are stored in
    per-index slots and deltas are folded left-to-right in task-index
    order after the barrier, so for any [domains] the outcome —
    results, merged deltas, and the exception raised, if any — is
    bit-identical to the sequential run. [sim_seconds] therefore never
    depends on [domains]; only wall-clock time does.

    A pool with [domains = 1] spawns no domains at all and degenerates to
    today's sequential loop. [map_parts] must not be called from inside a
    task of the same pool (the executor never nests: tasks are leaf
    computations). *)

type t

val create : domains:int -> t
(** Spawn a pool of [max 1 domains] lanes ([domains - 1] domains plus the
    caller). The domains idle on a condition variable between jobs. *)

val size : t -> int
(** Number of lanes, including the calling domain. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; the pool must not be
    used afterwards. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] — even if the callback raises. *)

val map_parts :
  t ->
  zero:'d ->
  merge:('d -> 'd -> 'd) ->
  (int -> 'a -> 'b * 'd) ->
  'a array ->
  'b array * 'd
(** [map_parts pool ~zero ~merge f arr] applies [f i arr.(i)] to every
    index, each task returning its result plus a local accounting delta,
    and returns the results in order together with the deltas folded as
    [merge (... (merge zero d0) ...) dn-1] — strictly in task-index
    order, so [merge] need not be commutative (it should be associative
    for the fold to mean anything across runs, which the QCheck suite
    checks for the executor's monoids). If tasks raise, the exception of
    the {e lowest} raising index is re-raised with its backtrace after
    the barrier — exactly the one the sequential loop would have
    surfaced. *)

val map : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_parts] without a delta: a parallel, order-preserving
    [Array.mapi]. *)
