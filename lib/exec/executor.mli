(** The distributed plan executor: evaluates plans over partitioned
    datasets the way a Spark cluster would, fully instrumented.

    - joins pick between broadcast (small right side) and shuffle hash
      join, honouring partitioning guarantees to skip shuffles;
    - Gamma-plus performs map-side partial aggregation before shuffling
      ("mitigates skew-effects by default", Section 5);
    - join+nest pairs building nested objects fuse into a cogroup when the
      nest key contains the unique row id (Section 3, Optimization);
    - skew-aware mode implements Figure 6: per-partition sampling finds
      heavy keys; the light part follows the standard implementation while
      the heavy part keeps its location and receives broadcast partners;
      [BagToDict] repartitions only light labels;
    - every operator is accounted: shuffled/broadcast bytes, per-worker
      residency reserved through the {!Memory} manager — fitting, spilling
      the operator's build side to simulated disk ({!Config.t.spill}
      [= On], charged as [spilled_bytes]/[spill_partitions]/[spill_rounds]
      plus disk time), or denied (raising {!Stats.Worker_out_of_memory}) —
      and simulated time from per-stage maxima over partitions;
    - passing a {!Trace.ctx} additionally records a per-operator span tree
      (one span per dispatched operator, shuffles as child spans) mirroring
      every accounted quantity — the observability layer of {!Trace}. *)

type options = {
  skew_aware : bool;  (** the skew-resilient operators of Section 5 *)
  cogroup : bool;  (** fuse join+nest into cogroup when safe *)
}

val default_options : options
(** Skew-unaware, cogroup fusion on. *)

type env = (string, Dataset.t) Hashtbl.t

val env_of_list : (string * Dataset.t) list -> env

val hash_key : Nrc.Value.t list -> int
(** Hash over an evaluated key tuple; decides partition assignment as
    [hash_key kv mod partitions]. Always non-negative (masked with
    [land max_int] — [abs] would map a [min_int] fold to itself, and a
    negative [mod] would index out of bounds). *)

module KeyTbl : Hashtbl.S with type key = Nrc.Value.t list
(** Hash tables over evaluated key tuples (heavy-key sets). *)

type rset = {
  parts : Plan.Row.t array array;
  key : Plan.Sexpr.t list option;  (** partitioning guarantee over rows *)
  skew : (Plan.Sexpr.t list * unit KeyTbl.t) option;
      (** heavy keys of a skew-triple, carried between operators until
          something alters the key (Section 5) *)
}

val rset_to_dataset : string list -> rset -> Dataset.t

val reset_ids : unit -> unit
(** Reset the global [AddIndex] id counter. The ids feed [hash_key] and
    therefore partition assignment, so callers that need run-for-run
    determinism (fault-injection replay; {!Trance.Api.run} calls this)
    reset before each run. *)

val run_plan :
  ?options:options ->
  ?trace:Trace.ctx ->
  ?faults:Faults.t ->
  ?checkpoint:Checkpoint.t ->
  ?pool:Pool.t ->
  config:Config.t ->
  stats:Stats.t ->
  env ->
  Plan.Op.t ->
  Dataset.t
(** Execute one plan against named datasets. Partition tasks run on the
    given {!Pool} (or a fresh one sized by {!Config.t.domains}, shut down
    on exit); any domain count produces bit-identical results, stats,
    traces, fault victims, spill decisions and checkpoint bytes — only
    wall-clock time changes. With [?trace], the plan run
    appears as one root span per top-level operator in the context. With
    [?faults], the injector is consulted at every compute and shuffle stage
    and injected events are recovered with Spark's semantics (bounded
    per-task retry, lineage re-execution — truncated at the nearest
    checkpoint — speculation); recovery cost shows up in {!Stats} and the
    trace. A {!Checkpoint} manager is created from [config] when not
    supplied, so recovery lineage accrues even under
    {!Config.No_checkpoints}; pass one explicitly to share lineage across
    plans ({!run_assignments} does).
    @raise Stats.Worker_out_of_memory when a worker exceeds its (possibly
    squeezed) budget and cannot spill — spilling off, or the stage would
    need more than {!Config.t.max_spill_rounds} build passes.
    @raise Faults.Task_abandoned when an injected task failure exhausts
    {!Config.t.max_task_attempts}.
    @raise Stats.Deadline_exceeded at the first stage boundary past
    {!Config.t.deadline}: a deadline-bound run can never silently keep
    recomputing. *)

val run_assignments :
  ?options:options ->
  ?trace:Trace.ctx ->
  ?faults:Faults.t ->
  ?checkpoint:Checkpoint.t ->
  ?pool:Pool.t ->
  config:Config.t ->
  stats:Stats.t ->
  env ->
  (string * Plan.Op.t) list ->
  env
(** Execute (name, plan) assignments in order, extending the environment.
    With [?trace], each assignment is wrapped in an ["Assignment"] span
    whose stage is the assignment name. [?faults] and [?pool] as in
    {!run_plan}; one pool and one checkpoint manager span all
    assignments, so domains are spawned once and lineage — and with it
    recovery cost — is run-wide. *)
