(** The plan language of Section 2: selection, projection, (outer) join,
    (outer) unnest, nest, dedup, union — plus the ID-adding operator implied
    by outer-unnest and the [BagToDict] cast of the shredded route
    (Section 4).

    Rows are flat records ({!Row.t}); generator variables of the source NRC
    program become columns holding tuple values, so no renaming operators
    are needed (cf. Figure 3).

    The nest operators refine the paper's Gamma with an explicit split
    between the outer grouping attributes G ([keys]) and the aggregation key
    of the translated sumBy/groupBy ([agg_keys]), plus a [presence]
    predicate; see the field documentation. *)

type join_kind = Inner | LeftOuter

type t =
  | Nil of string list  (** empty dataset with the given columns *)
  | UnitRow  (** a single empty row; source for constant singletons *)
  | Scan of { input : string; binder : string }
      (** each element of the named dataset becomes a row [(binder, elem)] *)
  | Select of Sexpr.t * t
  | Project of (string * Sexpr.t) list * t
  | Join of {
      left : t;
      right : t;
      lkey : Sexpr.t list;
      rkey : Sexpr.t list;
      kind : join_kind;
    }
      (** equi-join; output rows concatenate both sides. [LeftOuter] pads
          unmatched left rows with Null right columns. Null keys never
          match. *)
  | Product of t * t  (** fallback for generators with no join predicate *)
  | Unnest of {
      input : t;
      path : string list;
      binder : string;
      outer : bool;
      drop : bool;
    }
      (** mu / outer-mu: pair each row with each element of the bag at
          [path], bound as [binder]; when [outer] and the bag is empty, one
          row with [binder] = Null. When [drop], the consumed bag attribute
          is projected away from the source column (the paper's mu "while
          projecting away a"); set by the optimizer when nothing downstream
          needs it. *)
  | AddIndex of { input : t; col : string }
      (** unique integer ID per row (Spark zipWithUniqueId); inserted before
          entering a nesting level (Section 3) *)
  | NestBag of {
      input : t;
      keys : (string * Sexpr.t) list;  (** the grouping-attribute set G *)
      agg_keys : (string * Sexpr.t) list;  (** groupBy key; [] = plain nest *)
      item : Sexpr.t;  (** the nested element, usually [MkTuple] *)
      presence : Sexpr.t;  (** boolean: does this row contribute an item? *)
      out : string;
    }
      (** Gamma-union. Rows with false [presence] keep their G-group alive
          (empty bag) without contributing; a G-group with no present rows
          and non-empty [agg_keys] emits one placeholder row with Null agg
          keys, which the enclosing nest casts to the empty bag — the
          NULL-casting rule of Section 2, compositional across levels. *)
  | NestSum of {
      input : t;
      keys : (string * Sexpr.t) list;
      agg_keys : (string * Sexpr.t) list;
      aggs : (string * Sexpr.t) list;  (** output name -> aggregand *)
      presence : Sexpr.t;
    }  (** Gamma-plus; Null aggregand values count as 0. *)
  | Dedup of t
  | UnionAll of t * t
  | BagToDict of { input : t; label : Sexpr.t }
      (** cast a bag to a dictionary keyed by [label]: logically the
          identity, but establishes the label partitioning guarantee during
          distributed execution (Section 4) *)

val name : t -> string
(** Constructor name of the root operator ("Join", "NestBag", ...): the
    stable operator identifier used by execution-trace spans. *)

val columns : t -> string list
(** Output column names, in order. *)

val inputs : t -> string list
(** Datasets scanned (with duplicates). *)

val children : t -> t list

val pp : Format.formatter -> t -> unit
(** Indented operator-tree rendering (cf. Figure 3). *)

val to_string : t -> string

val count : (t -> bool) -> t -> int
(** Number of operators satisfying the predicate (plan diagnostics). *)
