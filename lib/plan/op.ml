(** The plan language of Section 2: selection, projection, (outer) join,
    (outer) unnest, nest, dedup, union — plus the ID-adding operator implied
    by outer-unnest and the BagToDict cast of the shredded route (Section 4).

    Rows are flat records ({!Row.t}); generator variables of the source NRC
    program become columns holding tuple values, so no renaming operators are
    needed (cf. Figure 3, "we omit renaming operators").

    The nest operators refine the paper's Gamma with an explicit split
    between the outer grouping attributes G ([keys]) and the aggregation key
    of the translated sumBy/groupBy ([agg_keys]), plus a [presence]
    predicate. This makes the NULL-casting rule of Section 2 precise: rows
    whose [presence] is false keep their G-group alive (so enclosing levels
    still see the group, with an empty bag or zero sum) without contributing
    items; a G-group with no present rows and non-empty [agg_keys] emits a
    single placeholder row with Null agg keys, which the enclosing nest then
    casts to the empty bag. *)

type join_kind = Inner | LeftOuter

type t =
  | Nil of string list  (** the empty dataset with the given columns *)
  | UnitRow  (** a single empty row; source for constant singletons *)
  | Scan of { input : string; binder : string }
      (** each element of the named dataset becomes a row [(binder, elem)] *)
  | Select of Sexpr.t * t
  | Project of (string * Sexpr.t) list * t
  | Join of {
      left : t;
      right : t;
      lkey : Sexpr.t list;
      rkey : Sexpr.t list;
      kind : join_kind;
    }  (** equi-join; output row is the concatenation of both rows. For
           [LeftOuter], unmatched left rows are padded with Null right
           columns. A row whose key contains Null never matches. *)
  | Product of t * t  (** fallback for generators with no join predicate *)
  | Unnest of {
      input : t;
      path : string list;
      binder : string;
      outer : bool;
      drop : bool;
    }  (** mu / outer-mu: pair each row with each element of the bag at
           [path], bound as column [binder]; when [outer] and the bag is
           empty, emit one row with [binder] = Null. When [drop], the
           consumed bag attribute is projected away from the source column
           (the paper's mu "while projecting away a"); set by the optimizer
           when nothing downstream needs it. *)
  | AddIndex of { input : t; col : string }
      (** extend each row with a unique integer ID (Spark zipWithUniqueId);
          inserted before entering a nesting level (Section 3) *)
  | NestBag of {
      input : t;
      keys : (string * Sexpr.t) list; (* grouping attributes G *)
      agg_keys : (string * Sexpr.t) list; (* groupBy key, [] for plain nesting *)
      item : Sexpr.t; (* the nested element, usually MkTuple *)
      presence : Sexpr.t; (* boolean: row contributes an item *)
      out : string;
    }  (** Gamma-union *)
  | NestSum of {
      input : t;
      keys : (string * Sexpr.t) list;
      agg_keys : (string * Sexpr.t) list; (* sumBy key *)
      aggs : (string * Sexpr.t) list; (* output name -> aggregand *)
      presence : Sexpr.t;
    }  (** Gamma-plus; Null aggregand values count as 0 *)
  | Dedup of t
  | UnionAll of t * t
  | BagToDict of { input : t; label : Sexpr.t }
      (** cast a bag to a dictionary keyed by [label]; logically the identity
          on rows, but fixes the label-based partitioning guarantee during
          distributed execution (Section 4, "Extensions for Shredded
          Compilation") *)

(* ------------------------------------------------------------------ *)
(* Schema: output column names, in order. *)

let rec columns = function
  | Nil cols -> cols
  | UnitRow -> []
  | Scan { binder; _ } -> [ binder ]
  | Select (_, p) -> columns p
  | Project (fields, _) -> List.map fst fields
  | Join { left; right; _ } | Product (left, right) ->
    columns left @ columns right
  | Unnest { input; binder; _ } -> columns input @ [ binder ]
  | AddIndex { input; col } -> columns input @ [ col ]
  | NestBag { keys; agg_keys; out; _ } ->
    List.map fst keys @ List.map fst agg_keys @ [ out ]
  | NestSum { keys; agg_keys; aggs; _ } ->
    List.map fst keys @ List.map fst agg_keys @ List.map fst aggs
  | Dedup p -> columns p
  | UnionAll (p, _) -> columns p
  | BagToDict { input; _ } -> columns input

(* ------------------------------------------------------------------ *)
(* Datasets scanned by the plan *)

let rec inputs = function
  | Nil _ | UnitRow -> []
  | Scan { input; _ } -> [ input ]
  | Select (_, p) | Dedup p | Project (_, p) -> inputs p
  | Join { left; right; _ } | Product (left, right) | UnionAll (left, right) ->
    inputs left @ inputs right
  | Unnest { input; _ }
  | AddIndex { input; _ }
  | NestBag { input; _ }
  | NestSum { input; _ }
  | BagToDict { input; _ } ->
    inputs input

let name = function
  | Nil _ -> "Nil"
  | UnitRow -> "UnitRow"
  | Scan _ -> "Scan"
  | Select _ -> "Select"
  | Project _ -> "Project"
  | Join _ -> "Join"
  | Product _ -> "Product"
  | Unnest _ -> "Unnest"
  | AddIndex _ -> "AddIndex"
  | NestBag _ -> "NestBag"
  | NestSum _ -> "NestSum"
  | Dedup _ -> "Dedup"
  | UnionAll _ -> "UnionAll"
  | BagToDict _ -> "BagToDict"

let children = function
  | Nil _ | UnitRow | Scan _ -> []
  | Select (_, c) | Project (_, c) | Dedup c -> [ c ]
  | Join { left; right; _ } | Product (left, right) | UnionAll (left, right) ->
    [ left; right ]
  | Unnest { input; _ }
  | AddIndex { input; _ }
  | NestBag { input; _ }
  | NestSum { input; _ }
  | BagToDict { input; _ } ->
    [ input ]

(* ------------------------------------------------------------------ *)
(* Pretty printing: indented operator tree *)

let pp_named ppf (n, e) = Fmt.pf ppf "%s:=%a" n Sexpr.pp e

let rec pp ppf op =
  match op with
  | Nil cols -> Fmt.pf ppf "Nil(%s)" (String.concat "," cols)
  | UnitRow -> Fmt.string ppf "UnitRow" 
  | Scan { input; binder } -> Fmt.pf ppf "Scan %s as %s" input binder
  | Select (p, c) -> Fmt.pf ppf "@[<v 2>\u{03C3}[%a]@,%a@]" Sexpr.pp p pp c
  | Project (fields, c) ->
    Fmt.pf ppf "@[<v 2>\u{03C0}[%a]@,%a@]"
      (Fmt.list ~sep:Fmt.comma pp_named)
      fields pp c
  | Join { left; right; lkey; rkey; kind } ->
    Fmt.pf ppf "@[<v 2>%s[%a = %a]@,%a@,%a@]"
      (match kind with Inner -> "\u{22C8}" | LeftOuter -> "\u{27D5}")
      (Fmt.list ~sep:Fmt.comma Sexpr.pp)
      lkey
      (Fmt.list ~sep:Fmt.comma Sexpr.pp)
      rkey pp left pp right
  | Product (l, r) -> Fmt.pf ppf "@[<v 2>\u{00D7}@,%a@,%a@]" pp l pp r
  | Unnest { input; path; binder; outer; drop } ->
    Fmt.pf ppf "@[<v 2>%s\u{03BC}%s[%s as %s]@,%a@]"
      (if outer then "outer-" else "")
      (if drop then "!" else "")
      (String.concat "." path) binder pp input
  | AddIndex { input; col } -> Fmt.pf ppf "@[<v 2>AddIndex[%s]@,%a@]" col pp input
  | NestBag { input; keys; agg_keys; item; presence; out } ->
    Fmt.pf ppf
      "@[<v 2>\u{0393}\u{228E}[%s := %a by G=(%a) key=(%a) when %a]@,%a@]" out
      Sexpr.pp item
      (Fmt.list ~sep:Fmt.comma pp_named)
      keys
      (Fmt.list ~sep:Fmt.comma pp_named)
      agg_keys Sexpr.pp presence pp input
  | NestSum { input; keys; agg_keys; aggs; presence } ->
    Fmt.pf ppf "@[<v 2>\u{0393}+[%a by G=(%a) key=(%a) when %a]@,%a@]"
      (Fmt.list ~sep:Fmt.comma pp_named)
      aggs
      (Fmt.list ~sep:Fmt.comma pp_named)
      keys
      (Fmt.list ~sep:Fmt.comma pp_named)
      agg_keys Sexpr.pp presence pp input
  | Dedup c -> Fmt.pf ppf "@[<v 2>dedup@,%a@]" pp c
  | UnionAll (l, r) -> Fmt.pf ppf "@[<v 2>\u{228E}@,%a@,%a@]" pp l pp r
  | BagToDict { input; label } ->
    Fmt.pf ppf "@[<v 2>BagToDict[%a]@,%a@]" Sexpr.pp label pp input

let to_string op = Fmt.str "%a" pp op

(* ------------------------------------------------------------------ *)
(* Operator counters (used in tests and plan diagnostics) *)

let rec count pred op =
  let self = if pred op then 1 else 0 in
  List.fold_left (fun acc c -> acc + count pred c) self (children op)
