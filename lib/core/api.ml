(** Top-level TraNCE-style API: compile an NRC program down one of the two
    routes of Figure 2 and execute it on the cluster simulator.

    - {b Standard}: unnesting -> plan -> optimization -> distributed
      execution over nested top-level tuples (Section 3).
    - {b Shredded}: symbolic shredding -> materialization (domain
      elimination) -> per-assignment unnesting -> distributed execution over
      flat shredded datasets, optionally followed by unshredding
      (Section 4).

    Both routes accept skew-aware execution (Section 5) and report the
    executor's instrumentation — totals, typed per-step reports, and (when
    [config.trace] is on) per-operator span trees; per-worker memory
    exhaustion is reported as a typed failed run (the paper's FAIL bars),
    not an exception. *)

module E = Nrc.Expr
module T = Nrc.Types
module V = Nrc.Value
module S = Plan.Sexpr

type strategy =
  | Standard
  | Shredded of { unshred : bool }
  | SparkSQL_proxy
      (** the paper's strongest competitor, modelled as the standard route
          with the cogroup optimization disabled and no aggregation pushdown
          (SparkSQL keeps explode with the source relation and its optimizer
          does not push aggregates through it; Section 6) *)

let strategy_name = function
  | Standard -> "Standard"
  | Shredded { unshred = false } -> "Shred"
  | Shredded { unshred = true } -> "Shred+Unshred"
  | SparkSQL_proxy -> "SparkSQL"

type config = {
  cluster : Exec.Config.t;
  skew_aware : bool;
  cogroup : bool; (* fuse join+nest into cogroup (Section 3, Optimization) *)
  optimizer : Plan.Optimize.config;
  materializer : Materialize.config;
  collect : bool; (* gather the result value back to the driver *)
  trace : bool; (* record per-operator execution span trees *)
  faults : Exec.Faults.schedule; (* the fault storm this run will face *)
  route_fallback : bool;
      (* when the standard route dies of memory exhaustion, re-plan the
         same program down the shredded route and answer from there *)
}

let default_config =
  {
    cluster = Exec.Config.default;
    skew_aware = false;
    cogroup = true;
    optimizer = Plan.Optimize.default;
    materializer = Materialize.default;
    collect = true;
    trace = false;
    faults = [];
    route_fallback = true;
  }

type failure =
  | Out_of_memory of { stage : string; worker_bytes : int; budget : int }
      (** a worker exceeded its budget at [stage] — the paper's FAIL *)
  | Task_failed of { stage : string; partition : int; attempts : int }
      (** an injected task failure exhausted its attempt budget *)
  | Deadline_missed of { stage : string; sim_seconds : float; deadline : float }
      (** the run blew its simulated-seconds deadline at [stage], typically
          while paying for storm recovery: typed, never a silent hang *)
  | Error of string

let pp_bytes b =
  if b >= 1048576 then Printf.sprintf "%.1fMB" (float_of_int b /. 1048576.)
  else Printf.sprintf "%.1fKB" (float_of_int b /. 1024.)

let failure_message = function
  | Out_of_memory { stage; worker_bytes; budget } ->
    Printf.sprintf "%s: %s > %s" stage (pp_bytes worker_bytes) (pp_bytes budget)
  | Task_failed { stage; partition; attempts } ->
    Printf.sprintf "%s: task on partition %d abandoned after %d attempts"
      stage partition attempts
  | Deadline_missed { stage; sim_seconds; deadline } ->
    Printf.sprintf "%s: deadline %.3fs exceeded (%.3fs simulated)" stage
      deadline sim_seconds
  | Error msg -> msg

let pp_failure ppf f = Fmt.string ppf (failure_message f)

(* How a run that did not answer entirely in memory got its answer: what
   spilled, and (after a route fallback) which route finally answered. *)
type degradation = {
  spilled_bytes : int;
  spill_partitions : int;
  spill_rounds : int;
  fell_back : bool; (* true when the shredded route answered for Standard *)
  answered_by : string; (* strategy name of the route that answered *)
  first_failure : failure option; (* the abandoned route's failure *)
}

type step_report = {
  step : string; (* source assignment name; "Unshred" for reassembly *)
  sim_seconds : float;
  stats : Exec.Stats.snapshot; (* this step's slice of the counters *)
  trace : Exec.Trace.span option; (* span tree when [config.trace] *)
}

type run = {
  strategy : string;
  config : config; (* the effective configuration the run executed under *)
  value : V.t option; (* collected result (None when [collect] is false) *)
  stats : Exec.Stats.t;
  wall_seconds : float;
  failure : failure option;
  steps : step_report list;
      (* one report per source step (shredded dictionary assignments are
         folded into their step by name prefix); the trailing "Unshred"
         report covers result reassembly *)
  trace : Exec.Trace.span list;
      (* root spans, one per executed assignment; [] unless tracing *)
  degradation : degradation option;
      (* present whenever the run spilled or fell back to another route;
         [stats]/[steps]/[trace] always describe the answering route *)
}

let step_seconds r = List.map (fun s -> (s.step, s.sim_seconds)) r.steps

(** How the run ended, Spark-style: [Degraded] means faults were recovered
    (retries, speculation, recomputation), operators spilled to disk, or
    the driver fell back to the shredded route — but the answer is still
    the reference answer; [Failed] means a typed failure surfaced. *)
type outcome = Completed | Degraded | Failed

let outcome_name = function
  | Completed -> "completed"
  | Degraded -> "degraded"
  | Failed -> "failed"

let outcome (r : run) : outcome =
  match r.failure with
  | Some _ -> Failed
  | None ->
    if
      Exec.Stats.task_retries r.stats > 0
      || Exec.Stats.speculative_tasks r.stats > 0
      || Exec.Stats.recomputed_bytes r.stats > 0
      || Exec.Stats.spilled_bytes r.stats > 0
      || r.degradation <> None
    then Degraded
    else Completed

(* attribute an assignment name to its source step: Step1_D_genes -> Step1 *)
let step_of_target targets name =
  match List.find_opt (fun t -> t = name) targets with
  | Some t -> t
  | None -> (
    match
      List.find_opt
        (fun t ->
          let tl = String.length t in
          String.length name > tl
          && String.sub name 0 tl = t
          && name.[tl] = '_')
        targets
    with
    | Some t -> t
    | None -> name)

(* Per-step accumulator: (step, stats slice, assignment spans in reverse).
   Survives a mid-run memory failure because it lives in a ref the caller
   holds on to. *)
type step_acc = (string * Exec.Stats.snapshot * Exec.Trace.span list) list

let record_step ~stats ~trace ~before ~step (acc : step_acc ref) : unit =
  let slice = Exec.Stats.diff (Exec.Stats.snapshot stats) before in
  let span = Option.bind trace Exec.Trace.last_root in
  acc :=
    match !acc with
    | (s, sl, spans) :: rest when s = step ->
      ( s,
        Exec.Stats.merge sl slice,
        (match span with None -> spans | Some sp -> sp :: spans) )
      :: rest
    | l -> (step, slice, Option.to_list span) :: l

let reports_of (acc : step_acc) : step_report list =
  List.rev_map
    (fun (step, slice, spans) ->
      {
        step;
        sim_seconds = slice.Exec.Stats.sim_seconds;
        stats = slice;
        trace =
          (match List.rev spans with
          | [] -> None
          | [ sp ] -> Some sp
          | sps -> Some (Exec.Trace.group ~op:"Step" ~stage:step sps));
      })
    acc

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* run assignments one at a time, slicing the stats (and trace) per step;
   one pool and one checkpoint manager span all of them so domains are
   spawned once and recovery lineage is run-wide. Each assignment span is
   charged its real wall-clock alongside the simulated counters. *)
let run_steps ~options ~config ~stats ~trace ~faults ~checkpoint ~pool
    ~targets ~steps_out env plans =
  List.iter
    (fun (name, plan) ->
      let before = Exec.Stats.snapshot stats in
      let ds =
        try
          Exec.Trace.with_span trace ~op:"Assignment" ~stage:name (fun () ->
              let ds, awall =
                timed (fun () ->
                    Exec.Executor.run_plan ~options ?trace ?faults ~checkpoint
                      ~pool ~config ~stats env plan)
              in
              Exec.Trace.add trace ~wall_seconds:awall ();
              ds)
        with
        (* attribute the failure to its source step; the partially filled
           step slice is still recorded for the failure report *)
        | Exec.Stats.Worker_out_of_memory w ->
          record_step ~stats ~trace ~before
            ~step:(step_of_target targets name) steps_out;
          raise
            (Exec.Stats.Worker_out_of_memory
               { w with stage = step_of_target targets name ^ "/" ^ w.stage })
        | Exec.Faults.Task_abandoned a ->
          record_step ~stats ~trace ~before
            ~step:(step_of_target targets name) steps_out;
          raise
            (Exec.Faults.Task_abandoned
               { a with stage = step_of_target targets name ^ "/" ^ a.stage })
        | Exec.Stats.Deadline_exceeded d ->
          record_step ~stats ~trace ~before
            ~step:(step_of_target targets name) steps_out;
          raise
            (Exec.Stats.Deadline_exceeded
               { d with stage = step_of_target targets name ^ "/" ^ d.stage })
      in
      Hashtbl.replace env name ds;
      record_step ~stats ~trace ~before ~step:(step_of_target targets name)
        steps_out)
    plans

let pp_run ppf r =
  match r.failure with
  | Some f ->
    Fmt.pf ppf "%-14s FAIL (%s) after %.3fs [%a]" r.strategy
      (failure_message f) r.wall_seconds Exec.Stats.pp r.stats
  | None ->
    let how =
      match r.degradation with
      | Some d when d.fell_back ->
        Printf.sprintf " (fell back to %s)" d.answered_by
      | Some _ -> " (spilled)"
      | None -> ""
    in
    Fmt.pf ppf "%-14s ok%s in %.3fs [%a]" r.strategy how r.wall_seconds
      Exec.Stats.pp r.stats

(* ------------------------------------------------------------------ *)
(* JSON reporting (hand-rolled; the image has no JSON library) *)

(* Schema-stable: every counter appears in every run, zero-valued or not,
   so downstream diffing of run_json never sees keys come and go. *)
let snapshot_json (s : Exec.Stats.snapshot) =
  Printf.sprintf
    "{\"shuffled_bytes\":%d,\"broadcast_bytes\":%d,\"peak_worker_bytes\":%d,\"rows_processed\":%d,\"stages\":%d,\"sim_seconds\":%.6g,\"task_retries\":%d,\"retried_tasks\":%d,\"speculative_tasks\":%d,\"recomputed_bytes\":%d,\"spilled_bytes\":%d,\"spill_partitions\":%d,\"spill_rounds\":%d,\"checkpoints_written\":%d,\"checkpoint_bytes\":%d,\"lineage_truncated\":%d,\"recovery_seconds\":%.6g,\"wall_seconds\":%.6g}"
    s.Exec.Stats.shuffled_bytes s.Exec.Stats.broadcast_bytes
    s.Exec.Stats.peak_worker_bytes s.Exec.Stats.rows_processed
    s.Exec.Stats.stages s.Exec.Stats.sim_seconds s.Exec.Stats.task_retries
    s.Exec.Stats.retried_tasks s.Exec.Stats.speculative_tasks
    s.Exec.Stats.recomputed_bytes s.Exec.Stats.spilled_bytes
    s.Exec.Stats.spill_partitions s.Exec.Stats.spill_rounds
    s.Exec.Stats.checkpoints_written s.Exec.Stats.checkpoint_bytes
    s.Exec.Stats.lineage_truncated s.Exec.Stats.recovery_seconds
    s.Exec.Stats.wall_seconds

(* The effective configuration, embedded in run_json so an exported run is
   self-describing and replayable from the JSON alone. [worker_mem] is -1
   for an unbounded budget (max_int is not a useful JSON number). *)
let config_json b (c : config) =
  let cl = c.cluster in
  Buffer.add_string b
    (Printf.sprintf
       "{\"workers\":%d,\"partitions\":%d,\"worker_mem\":%d,\"broadcast_limit\":%d,\"seed\":%d,\"max_task_attempts\":%d,\"speculation\":%b,\"spill\":\"%s\",\"max_spill_rounds\":%d,\"checkpoint\":\"%s\",\"checkpoint_replication\":%d,\"fault_rate\":%.6g,\"deadline\":%s,\"domains\":%d,\"skew_aware\":%b,\"cogroup\":%b,\"collect\":%b,\"trace\":%b,\"route_fallback\":%b,\"faults\":"
       cl.Exec.Config.workers cl.Exec.Config.partitions
       (if cl.Exec.Config.worker_mem = max_int then -1
        else cl.Exec.Config.worker_mem)
       cl.Exec.Config.broadcast_limit cl.Exec.Config.seed
       cl.Exec.Config.max_task_attempts cl.Exec.Config.speculation
       (Exec.Config.spill_name cl.Exec.Config.spill)
       cl.Exec.Config.max_spill_rounds
       (Exec.Config.checkpoint_name cl.Exec.Config.checkpoint)
       cl.Exec.Config.checkpoint_replication cl.Exec.Config.fault_rate
       (match cl.Exec.Config.deadline with
       | None -> "null"
       | Some d -> Printf.sprintf "%.6g" d)
       cl.Exec.Config.domains c.skew_aware c.cogroup c.collect c.trace
       c.route_fallback);
  (match c.faults with
  | [] -> Buffer.add_string b "null"
  | sch ->
    Buffer.add_char b '"';
    Buffer.add_string b (Exec.Faults.schedule_to_string sch);
    Buffer.add_char b '"');
  Buffer.add_char b '}'

let json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let run_json (r : run) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"strategy\":";
  json_string b r.strategy;
  Buffer.add_string b (Printf.sprintf ",\"wall_seconds\":%.6g" r.wall_seconds);
  Buffer.add_string b ",\"outcome\":";
  json_string b (outcome_name (outcome r));
  Buffer.add_string b ",\"failure\":";
  (match r.failure with
  | None -> Buffer.add_string b "null"
  | Some f -> json_string b (failure_message f));
  Buffer.add_string b ",\"degradation\":";
  (match r.degradation with
  | None -> Buffer.add_string b "null"
  | Some d ->
    Buffer.add_string b
      (Printf.sprintf
         "{\"spilled_bytes\":%d,\"spill_partitions\":%d,\"spill_rounds\":%d,\"fell_back\":%b,\"answered_by\":"
         d.spilled_bytes d.spill_partitions d.spill_rounds d.fell_back);
    json_string b d.answered_by;
    Buffer.add_string b ",\"first_failure\":";
    (match d.first_failure with
    | None -> Buffer.add_string b "null"
    | Some f -> json_string b (failure_message f));
    Buffer.add_char b '}');
  Buffer.add_string b ",\"config\":";
  config_json b r.config;
  Buffer.add_string b ",\"totals\":";
  Buffer.add_string b (snapshot_json (Exec.Stats.snapshot r.stats));
  Buffer.add_string b ",\"steps\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"step\":";
      json_string b s.step;
      Buffer.add_string b
        (Printf.sprintf ",\"sim_seconds\":%.6g,\"stats\":" s.sim_seconds);
      Buffer.add_string b (snapshot_json s.stats);
      Buffer.add_string b ",\"trace\":";
      (match s.trace with
      | None -> Buffer.add_string b "null"
      | Some sp -> Exec.Trace.buffer_json b sp);
      Buffer.add_char b '}')
    r.steps;
  Buffer.add_string b "],\"trace\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      Exec.Trace.buffer_json b sp)
    r.trace;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Plan compilation *)

let optimize_all cfg plans =
  List.map
    (fun (name, plan) -> (name, Plan.Optimize.optimize ~config:cfg.optimizer plan))
    plans

(** Standard route: one optimized plan per assignment. *)
let compile_standard ?(config = default_config) (p : Nrc.Program.t) :
    (string * Plan.Op.t) list =
  optimize_all config (Unnest.translate_program p)

type shredded_compiled = {
  pipeline : Shred_pipeline.t;
  plans : (string * Plan.Op.t) list; (* materialized assignments *)
  unshred_plan : Plan.Op.t option;
}

(** Shredded route: shred + materialize, compile each materialized
    assignment, wrap dictionary outputs in BagToDict (label partitioning
    guarantee), and compile the unshredding query. *)
let compile_shredded ?(config = default_config) (p : Nrc.Program.t) :
    shredded_compiled =
  (* uniqueness hints carry over to the shredded top bags (R -> R_F) *)
  let config =
    { config with
      optimizer =
        { config.optimizer with
          unique_keys =
            config.optimizer.unique_keys
            @ List.map
                (fun (r, fields) -> (Shred_type.top_name r, fields))
                config.optimizer.unique_keys } }
  in
  let pipeline =
    Shred_pipeline.shred_program ~config:config.materializer p
  in
  let plans = Unnest.translate_program pipeline.Shred_pipeline.mat in
  let is_dict name =
    (* every materialized dictionary registered for any assignment *)
    List.exists
      (fun { Nrc.Program.target; _ } -> target = name)
      pipeline.Shred_pipeline.mat.Nrc.Program.assignments
    && String.length name > 3
    &&
    let rec find i =
      i + 3 <= String.length name
      && (String.sub name i 3 = "_D_" || find (i + 1))
    in
    find 0
  in
  let plans =
    List.map
      (fun (name, plan) ->
        if is_dict name then
          (name, Plan.Op.BagToDict { input = plan; label = S.Col [ "label" ] })
        else (name, plan))
      plans
  in
  let plans = optimize_all config plans in
  let unshred_plan =
    Option.map
      (fun q ->
        let full_env =
          Nrc.Program.typecheck ~source:false pipeline.Shred_pipeline.mat
        in
        let tenv =
          Nrc.Typecheck.Env.fold (fun k v acc -> (k, v) :: acc) full_env []
        in
        Plan.Optimize.optimize ~config:config.optimizer
          (Unnest.translate ~tenv q))
      pipeline.Shred_pipeline.unshred_query
  in
  { pipeline; plans; unshred_plan }

(* ------------------------------------------------------------------ *)
(* Execution *)

let load_inputs ~cluster (types : (string * T.t) list)
    (values : (string * V.t) list) : Exec.Executor.env =
  ignore types;
  let env = Hashtbl.create 16 in
  List.iter
    (fun (name, v) ->
      Hashtbl.replace env name
        (Exec.Dataset.of_bag ~partitions:cluster.Exec.Config.partitions v))
    values;
  env

(** Load shredded inputs: dictionaries get a label partitioning guarantee. *)
let load_shredded_inputs ~cluster (types : (string * T.t) list)
    (values : (string * V.t) list) : Exec.Executor.env =
  let shredded = Shred_value.shred_env types values in
  let env = Hashtbl.create 16 in
  List.iter
    (fun (name, v) ->
      let ds =
        if
          String.length name > 3
          &&
          let rec find i =
            i + 3 <= String.length name
            && (String.sub name i 3 = "_D_" || find (i + 1))
          in
          find 0
        then
          Exec.Dataset.of_bag_by ~partitions:cluster.Exec.Config.partitions
            ~key:[ [ "label" ] ] v
        else Exec.Dataset.of_bag ~partitions:cluster.Exec.Config.partitions v
      in
      Hashtbl.replace env name ds)
    shredded;
  env

let catch_oom f =
  match f () with
  | v -> (Some v, None)
  | exception Exec.Stats.Worker_out_of_memory { stage; worker_bytes; budget } ->
    (None, Some (Out_of_memory { stage; worker_bytes; budget }))
  | exception Exec.Faults.Task_abandoned { stage; partition; attempts } ->
    (None, Some (Task_failed { stage; partition; attempts }))
  | exception Exec.Stats.Deadline_exceeded { stage; sim_seconds; deadline } ->
    (None, Some (Deadline_missed { stage; sim_seconds; deadline }))

(* One route, one run; never raises on memory exhaustion. *)
let run_once ~(config : config) ~(strategy : strategy) (p : Nrc.Program.t)
    (input_values : (string * V.t) list) : run =
  (* AddIndex ids and label sites feed partition assignment: reset both so
     identical runs (and fault-injection replays) are bit-for-bit
     deterministic *)
  Exec.Executor.reset_ids ();
  Shred_type.reset_sites ();
  let stats = Exec.Stats.create () in
  let trace = if config.trace then Some (Exec.Trace.create ()) else None in
  let cluster = config.cluster in
  let faults =
    match config.faults with
    | [] -> None
    | sch -> Some (Exec.Faults.make ~seed:cluster.Exec.Config.seed sch)
  in
  (* one manager per run attempt: recovery lineage spans every step *)
  let checkpoint = Exec.Checkpoint.make cluster in
  let exec_options =
    {
      Exec.Executor.skew_aware = config.skew_aware;
      cogroup =
        (match strategy with SparkSQL_proxy -> false | _ -> config.cogroup);
    }
  in
  let config =
    match strategy with
    | SparkSQL_proxy ->
      (* no cogroup, no aggregation pushdown, and no column pruning: explode
         stays with the source relation and carries full-width tuples
         (Section 6, "SparkSQL does not support explode in the SELECT
         clause...") *)
      { config with
        optimizer =
          { config.optimizer with push_aggs = false; prune_columns = false } }
    | _ -> config
  in
  let result_name = Nrc.Program.result_name p in
  let targets =
    List.map (fun { Nrc.Program.target; _ } -> target) p.Nrc.Program.assignments
  in
  let run_config = config in
  let finish ~strategy ~value ~wall ~failure ~steps_out =
    (* wall-clock lands in Stats here, once, from the driver's real clock:
       the executor's own accounting stays deterministic *)
    Exec.Stats.add_wall_seconds stats wall;
    let s = Exec.Stats.snapshot stats in
    let degradation =
      if s.Exec.Stats.spilled_bytes > 0 && failure = None then
        Some
          {
            spilled_bytes = s.Exec.Stats.spilled_bytes;
            spill_partitions = s.Exec.Stats.spill_partitions;
            spill_rounds = s.Exec.Stats.spill_rounds;
            fell_back = false;
            answered_by = strategy_name strategy;
            first_failure = None;
          }
      else None
    in
    {
      strategy = strategy_name strategy;
      config = run_config;
      value;
      stats;
      wall_seconds = wall;
      failure;
      steps = reports_of !steps_out;
      trace = (match trace with None -> [] | Some c -> Exec.Trace.roots c);
      degradation;
    }
  in
  match strategy with
  | Standard | SparkSQL_proxy ->
    let plans = compile_standard ~config p in
    let env = load_inputs ~cluster p.Nrc.Program.inputs input_values in
    let steps_out = ref [] in
    (* the pool is spawned once per run, outside the timed region, so
       wall_seconds measures execution rather than domain startup *)
    let outcome, wall =
      Exec.Pool.with_pool ~domains:cluster.Exec.Config.domains (fun pool ->
          timed (fun () ->
              catch_oom (fun () ->
                  run_steps ~options:exec_options ~config:cluster ~stats
                    ~trace ~faults ~checkpoint ~pool ~targets ~steps_out env
                    plans;
                  if config.collect then
                    Some (Exec.Dataset.to_bag (Hashtbl.find env result_name))
                  else None)))
    in
    let result, failure = outcome in
    let value = Option.join result in
    finish ~strategy ~value ~wall ~failure ~steps_out
  | Shredded { unshred } ->
    let compiled = compile_shredded ~config p in
    let env = load_shredded_inputs ~cluster p.Nrc.Program.inputs input_values in
    let steps_out = ref [] in
    let outcome, wall =
      Exec.Pool.with_pool ~domains:cluster.Exec.Config.domains (fun pool ->
          timed (fun () ->
              catch_oom (fun () ->
                  run_steps ~options:exec_options ~config:cluster ~stats
                    ~trace ~faults ~checkpoint ~pool ~targets ~steps_out env
                    compiled.plans;
                  match unshred, compiled.unshred_plan with
                  | true, Some uplan ->
                    let before = Exec.Stats.snapshot stats in
                    let ds =
                      Exec.Trace.with_span trace ~op:"Assignment"
                        ~stage:"Unshred" (fun () ->
                          let ds, awall =
                            timed (fun () ->
                                Exec.Executor.run_plan ~options:exec_options
                                  ?trace ?faults ~checkpoint ~pool
                                  ~config:cluster ~stats env uplan)
                          in
                          Exec.Trace.add trace ~wall_seconds:awall ();
                          ds)
                    in
                    record_step ~stats ~trace ~before ~step:"Unshred"
                      steps_out;
                    if config.collect then Some (Exec.Dataset.to_bag ds)
                    else None
                  | _ ->
                    if config.collect then
                      Some
                        (Exec.Dataset.to_bag
                           (Hashtbl.find env
                              compiled.pipeline.Shred_pipeline.top))
                    else None)))
    in
    let result, failure = outcome in
    let value = Option.join result in
    finish ~strategy:(Shredded { unshred }) ~value ~wall ~failure ~steps_out

(** Run a program with the given strategy; never raises on memory
    exhaustion. When the standard route dies of memory exhaustion — the
    spilling layer itself denied a reservation, or spilling is off — and
    [config.route_fallback] is on, the driver re-plans the same program
    down the shredded route (query shredding usually fits where flattening
    cannot) and answers from there, surfacing the whole story as a
    [degradation] record. The returned [stats]/[steps]/[trace] describe
    the answering route; [wall_seconds] covers both attempts. *)
let run ?(config = default_config) ~(strategy : strategy)
    (p : Nrc.Program.t) (input_values : (string * V.t) list) : run =
  let r = run_once ~config ~strategy p input_values in
  match r.failure, strategy with
  | Some (Out_of_memory _ as first), Standard when config.route_fallback -> (
    let fallback = Shredded { unshred = true } in
    let r2 = run_once ~config ~strategy:fallback p input_values in
    match r2.failure with
    | Some _ -> r (* both routes failed: report the original failure *)
    | None ->
      let s = Exec.Stats.snapshot r2.stats in
      {
        r2 with
        wall_seconds = r.wall_seconds +. r2.wall_seconds;
        degradation =
          Some
            {
              spilled_bytes = s.Exec.Stats.spilled_bytes;
              spill_partitions = s.Exec.Stats.spill_partitions;
              spill_rounds = s.Exec.Stats.spill_rounds;
              fell_back = true;
              answered_by = strategy_name fallback;
              first_failure = Some first;
            };
      })
  | _ -> r
