(** Cost estimation for compiled plans — the paper's stated future work
    ("a crucial issue, and a target of our ongoing work, is cost estimation
    for these programs, and the application of such estimates to
    optimization decisions", Section 8).

    The model is deliberately simple and documented: per-table statistics
    (cardinality, average row bytes, average inner-bag fanout per path) are
    collected from the actual inputs; cardinalities propagate through plan
    operators with textbook heuristics; operator costs combine CPU
    (rows in + out, weighted by bytes) and network (bytes shuffled or
    broadcast). Estimates for a whole program fold over its assignments,
    feeding each result's estimated statistics to later ones, so the
    standard and shredded routes can be compared before execution —
    {!recommend} picks a route. The bench target [cost_model] validates the
    ranking against the simulator's measured times. *)

module E = Nrc.Expr
module V = Nrc.Value
module Op = Plan.Op
module S = Plan.Sexpr

(* ------------------------------------------------------------------ *)
(* Statistics *)

type table_stats = {
  rows : float;
  row_bytes : float; (* average top-level row size *)
  fanouts : (string list * float) list; (* avg bag size per attribute path *)
}

type stats = (string * table_stats) list

let default_fanout = 4.

(* average inner-bag sizes of a bag of tuples, per path *)
let rec fanouts_of_items path (items : V.t list) : (string list * float) list =
  match items with
  | [] -> []
  | V.Tuple fields :: _ ->
    List.concat_map
      (fun (name, _) ->
        let bags =
          List.filter_map
            (fun item ->
              match item with
              | V.Tuple fs -> (
                match List.assoc_opt name fs with
                | Some (V.Bag inner) -> Some inner
                | _ -> None)
              | _ -> None)
            items
        in
        match bags with
        | [] -> []
        | _ ->
          let total = List.fold_left (fun a b -> a + List.length b) 0 bags in
          let avg = float_of_int total /. float_of_int (List.length bags) in
          let sub = path @ [ name ] in
          (sub, avg) :: fanouts_of_items sub (List.concat bags))
      fields
  | _ -> []

let stats_of_bag (v : V.t) : table_stats =
  let items = V.bag_items v in
  let n = List.length items in
  if n = 0 then { rows = 0.; row_bytes = 32.; fanouts = [] }
  else
    {
      rows = float_of_int n;
      row_bytes =
        float_of_int (List.fold_left (fun a x -> a + V.byte_size x) 0 items)
        /. float_of_int n;
      fanouts = fanouts_of_items [] items;
    }

let stats_of_inputs (inputs : (string * V.t) list) : stats =
  List.map (fun (name, v) -> (name, stats_of_bag v)) inputs

(* ------------------------------------------------------------------ *)
(* Plan estimation *)

type estimate = {
  out_rows : float;
  out_bytes : float; (* total *)
  cpu : float; (* bytes touched *)
  net : float; (* bytes shuffled or broadcast *)
}

let zero = { out_rows = 0.; out_bytes = 0.; cpu = 0.; net = 0. }

(* selectivity heuristics *)
let rec selectivity (p : S.t) =
  match p with
  | S.Cmp (E.Eq, _, _) -> 0.2
  | S.Cmp (E.Ne, _, _) -> 0.8
  | S.Cmp (_, _, _) -> 0.45
  | S.Logic (E.And, a, b) -> selectivity a *. selectivity b
  | S.Logic (E.Or, a, b) -> min 1. (selectivity a +. selectivity b)
  | S.Not a -> 1. -. selectivity a
  | S.IsNull _ -> 0.1
  | S.IsLabelSite _ -> 0.9
  | _ -> 0.5

(* group-count heuristic: a fraction of the input per distinct key column *)
let group_ratio n_keys = Float.pow 0.35 (float_of_int (max 1 n_keys))

let avg_row e = if e.out_rows <= 0. then 32. else e.out_bytes /. e.out_rows

let rec estimate (stats : stats) (op : Op.t) : estimate =
  match op with
  | Op.Nil _ -> zero
  | Op.UnitRow -> { out_rows = 1.; out_bytes = 8.; cpu = 8.; net = 0. }
  | Op.Scan { input; _ } -> (
    match List.assoc_opt input stats with
    | None -> { out_rows = 100.; out_bytes = 3200.; cpu = 3200.; net = 0. }
    | Some t ->
      let b = t.rows *. t.row_bytes in
      { out_rows = t.rows; out_bytes = b; cpu = b; net = 0. })
  | Op.Select (p, c) ->
    let e = estimate stats c in
    let s = selectivity p in
    { e with
      out_rows = e.out_rows *. s;
      out_bytes = e.out_bytes *. s;
      cpu = e.cpu +. e.out_bytes }
  | Op.Project (fields, c) ->
    let e = estimate stats c in
    (* projections mostly narrow; assume they keep 70% of the bytes per
       retained field list length vs input *)
    let keep = min 1. (0.25 *. float_of_int (List.length fields)) in
    { e with
      out_bytes = e.out_bytes *. keep;
      cpu = e.cpu +. e.out_bytes }
  | Op.Join { left; right; kind; _ } ->
    let l = estimate stats left and r = estimate stats right in
    (* foreign-key assumption: each left row matches its partners in the
       smaller side once on average *)
    let matched = max l.out_rows r.out_rows in
    let out_rows =
      match kind with Op.LeftOuter -> max matched l.out_rows | Op.Inner -> matched
    in
    let out_bytes = out_rows *. (avg_row l +. avg_row r) in
    {
      out_rows;
      out_bytes;
      cpu = l.cpu +. r.cpu +. out_bytes;
      net = l.net +. r.net +. l.out_bytes +. r.out_bytes (* both sides move *);
    }
  | Op.Product (l0, r0) ->
    let l = estimate stats l0 and r = estimate stats r0 in
    let out_rows = l.out_rows *. r.out_rows in
    let out_bytes = out_rows *. (avg_row l +. avg_row r) in
    { out_rows; out_bytes; cpu = l.cpu +. r.cpu +. out_bytes; net = l.net +. r.net +. r.out_bytes }
  | Op.Unnest { input; path; outer; _ } ->
    let e = estimate stats input in
    let fanout = fanout_of stats input path in
    let out_rows = e.out_rows *. if outer then max 1. fanout else fanout in
    let out_bytes = out_rows *. (avg_row e +. 24.) in
    { out_rows; out_bytes; cpu = e.cpu +. out_bytes; net = e.net }
  | Op.AddIndex { input; _ } ->
    let e = estimate stats input in
    { e with out_bytes = e.out_bytes +. (8. *. e.out_rows); cpu = e.cpu +. e.out_bytes }
  | Op.NestBag { input; keys; agg_keys; _ } ->
    let e = estimate stats input in
    let out_rows =
      max 1. (e.out_rows *. group_ratio (List.length keys + List.length agg_keys))
    in
    (* grouping keeps all item bytes, nested *)
    let out_bytes = e.out_bytes in
    { out_rows; out_bytes; cpu = e.cpu +. e.out_bytes; net = e.net +. e.out_bytes }
  | Op.NestSum { input; keys; agg_keys; aggs; _ } ->
    let e = estimate stats input in
    let out_rows =
      max 1. (e.out_rows *. group_ratio (List.length keys + List.length agg_keys))
    in
    let out_bytes =
      out_rows
      *. (16. *. float_of_int (List.length keys + List.length agg_keys + List.length aggs))
    in
    (* map-side combine: only the combined partials shuffle *)
    { out_rows; out_bytes; cpu = e.cpu +. e.out_bytes; net = e.net +. out_bytes }
  | Op.Dedup c ->
    let e = estimate stats c in
    let out_rows = max 1. (e.out_rows *. 0.5) in
    { out_rows;
      out_bytes = out_rows *. avg_row e;
      cpu = e.cpu +. e.out_bytes;
      net = e.net +. e.out_bytes }
  | Op.UnionAll (l0, r0) ->
    let l = estimate stats l0 and r = estimate stats r0 in
    {
      out_rows = l.out_rows +. r.out_rows;
      out_bytes = l.out_bytes +. r.out_bytes;
      cpu = l.cpu +. r.cpu;
      net = l.net +. r.net;
    }
  | Op.BagToDict { input; _ } ->
    let e = estimate stats input in
    { e with net = e.net +. e.out_bytes; cpu = e.cpu +. e.out_bytes }

(* fanout of the bag at [path] under the given subplan: resolved against
   input statistics when the plan bottoms out in a scan binding the path's
   root column; otherwise the default *)
and fanout_of stats (input : Op.t) (path : string list) : float =
  match path with
  | root :: rest -> (
    match find_scan input root with
    | Some table -> (
      match List.assoc_opt table stats with
      | Some t -> (
        match List.assoc_opt rest t.fanouts with
        | Some f -> f
        | None -> default_fanout)
      | None -> default_fanout)
    | None -> default_fanout)
  | [] -> default_fanout

and find_scan (op : Op.t) (binder : string) : string option =
  match op with
  | Op.Scan { input; binder = b } when b = binder -> Some input
  | _ ->
    List.fold_left
      (fun acc c -> match acc with Some _ -> acc | None -> find_scan c binder)
      None (Op.children op)

(* ------------------------------------------------------------------ *)
(* Whole-route estimation *)

(** Sum of operator costs over a sequence of assignments, threading each
    result's estimated statistics into the environment for later plans.
    The scalar objective mirrors the simulator's time model: cpu bytes
    (weighted) + network bytes. *)
let estimate_assignments (stats0 : stats) (plans : (string * Op.t) list) :
    float * stats =
  List.fold_left
    (fun (acc, stats) (name, plan) ->
      let e = estimate stats plan in
      let table =
        {
          rows = max 1. e.out_rows;
          row_bytes = avg_row e;
          fanouts = [];
        }
      in
      (acc +. e.cpu +. (4. *. e.net), (name, table) :: stats))
    (0., stats0) plans

type recommendation = {
  standard_cost : float;
  shredded_cost : float;
  pick : [ `Standard | `Shredded ];
}

(* ------------------------------------------------------------------ *)
(* Checkpoint interval estimation (Young-Daly under the simulator's cost
   model). With a per-stage fault probability [fault_rate], a fault at
   stage i replays the ~k/2 stages of lineage accrued since the last
   checkpoint, so per stage the expected recompute cost is
   [rate * k/2 * stage_bytes * cpu_weight] while the amortized write cost
   is [stage_bytes * disk_weight * replication / k]. Balancing the two
   gives k = sqrt(2 * delta / (rate * stage_time)) with delta the write
   time of one checkpoint — Young's classic first-order optimum. *)

type checkpoint_estimate = {
  avg_stage_bytes : float;  (* estimated bytes a pipeline stage produces *)
  interval : int;  (* recommended [Config.Every] interval, >= 1 *)
  write_seconds : float;  (* estimated cost of one checkpoint write *)
  expected_recompute_seconds : float;
      (* expected per-stage recompute cost at that interval *)
}

let recommend_checkpoint_interval (cluster : Exec.Config.t)
    (stats0 : stats) (plans : (string * Op.t) list) : checkpoint_estimate =
  let total_bytes, n_stages, _ =
    List.fold_left
      (fun (bytes, n, stats) (name, plan) ->
        let e = estimate stats plan in
        let table =
          { rows = max 1. e.out_rows; row_bytes = avg_row e; fanouts = [] }
        in
        (bytes +. e.out_bytes, n + 1, (name, table) :: stats))
      (0., 0, stats0) plans
  in
  let avg_stage_bytes = total_bytes /. float_of_int (max 1 n_stages) in
  let stage_seconds = avg_stage_bytes *. cluster.Exec.Config.cpu_weight in
  let delta =
    avg_stage_bytes *. cluster.Exec.Config.disk_weight
    *. float_of_int (max 1 cluster.Exec.Config.checkpoint_replication)
  in
  let rate = max 1e-9 cluster.Exec.Config.fault_rate in
  let k =
    if stage_seconds <= 0. then 1
    else
      int_of_float (Float.round (sqrt (2. *. delta /. (rate *. stage_seconds))))
  in
  let interval = max 1 k in
  {
    avg_stage_bytes;
    interval;
    write_seconds = delta;
    expected_recompute_seconds =
      rate *. (float_of_int interval /. 2.) *. stage_seconds;
  }

(** Estimate both compilation routes of a program on the given inputs and
    recommend the cheaper one. The shredded estimate includes the
    materialized assignments (and the unshredding plan when the output is
    nested and [unshred] is requested). *)
let recommend ?(config = Api.default_config) ?(unshred = false)
    (p : Nrc.Program.t) (inputs : (string * V.t) list) : recommendation =
  let base_stats = stats_of_inputs inputs in
  let std_plans = Api.compile_standard ~config p in
  let standard_cost, _ = estimate_assignments base_stats std_plans in
  let sc = Api.compile_shredded ~config p in
  let shredded_inputs =
    Shred_value.shred_env p.Nrc.Program.inputs inputs
  in
  let shred_stats = stats_of_inputs shredded_inputs in
  let shredded_cost, stats' =
    estimate_assignments shred_stats sc.Api.plans
  in
  let shredded_cost =
    match unshred, sc.Api.unshred_plan with
    | true, Some uplan ->
      let e = estimate stats' uplan in
      shredded_cost +. e.cpu +. (4. *. e.net)
    | _ -> shredded_cost
  in
  {
    standard_cost;
    shredded_cost;
    pick = (if shredded_cost <= standard_cost then `Shredded else `Standard);
  }

(** Cost-based execution: estimate both routes, run the cheaper one (the
    "application of such estimates to optimization decisions" the paper
    names as ongoing work). The chosen route is visible in the returned
    run's [strategy]. *)
let run_auto ?(config = Api.default_config) ?(unshred = true)
    (p : Nrc.Program.t) (inputs : (string * V.t) list) : recommendation * Api.run =
  let r = recommend ~config ~unshred p inputs in
  let strategy =
    match r.pick with
    | `Standard -> Api.Standard
    | `Shredded -> Api.Shredded { unshred }
  in
  (r, Api.run ~config ~strategy p inputs)
