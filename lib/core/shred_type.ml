(** Shredded types and naming conventions (Section 4).

    The shredded representation of a nested bag of type [T] is a flat bag of
    type [T^F] — bag-valued attributes replaced by labels — together with a
    dictionary per nesting level associating labels with flat bags. We store
    each materialized dictionary as a flat dataset of tuples
    [<label, f1, ..., fk>] ("a Dataset[T] where T contains a label column",
    Section 4), naming them by attribute path:

    {v
      COP  ~~>  COP_F, COP_D_corders, COP_D_corders_oparts
    v} *)

module T = Nrc.Types

exception Shred_error of string

let error fmt = Fmt.kstr (fun s -> raise (Shred_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Naming *)

let top_name base = base ^ "_F"

let dict_name base path =
  String.concat "_" ((base ^ "_D") :: path)

let domain_name base path =
  String.concat "_" ((base ^ "_Dom") :: path)

(* ------------------------------------------------------------------ *)
(* Label sites: unique identifiers for label creation points. Sites created
   for input levels and for tuple constructors share one global namespace so
   labels from different origins can never collide. *)

let site_counter = ref 0
let site_names : (int, string) Hashtbl.t = Hashtbl.create 64

let fresh_site (description : string) : int =
  incr site_counter;
  Hashtbl.replace site_names !site_counter description;
  !site_counter

let site_description site =
  Option.value (Hashtbl.find_opt site_names site) ~default:"?"

(* one site per (dataset, path) for input value shredding, memoized so that
   re-shredding the same input reuses label identity *)
let input_sites : (string, int) Hashtbl.t = Hashtbl.create 64

let input_site base path =
  let key = dict_name base path in
  match Hashtbl.find_opt input_sites key with
  | Some s -> s
  | None ->
    let s = fresh_site ("input:" ^ key) in
    Hashtbl.replace input_sites key s;
    s

(* label identities feed hash partitioning, so repeated compiles in one
   process would otherwise place dictionary rows differently run to run *)
let reset_sites () =
  site_counter := 0;
  Hashtbl.reset site_names;
  Hashtbl.reset input_sites

(* ------------------------------------------------------------------ *)
(* T^F *)

(** Flat version of a type: bag-valued tuple attributes become labels. *)
let rec flat_of (ty : T.t) : T.t =
  match ty with
  | T.TScalar _ | T.TLabel -> ty
  | T.TTuple fields ->
    T.TTuple
      (List.map
         (fun (n, t) ->
           match t with
           | T.TBag _ -> (n, T.TLabel)
           | _ -> (n, flat_of t))
         fields)
  | T.TBag t -> T.TBag (flat_of t)
  | T.TDict _ -> error "flat_of: unexpected dictionary type"

(** Element type at a path of bag-valued attributes: [elem_at cop_elem
    ["corders"; "oparts"]] is the oparts item type. *)
let rec elem_at (elem_ty : T.t) (path : string list) : T.t =
  match path with
  | [] -> elem_ty
  | a :: rest -> (
    match elem_ty with
    | T.TTuple fields -> (
      match List.assoc_opt a fields with
      | Some (T.TBag inner) -> elem_at inner rest
      | Some t -> error "elem_at: attribute %s is not a bag (%a)" a T.pp t
      | None -> error "elem_at: no attribute %s" a)
    | _ -> error "elem_at: not a tuple type")

(** Bag-valued attributes of a tuple element type. *)
let bag_attrs (elem_ty : T.t) : (string * T.t) list =
  match elem_ty with
  | T.TTuple fields ->
    List.filter_map
      (fun (n, t) -> match t with T.TBag inner -> Some (n, inner) | _ -> None)
      fields
  | _ -> []

(** All dictionary paths of a nested bag element type, in pre-order:
    [["corders"]; ["corders"; "oparts"]]. *)
let rec dict_paths (elem_ty : T.t) : string list list =
  List.concat_map
    (fun (a, inner) ->
      [ a ] :: List.map (fun p -> a :: p) (dict_paths inner))
    (bag_attrs elem_ty)

(** The dataset type of a materialized dictionary whose items have the given
    (original, possibly nested) element type: a flat bag of label + flat item
    fields. Only tuple items are supported in the shredded route. *)
let dict_dataset_ty (item_ty : T.t) : T.t =
  match flat_of item_ty with
  | T.TTuple fields -> T.TBag (T.TTuple (("label", T.TLabel) :: fields))
  | t ->
    error
      "shredded dictionaries require tuple-valued inner bags, got items of \
       type %a"
      T.pp t

(** Shredded input signature of a dataset: the names and types of its top
    bag and dictionaries. *)
let shredded_inputs (base : string) (ty : T.t) : (string * T.t) list =
  match ty with
  | T.TBag elem ->
    (top_name base, T.TBag (flat_of elem))
    :: List.map
         (fun path -> (dict_name base path, dict_dataset_ty (elem_at elem path)))
         (dict_paths elem)
  | _ -> error "shredded_inputs: %s is not a bag" base
