(** Cost estimation for compiled plans — the paper's stated future work
    (Section 8: "cost estimation for these programs, and the application of
    such estimates to optimization decisions").

    Per-table statistics come from the actual inputs; cardinalities
    propagate through plan operators with documented textbook heuristics;
    the scalar objective mirrors the simulator's time model (CPU bytes +
    weighted network bytes). The [cost_model] bench target validates the
    standard-vs-shredded ranking against measured simulator times. *)

type table_stats = {
  rows : float;
  row_bytes : float;  (** average top-level row size *)
  fanouts : (string list * float) list;
      (** average inner-bag size per attribute path *)
}

type stats = (string * table_stats) list

val default_fanout : float

val stats_of_bag : Nrc.Value.t -> table_stats
val stats_of_inputs : (string * Nrc.Value.t) list -> stats

type estimate = {
  out_rows : float;
  out_bytes : float;  (** total output bytes *)
  cpu : float;  (** bytes touched *)
  net : float;  (** bytes shuffled or broadcast *)
}

val estimate : stats -> Plan.Op.t -> estimate
val selectivity : Plan.Sexpr.t -> float

val estimate_assignments :
  stats -> (string * Plan.Op.t) list -> float * stats
(** Total scalar cost of an assignment sequence; each result's estimated
    statistics feed later plans. Returns the extended statistics too. *)

type recommendation = {
  standard_cost : float;
  shredded_cost : float;
  pick : [ `Standard | `Shredded ];
}

(** Young–Daly checkpoint interval under the simulator's cost model. *)
type checkpoint_estimate = {
  avg_stage_bytes : float;  (** estimated bytes an average stage produces *)
  interval : int;  (** recommended {!Exec.Config.Every} interval, >= 1 *)
  write_seconds : float;  (** estimated cost of one checkpoint write *)
  expected_recompute_seconds : float;
      (** expected per-stage recompute cost at that interval *)
}

val recommend_checkpoint_interval :
  Exec.Config.t -> stats -> (string * Plan.Op.t) list -> checkpoint_estimate
(** Balance the amortized checkpoint-write cost against the expected
    lineage-recompute cost under {!Exec.Config.t.fault_rate}:
    [k = sqrt (2 * write_seconds / (fault_rate * stage_seconds))], Young's
    first-order optimum, clamped to at least 1. Surfaced by
    [trance recommend]. *)

val recommend :
  ?config:Api.config ->
  ?unshred:bool ->
  Nrc.Program.t ->
  (string * Nrc.Value.t) list ->
  recommendation
(** Estimate both routes and pick the cheaper; with [unshred] the shredded
    estimate includes reassembling the nested output. *)

val run_auto :
  ?config:Api.config ->
  ?unshred:bool ->
  Nrc.Program.t ->
  (string * Nrc.Value.t) list ->
  recommendation * Api.run
(** Cost-based execution: estimate, then run the recommended route. *)
