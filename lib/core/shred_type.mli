(** Shredded types and naming conventions (Section 4).

    The shredded representation of a nested bag of type [T] is a flat bag
    of type [T^F] — bag-valued attributes replaced by labels — together
    with one flat dictionary dataset per nesting level, stored as
    [<label, f1, ..., fk>] rows and named by attribute path:
    [COP ~~> COP_F, COP_D_corders, COP_D_corders_oparts]. *)

exception Shred_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Shred_error} with a formatted message. *)

(** {2 Naming} *)

val top_name : string -> string
(** [top_name "COP" = "COP_F"]. *)

val dict_name : string -> string list -> string
(** [dict_name "COP" ["corders"; "oparts"] = "COP_D_corders_oparts"]. *)

val domain_name : string -> string list -> string
(** Name of a label-domain assignment (general materialization path). *)

(** {2 Label sites} *)

val fresh_site : string -> int
(** A new label-creation site with a description (for diagnostics). *)

val site_description : int -> string

val input_site : string -> string list -> int
(** The memoized site used when value-shredding input [base] at [path]. *)

val reset_sites : unit -> unit
(** Reset the site namespace (and the input-site memo). Label identities
    feed hash partitioning, so {!Trance.Api.run} resets before each run to
    keep repeated runs in one process bit-identical. *)

(** {2 Type transformations} *)

val flat_of : Nrc.Types.t -> Nrc.Types.t
(** [T^F]: bag-valued tuple attributes become labels, recursively. *)

val elem_at : Nrc.Types.t -> string list -> Nrc.Types.t
(** Element type at a path of bag-valued attributes. *)

val bag_attrs : Nrc.Types.t -> (string * Nrc.Types.t) list
(** Bag-valued attributes of a tuple element type (name, element type). *)

val dict_paths : Nrc.Types.t -> string list list
(** All dictionary paths of a nested element type, pre-order:
    [[["corders"]; ["corders"; "oparts"]]] for COP. *)

val dict_dataset_ty : Nrc.Types.t -> Nrc.Types.t
(** Dataset type of a materialized dictionary with the given original item
    type: a flat bag of label + flat item fields.
    @raise Shred_error for non-tuple items. *)

val shredded_inputs : string -> Nrc.Types.t -> (string * Nrc.Types.t) list
(** Names and types of a dataset's shredded form: top bag + dictionaries. *)
