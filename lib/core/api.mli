(** Top-level TraNCE-style API: compile an NRC program down one of the two
    routes of Figure 2 and execute it on the cluster simulator.

    - {b Standard}: unnesting -> plan -> optimization -> distributed
      execution over nested top-level tuples (Section 3).
    - {b Shredded}: symbolic shredding -> materialization (domain
      elimination) -> per-assignment unnesting -> distributed execution
      over flat shredded datasets, optionally followed by unshredding
      (Section 4).

    Both routes accept skew-aware execution (Section 5). Per-worker memory
    exhaustion is reported as a typed failed run (the paper's FAIL bars),
    never an exception. With [config.trace] on, every run additionally
    carries per-operator {!Exec.Trace} span trees, and each
    {!step_report} points at its step's span tree. *)

type strategy =
  | Standard
  | Shredded of { unshred : bool }
      (** [unshred = true] reassembles the nested result (the paper's
          Shred+Unshred series); [false] leaves the shredded datasets for a
          downstream consumer and returns the top bag *)
  | SparkSQL_proxy
      (** the paper's strongest competitor, modelled as the standard route
          minus cogroup fusion, aggregation pushdown, and column pruning —
          the behavioural differences Section 6 identifies *)

val strategy_name : strategy -> string

type config = {
  cluster : Exec.Config.t;
  skew_aware : bool;  (** Section 5 operators *)
  cogroup : bool;  (** join+nest fusion (Section 3, Optimization) *)
  optimizer : Plan.Optimize.config;
  materializer : Materialize.config;
  collect : bool;  (** gather the result back to the driver *)
  trace : bool;  (** record per-operator execution span trees *)
  faults : Exec.Faults.schedule;
      (** the deterministic fault storm this run will face (seeded from
          [cluster.seed]; [[]] is a clean run); recovery cost shows in the
          stats and trace, bounded by [cluster.checkpoint] placement *)
  route_fallback : bool;
      (** when a Standard run fails with {!Out_of_memory} — spilling off,
          or the spilling layer exhausted {!Exec.Config.t.max_spill_rounds}
          — re-plan the program down the shredded route and answer from
          there, reported as a {!degradation} *)
}

val default_config : config
(** Tracing off, no faults, no checkpoints, route fallback on. *)

(** {2 Reporting} *)

type failure =
  | Out_of_memory of { stage : string; worker_bytes : int; budget : int }
      (** a worker exceeded its budget at [stage] (prefixed with the source
          step, e.g. ["Step2/unnest"]) — the paper's FAIL *)
  | Task_failed of { stage : string; partition : int; attempts : int }
      (** an injected task failure exhausted
          {!Exec.Config.t.max_task_attempts}: the run fails typed rather
          than returning a wrong answer *)
  | Deadline_missed of { stage : string; sim_seconds : float; deadline : float }
      (** the run blew {!Exec.Config.t.deadline} at [stage] — typically
          while paying for storm recovery. Typed and named in CLI output
          and [run_json]: a deadline-bound run never hangs silently in a
          recompute loop *)
  | Error of string

val failure_message : failure -> string
(** Legacy one-line description, e.g. ["Step2/unnest: 5.0MB > 4.0MB"]. *)

val pp_failure : Format.formatter -> failure -> unit

(** How a run that did not answer entirely in memory got its answer. *)
type degradation = {
  spilled_bytes : int;  (** bytes the answering route wrote to disk *)
  spill_partitions : int;
  spill_rounds : int;
  fell_back : bool;
      (** the standard route was abandoned and the shredded route answered *)
  answered_by : string;  (** strategy name of the answering route *)
  first_failure : failure option;
      (** the abandoned route's failure when [fell_back] *)
}

type step_report = {
  step : string;
      (** source assignment name; shredded dictionary assignments fold into
          their step by name prefix; ["Unshred"] covers reassembly *)
  sim_seconds : float;
  stats : Exec.Stats.snapshot;
      (** this step's slice of the run counters; slices
          {!Exec.Stats.merge} back to the run totals (with
          [peak_worker_bytes] as the max over steps) *)
  trace : Exec.Trace.span option;
      (** the step's span tree when tracing was on (a synthetic ["Step"]
          span groups multi-assignment steps) *)
}

type run = {
  strategy : string;
  config : config;  (** the effective configuration the run executed under *)
  value : Nrc.Value.t option;  (** None when not collected or failed *)
  stats : Exec.Stats.t;
      (** run totals; [Stats.wall_seconds] mirrors {!run.wall_seconds}
          (the answering attempt's wall-clock, charged by this driver) *)
  wall_seconds : float;
      (** real elapsed seconds; shrinks with {!Exec.Config.t.domains}
          while [sim_seconds] and every other counter stay bit-identical *)
  failure : failure option;
  steps : step_report list;  (** one report per source step, in run order *)
  trace : Exec.Trace.span list;
      (** root spans, one per executed assignment; [[]] unless
          [config.trace] *)
  degradation : degradation option;
      (** present when the run spilled or fell back; [stats]/[steps]/
          [trace] always describe the answering route *)
}

val step_seconds : run -> (string * float) list
(** Simulated seconds per step — the shape of the old [step_seconds]
    field. *)

(** How the run ended. [Degraded]: faults were recovered (retries,
    speculation, recomputation), operators spilled to disk, or the driver
    fell back to the shredded route — and the answer is still correct.
    [Failed]: a typed failure surfaced. *)
type outcome = Completed | Degraded | Failed

val outcome : run -> outcome
val outcome_name : outcome -> string

val pp_run : Format.formatter -> run -> unit

val run_json : run -> string
(** The whole run as a JSON object — strategy, wall seconds, failure,
    degradation, the effective ["config"] (workers, partitions, worker_mem,
    seed, spill, checkpoint, deadline, fault schedule — enough to replay
    the run from the JSON alone), totals, per-step reports (with span
    trees), root spans. Schema-stable: every counter key (including the
    spill and checkpoint counters) and the ["degradation"] key appear in
    every run, so downstream diffs never see keys come and go. *)

(** {2 Compilation} *)

val compile_standard :
  ?config:config -> Nrc.Program.t -> (string * Plan.Op.t) list
(** One optimized plan per assignment. *)

type shredded_compiled = {
  pipeline : Shred_pipeline.t;
  plans : (string * Plan.Op.t) list;
      (** materialized assignments; dictionary outputs wrapped in
          [BagToDict] to establish the label partitioning guarantee *)
  unshred_plan : Plan.Op.t option;
}

val compile_shredded : ?config:config -> Nrc.Program.t -> shredded_compiled

(** {2 Input loading} *)

val load_inputs :
  cluster:Exec.Config.t ->
  (string * Nrc.Types.t) list ->
  (string * Nrc.Value.t) list ->
  Exec.Executor.env

val load_shredded_inputs :
  cluster:Exec.Config.t ->
  (string * Nrc.Types.t) list ->
  (string * Nrc.Value.t) list ->
  Exec.Executor.env
(** Value-shred nested inputs; dictionaries loaded with their label
    partitioning guarantee. *)

(** {2 Execution} *)

val run :
  ?config:config ->
  strategy:strategy ->
  Nrc.Program.t ->
  (string * Nrc.Value.t) list ->
  run
(** Compile and execute; never raises on memory exhaustion. A Standard run
    that dies of memory exhaustion re-plans down the shredded route when
    [config.route_fallback] is on (see {!degradation}); [wall_seconds] then
    covers both attempts and the reported stats are the answering
    route's. *)
